//! Dataset schemas — the catalog-facing half of the source description
//! grammar (ViDa §3.1).
//!
//! A [`Schema`] names the fields of one dataset's retrieval unit together
//! with their static types. The format-specific half (delimiters, retrieval
//! unit, auxiliary-structure configuration) lives in `vida-formats`; it
//! embeds a `Schema` and adds access-path metadata.

use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// One named, typed attribute of a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub ty: Type,
    /// True if the raw source may omit or null this attribute.
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    pub fn nullable(name: impl Into<String>, ty: Type) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// Access paths a data source exposes (ViDa §3.1): which physical ways the
/// engine may obtain tuples. The optimizer selects among them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Full sequential scan of the raw file.
    SequentialScan,
    /// Direct access by row identifier (requires a positional structure).
    ByRowId,
    /// Access through a format-internal index (e.g. HDF5-style indexes).
    IndexScan,
}

/// An ordered collection of fields describing one retrieval unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Schema from `(name, type)` pairs, all non-nullable.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        Schema {
            fields: pairs.into_iter().map(|(n, t)| Field::new(n, t)).collect(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field descriptor by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// The record type of one retrieval unit.
    pub fn record_type(&self) -> Type {
        Type::Record(
            self.fields
                .iter()
                .map(|f| (f.name.clone(), f.ty.clone()))
                .collect(),
        )
    }

    /// The bag-of-records type of the whole dataset.
    pub fn dataset_type(&self) -> Type {
        Type::bag(self.record_type())
    }

    /// Assemble a record [`Value`] in schema order from per-field values.
    /// Panics in debug builds if `values` length mismatches the schema.
    pub fn record_value(&self, values: Vec<Value>) -> Value {
        debug_assert_eq!(values.len(), self.fields.len());
        Value::Record(
            self.fields
                .iter()
                .map(|f| f.name.clone())
                .zip(values)
                .collect(),
        )
    }

    /// Validate that a value conforms to this schema (used by format plugins
    /// in tests and by the doc-store loader).
    pub fn validates(&self, v: &Value) -> bool {
        let Value::Record(fields) = v else {
            return false;
        };
        if fields.len() != self.fields.len() {
            return false;
        }
        self.fields.iter().zip(fields.iter()).all(|(f, (n, v))| {
            f.name == *n && (Type::of_value(v).compatible(&f.ty) || (f.nullable && v.is_null()))
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.record_type())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patients_schema() -> Schema {
        Schema::from_pairs([
            ("id", Type::Int),
            ("age", Type::Int),
            ("protein", Type::Float),
            ("city", Type::Str),
        ])
    }

    #[test]
    fn index_and_lookup() {
        let s = patients_schema();
        assert_eq!(s.index_of("protein"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.field("age").unwrap().ty, Type::Int);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn record_type_shape() {
        let s = patients_schema();
        assert_eq!(s.record_type().field("city"), Some(&Type::Str));
        assert_eq!(s.dataset_type().elem().unwrap(), &s.record_type());
    }

    #[test]
    fn record_value_orders_fields() {
        let s = patients_schema();
        let v = s.record_value(vec![
            Value::Int(1),
            Value::Int(64),
            Value::Float(0.4),
            Value::str("geneva"),
        ]);
        assert_eq!(v.field("id"), Some(&Value::Int(1)));
        assert_eq!(v.field("city"), Some(&Value::str("geneva")));
    }

    #[test]
    fn validates_checks_names_types_nullability() {
        let mut s = patients_schema();
        let good = s.record_value(vec![
            Value::Int(1),
            Value::Int(64),
            Value::Float(0.4),
            Value::str("geneva"),
        ]);
        assert!(s.validates(&good));

        let bad_type = s.record_value(vec![
            Value::str("oops"),
            Value::Int(64),
            Value::Float(0.4),
            Value::str("geneva"),
        ]);
        assert!(!s.validates(&bad_type));

        // Null disallowed unless nullable.
        let with_null = s.record_value(vec![
            Value::Null,
            Value::Int(64),
            Value::Float(0.4),
            Value::str("geneva"),
        ]);
        // Null has type Unknown which is compatible with everything, so it
        // validates even for non-nullable fields at this structural level.
        assert!(s.validates(&with_null));
        s = Schema::new(vec![Field::nullable("id", Type::Int)]);
        assert!(s.validates(&Value::record([("id", Value::Null)])));
    }

    #[test]
    fn non_record_never_validates() {
        let s = patients_schema();
        assert!(!s.validates(&Value::Int(3)));
        assert!(!s.validates(&Value::record([("id", Value::Int(1))])));
    }
}
