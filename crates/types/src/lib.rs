//! # vida-types
//!
//! Foundational data model for ViDa: runtime values, the type system, dataset
//! schemas, and the monoid framework underlying the monoid comprehension
//! calculus (Fegaras & Maier; ViDa §3.2).
//!
//! ViDa queries combine data from heterogeneous models — relational tables,
//! hierarchies, arrays — so the value model here is deliberately richer than
//! a relational tuple: values nest arbitrarily, and collections carry their
//! kind (set / bag / list / array) because the *same* elements under a
//! different collection monoid have different semantics (idempotence,
//! commutativity, ordering).

pub mod error;
pub mod monoid;
pub mod schema;
pub mod sync;
pub mod types;
pub mod value;

pub use error::{Result, VidaError};
pub use monoid::{CollectionKind, Monoid, PrimitiveMonoid};
pub use schema::{AccessPath, Field, Schema};
pub use types::Type;
pub use value::Value;
