//! The monoid framework (ViDa §3.2, Table 1).
//!
//! A monoid `(⊕, Z⊕)` is an associative binary *merge* with identity `Z⊕`.
//! Collection monoids additionally carry a *unit* function `U⊕(x)` building a
//! singleton collection. Comprehensions `⊕{ e | q1..qn }` evaluate `e` under
//! each binding produced by the qualifiers and fold the results with `⊕`.
//!
//! Primitive monoids here: `sum`, `prod`, `count`, `max`, `min`, `avg`
//! (tracked as a (sum,count) pair internally), `and` (∧), `or` (∨).
//! Collection monoids: `set`, `bag`, `list`, `array`.
//!
//! Properties (tested, incl. by proptest in this crate):
//! - all monoids: associativity, left/right identity;
//! - commutative monoids: `sum, prod, count, max, min, and, or, set, bag`;
//! - idempotent monoids: `max, min, and, or, set`.
//!
//! The optimizer relies on these properties: e.g. a non-commutative
//! accumulator (list) forbids generator reordering, and idempotence is what
//! makes duplicate elimination for sets correct.

use crate::error::{Result, VidaError};
use crate::value::Value;
use std::fmt;

/// Kinds of collection monoids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollectionKind {
    Set,
    Bag,
    List,
    Array,
}

impl CollectionKind {
    pub fn name(&self) -> &'static str {
        match self {
            CollectionKind::Set => "set",
            CollectionKind::Bag => "bag",
            CollectionKind::List => "list",
            CollectionKind::Array => "array",
        }
    }

    /// Commutative merge? (element order irrelevant)
    pub fn commutative(&self) -> bool {
        matches!(self, CollectionKind::Set | CollectionKind::Bag)
    }

    /// Idempotent merge? (duplicates collapse)
    pub fn idempotent(&self) -> bool {
        matches!(self, CollectionKind::Set)
    }
}

/// Primitive (scalar-valued) monoids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveMonoid {
    Sum,
    Prod,
    Count,
    Max,
    Min,
    Avg,
    /// Boolean conjunction (universal quantification).
    All,
    /// Boolean disjunction (existential quantification).
    Any,
}

impl PrimitiveMonoid {
    pub fn name(&self) -> &'static str {
        match self {
            PrimitiveMonoid::Sum => "sum",
            PrimitiveMonoid::Prod => "prod",
            PrimitiveMonoid::Count => "count",
            PrimitiveMonoid::Max => "max",
            PrimitiveMonoid::Min => "min",
            PrimitiveMonoid::Avg => "avg",
            PrimitiveMonoid::All => "all",
            PrimitiveMonoid::Any => "any",
        }
    }

    /// Parse a monoid name as it appears after `yield`.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "sum" => PrimitiveMonoid::Sum,
            "prod" => PrimitiveMonoid::Prod,
            "count" => PrimitiveMonoid::Count,
            "max" => PrimitiveMonoid::Max,
            "min" => PrimitiveMonoid::Min,
            "avg" => PrimitiveMonoid::Avg,
            "all" | "and" => PrimitiveMonoid::All,
            "any" | "or" | "some" => PrimitiveMonoid::Any,
            _ => return None,
        })
    }

    pub fn commutative(&self) -> bool {
        true // every primitive monoid here is commutative
    }

    pub fn idempotent(&self) -> bool {
        matches!(
            self,
            PrimitiveMonoid::Max
                | PrimitiveMonoid::Min
                | PrimitiveMonoid::All
                | PrimitiveMonoid::Any
        )
    }
}

/// A monoid: either primitive (scalar accumulator) or a collection kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Monoid {
    Primitive(PrimitiveMonoid),
    Collection(CollectionKind),
}

impl Monoid {
    /// Parse a monoid name (`sum`, `bag`, ...).
    pub fn from_name(name: &str) -> Option<Self> {
        if let Some(p) = PrimitiveMonoid::from_name(name) {
            return Some(Monoid::Primitive(p));
        }
        Some(Monoid::Collection(match name {
            "set" => CollectionKind::Set,
            "bag" => CollectionKind::Bag,
            "list" => CollectionKind::List,
            "array" => CollectionKind::Array,
            _ => return None,
        }))
    }

    pub fn name(&self) -> &'static str {
        match self {
            Monoid::Primitive(p) => p.name(),
            Monoid::Collection(k) => k.name(),
        }
    }

    pub fn commutative(&self) -> bool {
        match self {
            Monoid::Primitive(p) => p.commutative(),
            Monoid::Collection(k) => k.commutative(),
        }
    }

    pub fn idempotent(&self) -> bool {
        match self {
            Monoid::Primitive(p) => p.idempotent(),
            Monoid::Collection(k) => k.idempotent(),
        }
    }

    /// The zero element `Z⊕`.
    ///
    /// `Avg` uses an internal `(sum, count)` record accumulator that
    /// [`Monoid::finalize`] converts into a float.
    pub fn zero(&self) -> Value {
        match self {
            Monoid::Primitive(PrimitiveMonoid::Sum) => Value::Int(0),
            Monoid::Primitive(PrimitiveMonoid::Prod) => Value::Int(1),
            Monoid::Primitive(PrimitiveMonoid::Count) => Value::Int(0),
            Monoid::Primitive(PrimitiveMonoid::Max) => Value::Null,
            Monoid::Primitive(PrimitiveMonoid::Min) => Value::Null,
            Monoid::Primitive(PrimitiveMonoid::Avg) => {
                Value::record([("__sum", Value::Float(0.0)), ("__count", Value::Int(0))])
            }
            Monoid::Primitive(PrimitiveMonoid::All) => Value::Bool(true),
            Monoid::Primitive(PrimitiveMonoid::Any) => Value::Bool(false),
            Monoid::Collection(k) => Value::Collection(*k, Vec::new()),
        }
    }

    /// The unit function `U⊕(x)` lifting one element into the monoid carrier.
    pub fn unit(&self, v: Value) -> Value {
        match self {
            Monoid::Primitive(PrimitiveMonoid::Count) => Value::Int(1),
            Monoid::Primitive(PrimitiveMonoid::Avg) => {
                let x = v.as_f64().unwrap_or(0.0);
                Value::record([("__sum", Value::Float(x)), ("__count", Value::Int(1))])
            }
            Monoid::Primitive(_) => v,
            Monoid::Collection(CollectionKind::Set) => Value::set(vec![v]),
            Monoid::Collection(k) => Value::Collection(*k, vec![v]),
        }
    }

    /// The merge function `a ⊕ b`.
    pub fn merge(&self, a: Value, b: Value) -> Result<Value> {
        use PrimitiveMonoid::*;
        match self {
            Monoid::Primitive(Sum) => {
                numeric_binop(a, b, "sum", |x, y| x + y, |x, y| x.checked_add(y))
            }
            Monoid::Primitive(Prod) => {
                numeric_binop(a, b, "prod", |x, y| x * y, |x, y| x.checked_mul(y))
            }
            Monoid::Primitive(Count) => {
                numeric_binop(a, b, "count", |x, y| x + y, |x, y| x.checked_add(y))
            }
            Monoid::Primitive(Max) => Ok(match (a, b) {
                (Value::Null, x) | (x, Value::Null) => x,
                (x, y) => {
                    if x.total_cmp(&y) == std::cmp::Ordering::Less {
                        y
                    } else {
                        x
                    }
                }
            }),
            Monoid::Primitive(Min) => Ok(match (a, b) {
                (Value::Null, x) | (x, Value::Null) => x,
                (x, y) => {
                    if x.total_cmp(&y) == std::cmp::Ordering::Greater {
                        y
                    } else {
                        x
                    }
                }
            }),
            Monoid::Primitive(Avg) => {
                let (s1, c1) = avg_parts(&a)?;
                let (s2, c2) = avg_parts(&b)?;
                Ok(Value::record([
                    ("__sum", Value::Float(s1 + s2)),
                    ("__count", Value::Int(c1 + c2)),
                ]))
            }
            Monoid::Primitive(All) => bool_binop(a, b, "all", |x, y| x && y),
            Monoid::Primitive(Any) => bool_binop(a, b, "any", |x, y| x || y),
            Monoid::Collection(kind) => {
                let mut xs = into_elements(a, *kind)?;
                let ys = into_elements(b, *kind)?;
                xs.extend(ys);
                Ok(match kind {
                    CollectionKind::Set => Value::set(xs),
                    k => Value::Collection(*k, xs),
                })
            }
        }
    }

    /// Convert an internal accumulator into the user-visible result
    /// (identity except for `avg`, and `max`/`min` of empty input → `Null`).
    pub fn finalize(&self, acc: Value) -> Result<Value> {
        match self {
            Monoid::Primitive(PrimitiveMonoid::Avg) => {
                let (s, c) = avg_parts(&acc)?;
                if c == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(s / c as f64))
                }
            }
            _ => Ok(acc),
        }
    }

    /// Fold an iterator of elements through `unit` + `merge` + `finalize`.
    pub fn fold<I: IntoIterator<Item = Value>>(&self, items: I) -> Result<Value> {
        let mut acc = self.zero();
        for item in items {
            acc = self.merge(acc, self.unit(item))?;
        }
        self.finalize(acc)
    }

    /// Merge per-partition accumulators **in the order given** (no
    /// `finalize`).
    ///
    /// This is the deterministic reduction step of parallel folds: each
    /// worker folds its morsels into partial accumulators, and the partials
    /// merge here in morsel order — so non-commutative monoids (`list`) see
    /// exactly the sequential element order, and any worker count produces
    /// the same merge tree. The first partial seeds the accumulator (rather
    /// than `zero`), so a single-partial merge is bit-identical to that
    /// partial — including float payloads.
    pub fn merge_partials<I: IntoIterator<Item = Value>>(&self, partials: I) -> Result<Value> {
        let mut iter = partials.into_iter();
        let mut acc = match iter.next() {
            Some(first) => first,
            None => return Ok(self.zero()),
        };
        for p in iter {
            acc = self.merge(acc, p)?;
        }
        Ok(acc)
    }
}

impl fmt::Display for Monoid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

fn avg_parts(v: &Value) -> Result<(f64, i64)> {
    // A bare numeric value may reach the accumulator when merges mix units
    // (e.g. during parallel partial aggregation); treat it as (x, 1).
    if let Some(x) = v.as_f64() {
        if !matches!(v, Value::Record(_)) {
            return Ok((x, 1));
        }
    }
    let s = v
        .field("__sum")
        .and_then(Value::as_f64)
        .ok_or_else(|| VidaError::Exec("avg accumulator missing __sum".into()))?;
    let c = v
        .field("__count")
        .and_then(Value::as_i64)
        .ok_or_else(|| VidaError::Exec("avg accumulator missing __count".into()))?;
    Ok((s, c))
}

fn numeric_binop(
    a: Value,
    b: Value,
    name: &str,
    ff: fn(f64, f64) -> f64,
    fi: fn(i64, i64) -> Option<i64>,
) -> Result<Value> {
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => fi(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| VidaError::Exec(format!("integer overflow in {name}"))),
        _ => {
            let x = a
                .as_f64()
                .ok_or_else(|| VidaError::Exec(format!("{name}: non-numeric {a}")))?;
            let y = b
                .as_f64()
                .ok_or_else(|| VidaError::Exec(format!("{name}: non-numeric {b}")))?;
            Ok(Value::Float(ff(x, y)))
        }
    }
}

fn bool_binop(a: Value, b: Value, name: &str, f: fn(bool, bool) -> bool) -> Result<Value> {
    let x = a
        .as_bool()
        .ok_or_else(|| VidaError::Exec(format!("{name}: non-boolean {a}")))?;
    let y = b
        .as_bool()
        .ok_or_else(|| VidaError::Exec(format!("{name}: non-boolean {b}")))?;
    Ok(Value::Bool(f(x, y)))
}

fn into_elements(v: Value, kind: CollectionKind) -> Result<Vec<Value>> {
    match v {
        Value::Collection(_, items) => Ok(items),
        Value::Array { data, .. } => Ok(data),
        other => Err(VidaError::Exec(format!(
            "{} merge expects a collection, got {other}",
            kind.name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_monoids() -> Vec<Monoid> {
        vec![
            Monoid::Primitive(PrimitiveMonoid::Sum),
            Monoid::Primitive(PrimitiveMonoid::Prod),
            Monoid::Primitive(PrimitiveMonoid::Count),
            Monoid::Primitive(PrimitiveMonoid::Max),
            Monoid::Primitive(PrimitiveMonoid::Min),
            Monoid::Primitive(PrimitiveMonoid::Avg),
            Monoid::Primitive(PrimitiveMonoid::All),
            Monoid::Primitive(PrimitiveMonoid::Any),
            Monoid::Collection(CollectionKind::Set),
            Monoid::Collection(CollectionKind::Bag),
            Monoid::Collection(CollectionKind::List),
            Monoid::Collection(CollectionKind::Array),
        ]
    }

    fn sample_for(m: &Monoid) -> Vec<Value> {
        match m {
            Monoid::Primitive(PrimitiveMonoid::All) | Monoid::Primitive(PrimitiveMonoid::Any) => {
                vec![Value::Bool(true), Value::Bool(false), Value::Bool(true)]
            }
            _ => vec![Value::Int(3), Value::Int(1), Value::Int(2)],
        }
    }

    #[test]
    fn left_right_identity() {
        for m in all_monoids() {
            for x in sample_for(&m) {
                let u = m.unit(x);
                let l = m.merge(m.zero(), u.clone()).unwrap();
                let r = m.merge(u.clone(), m.zero()).unwrap();
                assert!(l.sem_eq(&u), "{m}: left identity failed");
                assert!(r.sem_eq(&u), "{m}: right identity failed");
            }
        }
    }

    #[test]
    fn associativity() {
        for m in all_monoids() {
            let xs = sample_for(&m);
            let (a, b, c) = (
                m.unit(xs[0].clone()),
                m.unit(xs[1].clone()),
                m.unit(xs[2].clone()),
            );
            let ab_c = m
                .merge(m.merge(a.clone(), b.clone()).unwrap(), c.clone())
                .unwrap();
            let a_bc = m.merge(a, m.merge(b, c).unwrap()).unwrap();
            assert!(ab_c.sem_eq(&a_bc), "{m}: associativity failed");
        }
    }

    #[test]
    fn fold_matches_expected() {
        let xs = vec![Value::Int(3), Value::Int(1), Value::Int(2)];
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Sum)
                .fold(xs.clone())
                .unwrap(),
            Value::Int(6)
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Count)
                .fold(xs.clone())
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Max)
                .fold(xs.clone())
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Min)
                .fold(xs.clone())
                .unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Avg)
                .fold(xs.clone())
                .unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Prod).fold(xs).unwrap(),
            Value::Int(6)
        );
    }

    #[test]
    fn empty_folds() {
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Sum)
                .fold(vec![])
                .unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Max)
                .fold(vec![])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Avg)
                .fold(vec![])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::All)
                .fold(vec![])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Monoid::Primitive(PrimitiveMonoid::Any)
                .fold(vec![])
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn merge_partials_matches_sequential_fold() {
        // Partition the same elements two different ways; the ordered merge
        // of partial accumulators must agree with the one-pass fold.
        let xs: Vec<Value> = (1..=10).map(Value::Int).collect();
        for m in all_monoids() {
            let xs = match m {
                Monoid::Primitive(PrimitiveMonoid::All)
                | Monoid::Primitive(PrimitiveMonoid::Any) => {
                    vec![Value::Bool(true); 10]
                }
                _ => xs.clone(),
            };
            let sequential = m.fold(xs.clone()).unwrap();
            for chunk in [1usize, 3, 10] {
                let partials: Vec<Value> = xs
                    .chunks(chunk)
                    .map(|c| {
                        let mut acc = m.zero();
                        for x in c {
                            acc = m.merge(acc, m.unit(x.clone())).unwrap();
                        }
                        acc
                    })
                    .collect();
                let merged = m.finalize(m.merge_partials(partials).unwrap()).unwrap();
                assert!(
                    merged.sem_eq(&sequential),
                    "{m}: chunk {chunk} deviates ({merged} vs {sequential})"
                );
            }
        }
    }

    #[test]
    fn merge_partials_of_nothing_is_zero() {
        let sum = Monoid::Primitive(PrimitiveMonoid::Sum);
        assert_eq!(sum.merge_partials(vec![]).unwrap(), Value::Int(0));
    }

    #[test]
    fn merge_partials_single_is_identity() {
        // Bit-identical pass-through, no zero merge.
        let sum = Monoid::Primitive(PrimitiveMonoid::Sum);
        let v = Value::Float(-0.0);
        let out = sum.merge_partials(vec![v]).unwrap();
        match out {
            Value::Float(f) => assert!(f.is_sign_negative(), "zero merge would lose -0.0"),
            other => panic!("expected float, got {other}"),
        }
    }

    #[test]
    fn merge_partials_preserves_list_order() {
        let list = Monoid::Collection(CollectionKind::List);
        let p1 = list.fold(vec![Value::Int(3), Value::Int(1)]).unwrap();
        let p2 = list.fold(vec![Value::Int(2)]).unwrap();
        let out = list.merge_partials(vec![p1, p2]).unwrap();
        assert_eq!(
            out.elements().unwrap(),
            &[Value::Int(3), Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn set_is_idempotent_bag_is_not() {
        let set = Monoid::Collection(CollectionKind::Set);
        let bag = Monoid::Collection(CollectionKind::Bag);
        let xs = vec![Value::Int(1), Value::Int(1), Value::Int(2)];
        let s = set.fold(xs.clone()).unwrap();
        let b = bag.fold(xs).unwrap();
        assert_eq!(s.elements().unwrap().len(), 2);
        assert_eq!(b.elements().unwrap().len(), 3);
        assert!(set.idempotent());
        assert!(!bag.idempotent());
    }

    #[test]
    fn list_preserves_order() {
        let list = Monoid::Collection(CollectionKind::List);
        let out = list
            .fold(vec![Value::Int(3), Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(
            out.elements().unwrap(),
            &[Value::Int(3), Value::Int(1), Value::Int(2)]
        );
        assert!(!list.commutative());
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let sum = Monoid::Primitive(PrimitiveMonoid::Sum);
        let e = sum.merge(Value::Int(i64::MAX), Value::Int(1)).unwrap_err();
        assert_eq!(e.kind(), "exec");
    }

    #[test]
    fn mixed_numeric_promotes_to_float() {
        let sum = Monoid::Primitive(PrimitiveMonoid::Sum);
        let out = sum.merge(Value::Int(1), Value::Float(2.5)).unwrap();
        assert_eq!(out, Value::Float(3.5));
    }

    #[test]
    fn from_name_round_trip() {
        for m in all_monoids() {
            assert_eq!(Monoid::from_name(m.name()), Some(m));
        }
        assert_eq!(Monoid::from_name("nope"), None);
        // aliases
        assert_eq!(
            Monoid::from_name("and"),
            Some(Monoid::Primitive(PrimitiveMonoid::All))
        );
        assert_eq!(
            Monoid::from_name("or"),
            Some(Monoid::Primitive(PrimitiveMonoid::Any))
        );
    }

    #[test]
    fn bad_merge_inputs_error() {
        let all = Monoid::Primitive(PrimitiveMonoid::All);
        assert!(all.merge(Value::Int(1), Value::Bool(true)).is_err());
        let bag = Monoid::Collection(CollectionKind::Bag);
        assert!(bag.merge(Value::Int(1), Value::bag(vec![])).is_err());
    }
}
