//! Unified error type for the ViDa workspace.
//!
//! Every layer (parser, type checker, optimizer, executor, format plugins)
//! reports through [`VidaError`] so errors cross crate boundaries without
//! conversion boilerplate. The variants mirror the query lifecycle stages.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, VidaError>;

/// The error type shared by all ViDa crates.
#[derive(Debug, Clone, PartialEq)]
pub enum VidaError {
    /// Lexical or syntactic error in a query string.
    ///
    /// `line`/`col` are 1-based positions into the original source.
    Parse {
        message: String,
        line: u32,
        col: u32,
    },
    /// Semantic error found during type checking.
    Type(String),
    /// A name (dataset, field, variable) could not be resolved.
    Unresolved(String),
    /// Error while reading or decoding a raw data file.
    Format {
        source_name: String,
        message: String,
    },
    /// Error raised by the optimizer (e.g. no viable plan).
    Plan(String),
    /// Error raised during execution (e.g. runtime type mismatch after an
    /// unchecked cast, division by zero).
    Exec(String),
    /// Error raised by the JIT backend while compiling a kernel.
    Codegen(String),
    /// Underlying I/O failure, stringified to keep the error `Clone`.
    Io(String),
    /// Catalog-level error (duplicate registration, unknown source, ...).
    Catalog(String),
}

impl VidaError {
    /// Convenience constructor for parse errors.
    pub fn parse(message: impl Into<String>, line: u32, col: u32) -> Self {
        VidaError::Parse {
            message: message.into(),
            line,
            col,
        }
    }

    /// Convenience constructor for format errors.
    pub fn format(source_name: impl Into<String>, message: impl Into<String>) -> Self {
        VidaError::Format {
            source_name: source_name.into(),
            message: message.into(),
        }
    }

    /// Short machine-readable category, used in tests and stats.
    pub fn kind(&self) -> &'static str {
        match self {
            VidaError::Parse { .. } => "parse",
            VidaError::Type(_) => "type",
            VidaError::Unresolved(_) => "unresolved",
            VidaError::Format { .. } => "format",
            VidaError::Plan(_) => "plan",
            VidaError::Exec(_) => "exec",
            VidaError::Codegen(_) => "codegen",
            VidaError::Io(_) => "io",
            VidaError::Catalog(_) => "catalog",
        }
    }
}

impl fmt::Display for VidaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VidaError::Parse { message, line, col } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            VidaError::Type(m) => write!(f, "type error: {m}"),
            VidaError::Unresolved(m) => write!(f, "unresolved name: {m}"),
            VidaError::Format {
                source_name,
                message,
            } => write!(f, "format error in '{source_name}': {message}"),
            VidaError::Plan(m) => write!(f, "plan error: {m}"),
            VidaError::Exec(m) => write!(f, "execution error: {m}"),
            VidaError::Codegen(m) => write!(f, "codegen error: {m}"),
            VidaError::Io(m) => write!(f, "io error: {m}"),
            VidaError::Catalog(m) => write!(f, "catalog error: {m}"),
        }
    }
}

impl std::error::Error for VidaError {}

impl From<std::io::Error> for VidaError {
    fn from(e: std::io::Error) -> Self {
        VidaError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = VidaError::parse("unexpected token", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: VidaError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn format_error_names_source() {
        let e = VidaError::format("patients.csv", "bad row 7");
        assert!(e.to_string().contains("patients.csv"));
        assert!(e.to_string().contains("bad row 7"));
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            VidaError::parse("x", 1, 1).kind(),
            VidaError::Type("x".into()).kind(),
            VidaError::Unresolved("x".into()).kind(),
            VidaError::format("s", "m").kind(),
            VidaError::Plan("x".into()).kind(),
            VidaError::Exec("x".into()).kind(),
            VidaError::Codegen("x".into()).kind(),
            VidaError::Io("x".into()).kind(),
            VidaError::Catalog("x".into()).kind(),
        ];
        let unique: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
