//! Runtime values.
//!
//! [`Value`] is the dynamic representation that flows through the interpreted
//! engine, caches, and plugin boundaries. The JIT engine keeps scalars in
//! native registers (ViDa §4.1) and only materializes `Value`s at pipeline
//! breakers and result projection.
//!
//! Design notes:
//! - Records keep **field order** (`Vec<(String, Value)>`): comprehension
//!   record construction `(a := e1, b := e2)` is ordered, and round-tripping
//!   through output plugins must preserve it.
//! - `Value` implements a **total order** (floats ordered by IEEE total
//!   ordering) so sets can be represented canonically as sorted-deduped
//!   vectors — required for set-monoid idempotence and for `Eq` on results.

use crate::monoid::CollectionKind;
use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed ViDa runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL-style missing value.
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Ordered field list. Field names are unique.
    Record(Vec<(String, Value)>),
    /// A collection of a given kind. For `Set`, the elements are kept
    /// sorted and deduplicated (canonical form). For `Array`, `dims`
    /// describes the dimensionality (row-major element order).
    Collection(CollectionKind, Vec<Value>),
    /// Dense multi-dimensional array of values (row-major).
    Array {
        dims: Vec<usize>,
        data: Vec<Value>,
    },
}

impl Value {
    /// Build a record value from `(name, value)` pairs.
    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Record(fields.into_iter().map(|(n, v)| (n.into(), v)).collect())
    }

    /// Build a bag collection.
    pub fn bag(items: Vec<Value>) -> Value {
        Value::Collection(CollectionKind::Bag, items)
    }

    /// Build a list collection.
    pub fn list(items: Vec<Value>) -> Value {
        Value::Collection(CollectionKind::List, items)
    }

    /// Build a set collection; sorts and deduplicates into canonical form.
    pub fn set(mut items: Vec<Value>) -> Value {
        items.sort_by(Value::total_cmp);
        items.dedup();
        Value::Collection(CollectionKind::Set, items)
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Project a field out of a record. Returns `None` for non-records or
    /// missing fields.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Coerce to `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Coerce to `i64` if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Coerce to `bool` if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow collection elements regardless of kind (arrays included).
    pub fn elements(&self) -> Option<&[Value]> {
        match self {
            Value::Collection(_, items) => Some(items),
            Value::Array { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Total ordering across all values. Numeric values compare numerically
    /// across `Int`/`Float`; disparate variants compare by a fixed variant
    /// rank. This makes sorting/deduplication well-defined for sets and for
    /// deterministic test output.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Record(a), Record(b)) => {
                for ((an, av), (bn, bv)) in a.iter().zip(b.iter()) {
                    match an.cmp(bn) {
                        Ordering::Equal => {}
                        o => return o,
                    }
                    match av.total_cmp(bv) {
                        Ordering::Equal => {}
                        o => return o,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Collection(ka, a), Collection(kb, b)) => match ka.cmp(kb) {
                Ordering::Equal => Self::cmp_slices(a, b),
                o => o,
            },
            (Array { dims: da, data: a }, Array { dims: db, data: b }) => match da.cmp(db) {
                Ordering::Equal => Self::cmp_slices(a, b),
                o => o,
            },
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }

    fn cmp_slices(a: &[Value], b: &[Value]) -> Ordering {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_cmp(y) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        a.len().cmp(&b.len())
    }

    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numeric tower shares a rank
            Value::Str(_) => 3,
            Value::Record(_) => 4,
            Value::Collection(..) => 5,
            Value::Array { .. } => 6,
        }
    }

    /// Structural equality used by join predicates and set semantics:
    /// `Int` and `Float` compare numerically (`1 == 1.0`).
    pub fn sem_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Rough in-memory footprint in bytes, used by the cache budget
    /// accounting. Not exact; stable across runs.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 24 + s.len(),
            Value::Record(fs) => {
                24 + fs
                    .iter()
                    .map(|(n, v)| 24 + n.len() + v.approx_bytes())
                    .sum::<usize>()
            }
            Value::Collection(_, items) => {
                24 + items.iter().map(Value::approx_bytes).sum::<usize>()
            }
            Value::Array { dims, data } => {
                24 + dims.len() * 8 + data.iter().map(Value::approx_bytes).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Record(fields) => {
                write!(f, "(")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} := {v}")?;
                }
                write!(f, ")")
            }
            Value::Collection(kind, items) => {
                let (open, close) = match kind {
                    CollectionKind::Set => ("{", "}"),
                    CollectionKind::Bag => ("{|", "|}"),
                    CollectionKind::List => ("[", "]"),
                    CollectionKind::Array => ("[|", "|]"),
                };
                write!(f, "{open}")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "{close}")
            }
            Value::Array { dims, data } => {
                write!(f, "array{dims:?}[")?;
                for (i, v) in data.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_field_access() {
        let r = Value::record([("id", Value::Int(7)), ("name", Value::str("ada"))]);
        assert_eq!(r.field("id"), Some(&Value::Int(7)));
        assert_eq!(r.field("name"), Some(&Value::str("ada")));
        assert_eq!(r.field("missing"), None);
        assert_eq!(Value::Int(3).field("id"), None);
    }

    #[test]
    fn set_canonicalizes() {
        let s = Value::set(vec![Value::Int(2), Value::Int(1), Value::Int(2)]);
        assert_eq!(
            s,
            Value::Collection(CollectionKind::Set, vec![Value::Int(1), Value::Int(2)])
        );
    }

    #[test]
    fn numeric_tower_equality() {
        assert!(Value::Int(1).sem_eq(&Value::Float(1.0)));
        assert!(!Value::Int(1).sem_eq(&Value::Float(1.5)));
        assert!(!Value::Int(1).sem_eq(&Value::str("1")));
    }

    #[test]
    fn total_order_is_deterministic_for_mixed() {
        let mut vals = vec![
            Value::str("b"),
            Value::Null,
            Value::Int(5),
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vals.sort_by(Value::total_cmp);
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(5),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn display_round_looks_right() {
        let r = Value::record([
            ("id", Value::Int(1)),
            (
                "xs",
                Value::list(vec![Value::Float(1.0), Value::Float(2.5)]),
            ),
        ]);
        assert_eq!(r.to_string(), "(id := 1, xs := [1.0, 2.5])");
    }

    #[test]
    fn approx_bytes_monotone_in_content() {
        let small = Value::str("a");
        let big = Value::str("aaaaaaaaaaaaaaaa");
        assert!(big.approx_bytes() > small.approx_bytes());
        let rec = Value::record([("x", small.clone())]);
        assert!(rec.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn nan_has_stable_order() {
        let mut v = [Value::Float(f64::NAN), Value::Float(1.0)];
        v.sort_by(Value::total_cmp);
        // IEEE total order puts positive NaN after all numbers.
        assert_eq!(v[0], Value::Float(1.0));
    }

    #[test]
    fn elements_view_spans_collections_and_arrays() {
        let c = Value::bag(vec![Value::Int(1)]);
        assert_eq!(c.elements().unwrap().len(), 1);
        let a = Value::Array {
            dims: vec![2, 2],
            data: vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
        };
        assert_eq!(a.elements().unwrap().len(), 4);
        assert_eq!(Value::Int(1).elements(), None);
    }
}
