//! The static type system.
//!
//! Types mirror [`crate::value::Value`] one level up: scalars, records,
//! kinded collections, and dense arrays. The type checker in `vida-lang`
//! infers a [`Type`] for every expression; the optimizer and the JIT use it
//! to pick layouts and register classes.

use crate::monoid::CollectionKind;
use crate::value::Value;
use std::fmt;

/// A static ViDa type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Type of `null` and of empty `max`/`min`; unifies with anything.
    Unknown,
    Bool,
    Int,
    Float,
    Str,
    /// Ordered, uniquely-named fields.
    Record(Vec<(String, Type)>),
    /// Collection of a given kind with homogeneous element type.
    Collection(CollectionKind, Box<Type>),
    /// Dense array with `dims` dimensions of the element type.
    Array {
        dims: usize,
        elem: Box<Type>,
    },
}

impl Type {
    /// Build a record type.
    pub fn record<I, S>(fields: I) -> Type
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        Type::Record(fields.into_iter().map(|(n, t)| (n.into(), t)).collect())
    }

    /// Build a bag-of-records type (the common dataset shape).
    pub fn bag(elem: Type) -> Type {
        Type::Collection(CollectionKind::Bag, Box::new(elem))
    }

    /// Type of a record field, if this is a record with that field.
    pub fn field(&self, name: &str) -> Option<&Type> {
        match self {
            Type::Record(fs) => fs.iter().find(|(n, _)| n == name).map(|(_, t)| t),
            _ => None,
        }
    }

    /// Element type if this is any collection/array type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Collection(_, t) => Some(t),
            Type::Array { elem, .. } => Some(elem),
            _ => None,
        }
    }

    /// Is this a numeric scalar type?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Float | Type::Unknown)
    }

    /// Can a value of `self` be used where `other` is expected?
    ///
    /// `Unknown` unifies with everything; `Int` widens to `Float`; records
    /// are compatible field-wise (same names, same order); collections must
    /// match kinds and element compatibility.
    pub fn compatible(&self, other: &Type) -> bool {
        use Type::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => true,
            (Int, Float) | (Float, Int) => true,
            (Record(a), Record(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((an, at), (bn, bt))| an == bn && at.compatible(bt))
            }
            (Collection(ka, ta), Collection(kb, tb)) => ka == kb && ta.compatible(tb),
            (Array { dims: da, elem: ea }, Array { dims: db, elem: eb }) => {
                da == db && ea.compatible(eb)
            }
            (a, b) => a == b,
        }
    }

    /// Least upper bound of two compatible types, used when merging branches
    /// of `if`/monoid arms. Returns `None` when incompatible.
    pub fn unify(&self, other: &Type) -> Option<Type> {
        use Type::*;
        match (self, other) {
            (Unknown, t) | (t, Unknown) => Some(t.clone()),
            (Int, Float) | (Float, Int) => Some(Float),
            (Record(a), Record(b)) if a.len() == b.len() => {
                let mut fields = Vec::with_capacity(a.len());
                for ((an, at), (bn, bt)) in a.iter().zip(b.iter()) {
                    if an != bn {
                        return None;
                    }
                    fields.push((an.clone(), at.unify(bt)?));
                }
                Some(Record(fields))
            }
            (Collection(ka, ta), Collection(kb, tb)) if ka == kb => {
                Some(Collection(*ka, Box::new(ta.unify(tb)?)))
            }
            (Array { dims: da, elem: ea }, Array { dims: db, elem: eb }) if da == db => {
                Some(Array {
                    dims: *da,
                    elem: Box::new(ea.unify(eb)?),
                })
            }
            (a, b) if a == b => Some(a.clone()),
            _ => None,
        }
    }

    /// Infer the most specific type of a runtime value.
    pub fn of_value(v: &Value) -> Type {
        match v {
            Value::Null => Type::Unknown,
            Value::Bool(_) => Type::Bool,
            Value::Int(_) => Type::Int,
            Value::Float(_) => Type::Float,
            Value::Str(_) => Type::Str,
            Value::Record(fs) => Type::Record(
                fs.iter()
                    .map(|(n, v)| (n.clone(), Type::of_value(v)))
                    .collect(),
            ),
            Value::Collection(k, items) => {
                let elem = items
                    .iter()
                    .map(Type::of_value)
                    .try_fold(Type::Unknown, |acc, t| acc.unify(&t))
                    .unwrap_or(Type::Unknown);
                Type::Collection(*k, Box::new(elem))
            }
            Value::Array { dims, data } => {
                let elem = data
                    .iter()
                    .map(Type::of_value)
                    .try_fold(Type::Unknown, |acc, t| acc.unify(&t))
                    .unwrap_or(Type::Unknown);
                Type::Array {
                    dims: dims.len(),
                    elem: Box::new(elem),
                }
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Unknown => write!(f, "?"),
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Str => write!(f, "string"),
            Type::Record(fs) => {
                write!(f, "(")?;
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                write!(f, ")")
            }
            Type::Collection(k, t) => write!(f, "{}<{t}>", k.name()),
            Type::Array { dims, elem } => write!(f, "array{dims}<{elem}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_unifies_with_everything() {
        for t in [Type::Bool, Type::Int, Type::Float, Type::Str] {
            assert!(Type::Unknown.compatible(&t));
            assert_eq!(Type::Unknown.unify(&t), Some(t));
        }
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(Type::Int.unify(&Type::Float), Some(Type::Float));
        assert!(Type::Int.compatible(&Type::Float));
        assert!(!Type::Int.compatible(&Type::Str));
    }

    #[test]
    fn record_unification_is_fieldwise() {
        let a = Type::record([("x", Type::Int), ("y", Type::Unknown)]);
        let b = Type::record([("x", Type::Float), ("y", Type::Str)]);
        assert_eq!(
            a.unify(&b),
            Some(Type::record([("x", Type::Float), ("y", Type::Str)]))
        );
        let c = Type::record([("z", Type::Int), ("y", Type::Str)]);
        assert_eq!(a.unify(&c), None);
    }

    #[test]
    fn collection_kinds_do_not_unify() {
        let s = Type::Collection(CollectionKind::Set, Box::new(Type::Int));
        let b = Type::bag(Type::Int);
        assert_eq!(s.unify(&b), None);
        assert!(!s.compatible(&b));
    }

    #[test]
    fn of_value_infers_element_lub() {
        let v = Value::bag(vec![Value::Int(1), Value::Float(2.0)]);
        assert_eq!(Type::of_value(&v), Type::bag(Type::Float));
        let v2 = Value::bag(vec![]);
        assert_eq!(Type::of_value(&v2), Type::bag(Type::Unknown));
    }

    #[test]
    fn of_value_nested_record() {
        let v = Value::record([
            ("id", Value::Int(1)),
            ("tags", Value::list(vec![Value::str("a")])),
        ]);
        assert_eq!(
            Type::of_value(&v),
            Type::record([
                ("id", Type::Int),
                (
                    "tags",
                    Type::Collection(CollectionKind::List, Box::new(Type::Str))
                ),
            ])
        );
    }

    #[test]
    fn display_is_readable() {
        let t = Type::bag(Type::record([("x", Type::Int)]));
        assert_eq!(t.to_string(), "bag<(x: int)>");
    }

    #[test]
    fn heterogeneous_collection_has_unknown_elem() {
        let v = Value::bag(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(Type::of_value(&v), Type::bag(Type::Unknown));
    }
}
