//! Lock primitives with a `parking_lot`-style API over the standard library.
//!
//! The workspace builds offline with no external dependencies, so the
//! ergonomic `parking_lot` locks (no poison `Result` at every call site) are
//! provided here as thin wrappers over `std::sync`. Poisoning is treated as
//! unrecoverable: a panic while holding one of these locks means shared state
//! may be torn, and propagating the panic is the correct behavior for an
//! engine whose caches can always be rebuilt from the raw files.

use std::sync::{self, LockResult, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(e) => panic!("lock poisoned by a panicking holder: {e}"),
    }
}

/// Mutual exclusion lock; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Pads (and aligns) a value to a cache line.
///
/// Hot shared atomics — the morsel claim cursor, per-worker counters living
/// in one array — must not share a cache line with neighboring data, or
/// every update ping-pongs the line between cores ("false sharing"). 64
/// bytes covers x86-64 and the common AArch64 parts; oversized lines (some
/// Apple cores prefetch pairs) only cost a little memory here.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    pub fn new(value: T) -> Self {
        CachePadded(value)
    }

    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn cache_padded_is_line_aligned_and_transparent() {
        let p = CachePadded::new(7u8);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        assert_eq!(p.into_inner(), 7);
        let mut m = CachePadded::new(vec![1]);
        m.push(2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
