//! Lock primitives with a `parking_lot`-style API over the standard library.
//!
//! The workspace builds offline with no external dependencies, so the
//! ergonomic `parking_lot` locks (no poison `Result` at every call site) are
//! provided here as thin wrappers over `std::sync`. Poisoning is treated as
//! unrecoverable: a panic while holding one of these locks means shared state
//! may be torn, and propagating the panic is the correct behavior for an
//! engine whose caches can always be rebuilt from the raw files.

use std::sync::{self, LockResult, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(e) => panic!("lock poisoned by a panicking holder: {e}"),
    }
}

/// Mutual exclusion lock; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
