//! # vida-sql
//!
//! SQL front-end for ViDa (§3.2 "Expressive Power").
//!
//! "Support for a variety of query languages can be provided through a
//! 'syntactic sugar' translation layer, which maps queries written in the
//! original language to the internal notation." This crate is that layer
//! for a SQL subset sufficient for the paper's evaluation workload:
//!
//! ```sql
//! SELECT val1, ..., valN
//! FROM Patients p JOIN Genetics g ON (p.id = g.id)
//!                 JOIN BrainRegions b ON (g.id = b.id)
//! WHERE pred1 AND ... AND predN
//! ```
//!
//! plus single-aggregate queries (`SELECT COUNT(*) ...`, `SUM`, `AVG`,
//! `MIN`, `MAX`). Translation targets the monoid comprehension calculus —
//! the SQL above becomes
//!
//! ```text
//! for { p <- Patients, g <- Genetics, b <- BrainRegions,
//!       p.id = g.id, g.id = b.id, pred1, ..., predN
//! } yield bag (val1 := ..., ...)
//! ```

mod lexer;
mod translate;

pub use translate::sql_to_comprehension;
