//! SQL → comprehension translation.

use crate::lexer::{lex_sql, SqlToken};
use vida_lang::{BinOp, Expr, Qualifier, UnOp};
use vida_types::{CollectionKind, Monoid, PrimitiveMonoid, Result, Value, VidaError};

/// Translate a SQL query into a monoid comprehension expression.
///
/// Supported shape:
/// `SELECT items FROM t [a] (JOIN t2 [a2] ON pred)* [WHERE pred]`
/// where items are column expressions (optionally aliased) or a single
/// aggregate (`COUNT(*)`, `COUNT(e)`, `SUM(e)`, `AVG(e)`, `MIN(e)`,
/// `MAX(e)`), or `SELECT DISTINCT` for set semantics.
pub fn sql_to_comprehension(sql: &str) -> Result<Expr> {
    let tokens = lex_sql(sql)?;
    let mut p = SqlParser { tokens, pos: 0 };
    let e = p.query()?;
    p.expect_eof()?;
    Ok(e)
}

struct SqlParser {
    tokens: Vec<SqlToken>,
    pos: usize,
}

#[derive(Debug)]
enum SelectItem {
    /// Plain expression with output name.
    Expr(String, Expr),
    /// Aggregate call (monoid, argument; None = COUNT(*)).
    Agg(PrimitiveMonoid, Option<Expr>),
    /// `SELECT *`
    Star,
}

impl SqlParser {
    fn peek(&self) -> &SqlToken {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> SqlToken {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &SqlToken) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), SqlToken::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(VidaError::parse(
                format!("expected {kw}, found {:?}", self.peek()),
                1,
                self.pos as u32 + 1,
            ))
        }
    }

    fn expect(&mut self, t: SqlToken) -> Result<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(VidaError::parse(
                format!("expected {t:?}, found {:?}", self.peek()),
                1,
                self.pos as u32 + 1,
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), SqlToken::Eof) {
            Ok(())
        } else {
            Err(VidaError::parse(
                format!("unexpected {:?} after query", self.peek()),
                1,
                self.pos as u32 + 1,
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            SqlToken::Ident(s) => Ok(s),
            other => Err(VidaError::parse(
                format!("expected identifier, found {other:?}"),
                1,
                self.pos as u32 + 1,
            )),
        }
    }

    fn query(&mut self) -> Result<Expr> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let items = self.select_list()?;
        self.expect_kw("FROM")?;

        // FROM table [alias] (JOIN table [alias] ON expr)*
        let mut qualifiers: Vec<Qualifier> = Vec::new();
        let mut bindings: Vec<String> = Vec::new();
        let (table, alias) = self.table_ref()?;
        bindings.push(alias.clone());
        qualifiers.push(Qualifier::Generator(alias, Expr::var(table)));
        loop {
            let _ = self.eat_kw("INNER");
            if !self.eat_kw("JOIN") {
                break;
            }
            let (table, alias) = self.table_ref()?;
            bindings.push(alias.clone());
            qualifiers.push(Qualifier::Generator(alias, Expr::var(table)));
            self.expect_kw("ON")?;
            let pred = self.expr()?;
            qualifiers.push(Qualifier::Filter(pred));
        }
        if self.eat_kw("WHERE") {
            let pred = self.expr()?;
            qualifiers.push(Qualifier::Filter(pred));
        }

        // Build the head.
        let (monoid, head) = self.build_head(items, distinct, &bindings)?;
        Ok(Expr::Comprehension {
            monoid,
            head: Box::new(head),
            qualifiers,
        })
    }

    fn build_head(
        &self,
        items: Vec<SelectItem>,
        distinct: bool,
        bindings: &[String],
    ) -> Result<(Monoid, Expr)> {
        // Single aggregate → primitive monoid.
        if items.len() == 1 {
            if let SelectItem::Agg(m, arg) = &items[0] {
                let head = match (m, arg) {
                    (PrimitiveMonoid::Count, None) => Expr::int(1),
                    (PrimitiveMonoid::Count, Some(_)) => Expr::int(1),
                    (_, Some(e)) => e.clone(),
                    (_, None) => return Err(VidaError::parse("aggregate needs an argument", 1, 1)),
                };
                // COUNT folds with sum over 1s.
                let monoid = match m {
                    PrimitiveMonoid::Count => Monoid::Primitive(PrimitiveMonoid::Sum),
                    other => Monoid::Primitive(*other),
                };
                return Ok((monoid, head));
            }
        }
        if items.iter().any(|i| matches!(i, SelectItem::Agg(..))) {
            return Err(VidaError::parse(
                "aggregates cannot mix with plain columns (no GROUP BY support)",
                1,
                1,
            ));
        }

        let kind = if distinct {
            CollectionKind::Set
        } else {
            CollectionKind::Bag
        };
        // SELECT * → record of all bindings.
        if items.len() == 1 && matches!(items[0], SelectItem::Star) {
            let head = if bindings.len() == 1 {
                Expr::var(bindings[0].clone())
            } else {
                Expr::Record(
                    bindings
                        .iter()
                        .map(|b| (b.clone(), Expr::var(b.clone())))
                        .collect(),
                )
            };
            return Ok((Monoid::Collection(kind), head));
        }
        let mut fields = Vec::with_capacity(items.len());
        for item in items {
            match item {
                SelectItem::Expr(name, e) => fields.push((name, e)),
                SelectItem::Star => {
                    return Err(VidaError::parse("'*' cannot mix with columns", 1, 1))
                }
                SelectItem::Agg(..) => unreachable!("checked above"),
            }
        }
        Ok((Monoid::Collection(kind), Expr::Record(fields)))
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item(items.len())?);
            if !self.eat(&SqlToken::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self, index: usize) -> Result<SelectItem> {
        if self.eat(&SqlToken::Star) {
            return Ok(SelectItem::Star);
        }
        // Aggregate?
        if let SqlToken::Keyword(kw) = self.peek().clone() {
            if let Some(m) = agg_monoid(&kw) {
                self.bump();
                self.expect(SqlToken::LParen)?;
                let arg = if self.eat(&SqlToken::Star) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(SqlToken::RParen)?;
                // Optional alias, ignored for single-aggregate results.
                if self.eat_kw("AS") {
                    let _ = self.ident()?;
                }
                return Ok(SelectItem::Agg(m, arg));
            }
        }
        let e = self.expr()?;
        let name = if self.eat_kw("AS") {
            self.ident()?
        } else {
            default_name(&e, index)
        };
        Ok(SelectItem::Expr(name, e))
    }

    fn table_ref(&mut self) -> Result<(String, String)> {
        let table = self.ident()?;
        // Optional alias (an identifier not followed by '.' semantics —
        // aliases here are plain idents before JOIN/ON/WHERE/EOF).
        let alias = match self.peek() {
            SqlToken::Ident(a) => {
                let a = a.clone();
                self.bump();
                a
            }
            _ => table.clone(),
        };
        Ok((table, alias))
    }

    // Expression grammar: or > and > not > comparison > additive > mult.
    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let e = self.not_expr()?;
            return Ok(Expr::UnOp(UnOp::Not, Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            SqlToken::Eq => Some(BinOp::Eq),
            SqlToken::Ne => Some(BinOp::Ne),
            SqlToken::Lt => Some(BinOp::Lt),
            SqlToken::Le => Some(BinOp::Le),
            SqlToken::Gt => Some(BinOp::Gt),
            SqlToken::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                SqlToken::Plus => BinOp::Add,
                SqlToken::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                SqlToken::Star => BinOp::Mul,
                SqlToken::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.primary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            SqlToken::Int(i) => Ok(Expr::int(i)),
            SqlToken::Float(f) => Ok(Expr::float(f)),
            SqlToken::Str(s) => Ok(Expr::str(s)),
            SqlToken::Keyword(k) if k == "TRUE" => Ok(Expr::bool(true)),
            SqlToken::Keyword(k) if k == "FALSE" => Ok(Expr::bool(false)),
            SqlToken::Keyword(k) if k == "NULL" => Ok(Expr::Const(Value::Null)),
            SqlToken::Minus => {
                let e = self.primary()?;
                Ok(match e {
                    Expr::Const(Value::Int(i)) => Expr::int(-i),
                    Expr::Const(Value::Float(f)) => Expr::float(-f),
                    other => Expr::UnOp(UnOp::Neg, Box::new(other)),
                })
            }
            SqlToken::LParen => {
                let e = self.expr()?;
                self.expect(SqlToken::RParen)?;
                Ok(e)
            }
            SqlToken::Ident(name) => {
                let mut e = Expr::var(name);
                while self.eat(&SqlToken::Dot) {
                    let field = self.ident()?;
                    e = e.proj(field);
                }
                Ok(e)
            }
            other => Err(VidaError::parse(
                format!("unexpected {other:?} in expression"),
                1,
                self.pos as u32 + 1,
            )),
        }
    }
}

fn agg_monoid(kw: &str) -> Option<PrimitiveMonoid> {
    Some(match kw {
        "COUNT" => PrimitiveMonoid::Count,
        "SUM" => PrimitiveMonoid::Sum,
        "AVG" => PrimitiveMonoid::Avg,
        "MIN" => PrimitiveMonoid::Min,
        "MAX" => PrimitiveMonoid::Max,
        _ => return None,
    })
}

/// Output column name when no alias is given: trailing projection name or
/// `col<i>`.
fn default_name(e: &Expr, index: usize) -> String {
    match e {
        Expr::Proj(_, field) => field.clone(),
        Expr::Var(v) => v.clone(),
        _ => format!("col{index}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_lang::{eval, parse, Bindings};

    fn env() -> Bindings {
        let mut e = Bindings::new();
        e.insert(
            "Employees".into(),
            Value::bag(vec![
                Value::record([
                    ("id", Value::Int(1)),
                    ("deptNo", Value::Int(10)),
                    ("age", Value::Int(45)),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    ("deptNo", Value::Int(20)),
                    ("age", Value::Int(30)),
                ]),
                Value::record([
                    ("id", Value::Int(3)),
                    ("deptNo", Value::Int(10)),
                    ("age", Value::Int(52)),
                ]),
            ]),
        );
        e.insert(
            "Departments".into(),
            Value::bag(vec![
                Value::record([("id", Value::Int(10)), ("deptName", Value::str("HR"))]),
                Value::record([("id", Value::Int(20)), ("deptName", Value::str("Eng"))]),
            ]),
        );
        e
    }

    /// The paper's §3.2 pair: the SQL COUNT query and its comprehension
    /// translation must agree.
    #[test]
    fn paper_count_example_translates() {
        let sql = sql_to_comprehension(
            "SELECT COUNT(e.id) \
             FROM Employees e JOIN Departments d ON (e.deptNo = d.id) \
             WHERE d.deptName = 'HR'",
        )
        .unwrap();
        let compr = parse(
            "for { e <- Employees, d <- Departments, \
             e.deptNo = d.id, d.deptName = \"HR\"} yield sum 1",
        )
        .unwrap();
        assert_eq!(eval(&sql, &env()).unwrap(), eval(&compr, &env()).unwrap());
        assert_eq!(eval(&sql, &env()).unwrap(), Value::Int(2));
    }

    #[test]
    fn projection_query() {
        let e =
            sql_to_comprehension("SELECT e.id, e.age AS years FROM Employees e WHERE e.age > 40")
                .unwrap();
        let v = eval(&e, &env()).unwrap();
        let items = v.elements().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].field("id"), Some(&Value::Int(1)));
        assert_eq!(items[0].field("years"), Some(&Value::Int(45)));
    }

    #[test]
    fn aggregates() {
        let cases = [
            ("SELECT COUNT(*) FROM Employees e", Value::Int(3)),
            ("SELECT SUM(e.age) FROM Employees e", Value::Int(127)),
            ("SELECT MAX(e.age) FROM Employees e", Value::Int(52)),
            ("SELECT MIN(e.age) FROM Employees e", Value::Int(30)),
            (
                "SELECT AVG(e.age) FROM Employees e",
                Value::Float(127.0 / 3.0),
            ),
        ];
        for (sql, expected) in cases {
            let e = sql_to_comprehension(sql).unwrap();
            assert_eq!(eval(&e, &env()).unwrap(), expected, "{sql}");
        }
    }

    #[test]
    fn select_star_single_table() {
        let e = sql_to_comprehension("SELECT * FROM Departments d").unwrap();
        let v = eval(&e, &env()).unwrap();
        assert_eq!(v.elements().unwrap().len(), 2);
        assert_eq!(
            v.elements().unwrap()[0].field("deptName"),
            Some(&Value::str("HR"))
        );
    }

    #[test]
    fn distinct_gives_set_semantics() {
        let e = sql_to_comprehension("SELECT DISTINCT e.deptNo AS d FROM Employees e").unwrap();
        let v = eval(&e, &env()).unwrap();
        assert_eq!(v.elements().unwrap().len(), 2);
    }

    #[test]
    fn multi_join_chain() {
        let e = sql_to_comprehension(
            "SELECT COUNT(*) FROM Employees e \
             JOIN Departments d ON e.deptNo = d.id \
             JOIN Departments d2 ON d.id = d2.id",
        )
        .unwrap();
        assert_eq!(eval(&e, &env()).unwrap(), Value::Int(3));
    }

    #[test]
    fn where_with_and_or_not() {
        let e = sql_to_comprehension(
            "SELECT COUNT(*) FROM Employees e \
             WHERE (e.age > 40 AND e.deptNo = 10) OR NOT e.age >= 30",
        )
        .unwrap();
        assert_eq!(eval(&e, &env()).unwrap(), Value::Int(2));
    }

    #[test]
    fn arithmetic_in_select() {
        let e = sql_to_comprehension("SELECT e.age * 2 + 1 AS x FROM Employees e").unwrap();
        let v = eval(&e, &env()).unwrap();
        assert_eq!(v.elements().unwrap()[0].field("x"), Some(&Value::Int(91)));
    }

    #[test]
    fn errors() {
        assert!(sql_to_comprehension("SELECT FROM T t").is_err());
        assert!(sql_to_comprehension("SELECT a.x, COUNT(*) FROM T a").is_err()); // no GROUP BY
        assert!(sql_to_comprehension("SELECT * FROM").is_err());
        assert!(sql_to_comprehension("SELECT * FROM T t WHERE").is_err());
        assert!(sql_to_comprehension("FROB x").is_err());
    }

    #[test]
    fn implicit_column_names() {
        let e = sql_to_comprehension("SELECT e.id, e.age + 1 FROM Employees e").unwrap();
        let v = eval(&e, &env()).unwrap();
        let first = &v.elements().unwrap()[0];
        assert!(first.field("id").is_some());
        assert!(first.field("col1").is_some());
    }
}
