//! SQL tokenizer (case-insensitive keywords, `'single-quoted'` strings).

use vida_types::{Result, VidaError};

#[derive(Debug, Clone, PartialEq)]
pub enum SqlToken {
    /// Uppercased keyword (SELECT, FROM, JOIN, ON, WHERE, AND, OR, NOT, AS,
    /// COUNT, SUM, AVG, MIN, MAX, DISTINCT).
    Keyword(String),
    /// Identifier (original case preserved).
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Slash,
    Eof,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "JOIN", "INNER", "ON", "WHERE", "AND", "OR", "NOT", "AS", "COUNT", "SUM",
    "AVG", "MIN", "MAX", "DISTINCT", "TRUE", "FALSE", "NULL",
];

pub fn lex_sql(src: &str) -> Result<Vec<SqlToken>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            b',' => {
                out.push(SqlToken::Comma);
                i += 1;
            }
            b'.' => {
                out.push(SqlToken::Dot);
                i += 1;
            }
            b'(' => {
                out.push(SqlToken::LParen);
                i += 1;
            }
            b')' => {
                out.push(SqlToken::RParen);
                i += 1;
            }
            b'*' => {
                out.push(SqlToken::Star);
                i += 1;
            }
            b'+' => {
                out.push(SqlToken::Plus);
                i += 1;
            }
            b'-' => {
                out.push(SqlToken::Minus);
                i += 1;
            }
            b'/' => {
                out.push(SqlToken::Slash);
                i += 1;
            }
            b'=' => {
                out.push(SqlToken::Eq);
                i += 1;
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(SqlToken::Ne);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SqlToken::Le);
                    i += 2;
                } else {
                    out.push(SqlToken::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SqlToken::Ge);
                    i += 2;
                } else {
                    out.push(SqlToken::Gt);
                    i += 1;
                }
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SqlToken::Ne);
                    i += 2;
                } else {
                    return Err(VidaError::parse("unexpected '!'", 1, i as u32 + 1));
                }
            }
            b'\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(VidaError::parse(
                            "unterminated string literal",
                            1,
                            i as u32 + 1,
                        ));
                    }
                    if bytes[j] == b'\'' {
                        // '' escapes a quote
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                out.push(SqlToken::Str(s));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                if is_float {
                    out.push(SqlToken::Float(text.parse().map_err(|_| {
                        VidaError::parse("bad float", 1, start as u32 + 1)
                    })?));
                } else {
                    out.push(SqlToken::Int(text.parse().map_err(|_| {
                        VidaError::parse("integer out of range", 1, start as u32 + 1)
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'"' => {
                // "quoted identifiers" keep case and allow keywords as names.
                if c == b'"' {
                    let start = i + 1;
                    let end = bytes[start..]
                        .iter()
                        .position(|&b| b == b'"')
                        .ok_or_else(|| {
                            VidaError::parse("unterminated quoted identifier", 1, i as u32 + 1)
                        })?
                        + start;
                    out.push(SqlToken::Ident(
                        String::from_utf8_lossy(&bytes[start..end]).into_owned(),
                    ));
                    i = end + 1;
                    continue;
                }
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&bytes[start..i]).unwrap();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(SqlToken::Keyword(upper));
                } else {
                    out.push(SqlToken::Ident(word.to_string()));
                }
            }
            other => {
                return Err(VidaError::parse(
                    format!("unexpected character '{}'", other as char),
                    1,
                    i as u32 + 1,
                ))
            }
        }
    }
    out.push(SqlToken::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let t = lex_sql("select From WHERE").unwrap();
        assert_eq!(t[0], SqlToken::Keyword("SELECT".into()));
        assert_eq!(t[1], SqlToken::Keyword("FROM".into()));
        assert_eq!(t[2], SqlToken::Keyword("WHERE".into()));
    }

    #[test]
    fn identifiers_keep_case() {
        let t = lex_sql("Patients p").unwrap();
        assert_eq!(t[0], SqlToken::Ident("Patients".into()));
        assert_eq!(t[1], SqlToken::Ident("p".into()));
    }

    #[test]
    fn strings_and_escapes() {
        let t = lex_sql("'HR' 'o''brien'").unwrap();
        assert_eq!(t[0], SqlToken::Str("HR".into()));
        assert_eq!(t[1], SqlToken::Str("o'brien".into()));
        assert!(lex_sql("'open").is_err());
    }

    #[test]
    fn operators() {
        let t = lex_sql("= <> != <= >= < >").unwrap();
        assert_eq!(
            &t[..7],
            &[
                SqlToken::Eq,
                SqlToken::Ne,
                SqlToken::Ne,
                SqlToken::Le,
                SqlToken::Ge,
                SqlToken::Lt,
                SqlToken::Gt
            ]
        );
    }

    #[test]
    fn numbers() {
        let t = lex_sql("42 2.5").unwrap();
        assert_eq!(t[0], SqlToken::Int(42));
        assert_eq!(t[1], SqlToken::Float(2.5));
    }

    #[test]
    fn quoted_identifier() {
        let t = lex_sql("\"select\"").unwrap();
        assert_eq!(t[0], SqlToken::Ident("select".into()));
    }
}
