//! The worker pool: scoped threads pulling morsels from a shared claim
//! counter.
//!
//! Dispatch is the morsel-driven scheme: workers `fetch_add` a shared
//! cursor to claim the next morsel, so fast workers naturally absorb skewed
//! morsels without any static assignment. Each worker owns private scratch
//! state for the whole run (per-worker hash tables, stat counters, frame
//! buffers) — the "per-worker state" half of the NUMA-friendly design, minus
//! the NUMA placement `std` cannot express.
//!
//! Results come back **in morsel order**, not completion order, which is
//! what makes downstream merges deterministic.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use vida_trace::global_metrics;
use vida_types::sync::{CachePadded, Mutex};

/// A pool of `threads` workers executing morsel runs.
///
/// The pool is a lightweight handle: workers are spawned per run as scoped
/// threads (borrowing the caller's data directly), and a run with one
/// thread executes inline on the caller with zero synchronization.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool with `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `morsels` work items and collect their results in morsel
    /// order.
    ///
    /// `init(worker)` builds one scratch value per worker; `work(&mut
    /// scratch, morsel)` processes one morsel. The first error cancels the
    /// run: in-flight morsels finish, unclaimed ones are skipped, and the
    /// error is returned. With one thread everything runs inline on the
    /// caller.
    pub fn run_morsels<S, R, E, I, W>(
        &self,
        morsels: usize,
        init: I,
        work: W,
    ) -> std::result::Result<Vec<R>, E>
    where
        S: Send,
        R: Send,
        E: Send,
        I: Fn(usize) -> S + Sync,
        W: Fn(&mut S, usize) -> std::result::Result<R, E> + Sync,
    {
        if morsels == 0 {
            return Ok(Vec::new());
        }
        if self.threads == 1 {
            let mut scratch = init(0);
            return (0..morsels).map(|m| work(&mut scratch, m)).collect();
        }

        let cursor = CachePadded::new(AtomicUsize::new(0));
        let failed = AtomicBool::new(false);
        let error: Mutex<Option<E>> = Mutex::new(None);
        let slots: Vec<Mutex<Option<R>>> = (0..morsels).map(|_| Mutex::new(None)).collect();
        let spawned = self.threads.min(morsels);
        // Per-worker claim counts, published at run end so the coordinator
        // can report the claim spread (the steal-imbalance signal).
        let claims: Vec<CachePadded<AtomicUsize>> = (0..spawned)
            .map(|_| CachePadded::new(AtomicUsize::new(0)))
            .collect();

        std::thread::scope(|scope| {
            for worker in 0..spawned {
                let cursor = &cursor;
                let failed = &failed;
                let error = &error;
                let slots = &slots;
                let claims = &claims;
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let run_start = Instant::now();
                    let mut busy = Duration::ZERO;
                    let mut claimed = 0usize;
                    let mut scratch = init(worker);
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let m = cursor.fetch_add(1, Ordering::Relaxed);
                        if m >= morsels {
                            break;
                        }
                        claimed += 1;
                        let t0 = Instant::now();
                        let result = work(&mut scratch, m);
                        busy += t0.elapsed();
                        match result {
                            Ok(r) => *slots[m].lock() = Some(r),
                            Err(e) => {
                                failed.store(true, Ordering::Relaxed);
                                let mut first = error.lock();
                                if first.is_none() {
                                    *first = Some(e);
                                }
                            }
                        }
                    }
                    // Busy = time inside work closures; idle = everything
                    // else in the worker's lifetime (claim contention plus
                    // the tail wait for slower siblings is charged to the
                    // coordinator's scope join, not here).
                    let metrics = global_metrics();
                    metrics.worker_busy_ns.add(busy.as_nanos() as u64);
                    metrics
                        .worker_idle_ns
                        .add(run_start.elapsed().saturating_sub(busy).as_nanos() as u64);
                    metrics.worker_morsel_claims.record(claimed as u64);
                    claims[worker].store(claimed, Ordering::Relaxed);
                });
            }
        });

        let metrics = global_metrics();
        metrics.pool_runs.inc();
        let counts = claims.iter().map(|c| c.load(Ordering::Relaxed));
        let spread = counts.clone().max().unwrap_or(0) - counts.min().unwrap_or(0);
        metrics.morsel_claim_spread.record(spread as u64);

        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.into_inner().expect("run completed without error"))
            .collect())
    }

    /// Run `work` per morsel and fold the partials into one accumulator
    /// **in morsel order** — the merge half of push-pipeline parallelism.
    ///
    /// `work(worker, morsel)` also receives the executing worker's index
    /// (`0..threads`), so callers can attribute per-morsel output — trace
    /// spans, scratch stats — to the worker that produced it. Workers race
    /// on morsel claims and may complete out of order, but the fold the
    /// caller sees is always the serial left fold over morsel-indexed
    /// partials, so the result is identical at every worker count (the
    /// determinism contract). The merge runs on the caller after all
    /// partials exist.
    pub fn fold_morsels<A, P, E, W, M>(
        &self,
        morsels: usize,
        work: W,
        init: A,
        mut merge: M,
    ) -> std::result::Result<A, E>
    where
        P: Send,
        E: Send,
        W: Fn(usize, usize) -> std::result::Result<P, E> + Sync,
        M: FnMut(A, P) -> std::result::Result<A, E>,
    {
        let partials = self.run_morsels(morsels, |w| w, |w, m| work(*w, m))?;
        let mut acc = init;
        for p in partials {
            acc = merge(acc, p)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_come_back_in_morsel_order() {
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            let out: Vec<usize> = pool
                .run_morsels(20, |_| (), |_, m| Ok::<_, ()>(m * m))
                .unwrap();
            assert_eq!(out, (0..20).map(|m| m * m).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_morsel_is_claimed_exactly_once() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool
            .run_morsels(100, |_| (), |_, m| Ok::<_, ()>(m))
            .unwrap();
        let distinct: HashSet<_> = out.iter().copied().collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn scratch_is_per_worker() {
        // Each worker counts the morsels it processed into its scratch; the
        // per-morsel results carry the worker id so we can check no scratch
        // was shared across workers mid-run.
        let pool = WorkerPool::new(3);
        let out = pool
            .run_morsels(
                50,
                |worker| (worker, 0usize),
                |scratch, _| {
                    scratch.1 += 1;
                    Ok::<_, ()>(scratch.0)
                },
            )
            .unwrap();
        assert_eq!(out.len(), 50);
        for w in out {
            assert!(w < 3);
        }
    }

    #[test]
    fn first_error_cancels_the_run() {
        let pool = WorkerPool::new(4);
        let r: std::result::Result<Vec<()>, String> = pool.run_morsels(
            1000,
            |_| (),
            |_, m| {
                if m == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool
            .run_morsels(3, |_| 10usize, |s, m| Ok::<_, ()>(*s + m))
            .unwrap();
        assert_eq!(out, vec![10, 11, 12]);
    }

    #[test]
    fn fold_morsels_merges_in_morsel_order() {
        // A non-commutative fold (string concatenation) exposes any
        // completion-order merge: the result must equal the serial left
        // fold at every worker count.
        let expected: String = (0..32).map(|m| format!("[{m}]")).collect();
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            let folded = pool
                .fold_morsels(
                    32,
                    |_, m| Ok::<_, ()>(format!("[{m}]")),
                    String::new(),
                    |mut acc, p| {
                        acc.push_str(&p);
                        Ok(acc)
                    },
                )
                .unwrap();
            assert_eq!(folded, expected, "threads={threads}");
        }
    }

    #[test]
    fn fold_morsels_propagates_errors() {
        let pool = WorkerPool::new(4);
        let r = pool.fold_morsels(
            10,
            |_, m| if m == 3 { Err("bad morsel") } else { Ok(m) },
            0usize,
            |acc, p| Ok(acc + p),
        );
        assert_eq!(r.unwrap_err(), "bad morsel");
    }

    #[test]
    fn fold_morsels_reports_worker_indexes() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let workers = pool
                .fold_morsels(
                    64,
                    |w, _| Ok::<_, ()>(w),
                    Vec::new(),
                    |mut acc, w| {
                        acc.push(w);
                        Ok(acc)
                    },
                )
                .unwrap();
            assert_eq!(workers.len(), 64);
            assert!(workers.iter().all(|&w| w < threads), "threads={threads}");
        }
    }

    #[test]
    fn threaded_runs_meter_worker_time_and_claims() {
        // Metrics are global and shared across concurrently-running tests,
        // so assert on deltas, not absolutes.
        let before = global_metrics().snapshot();
        let pool = WorkerPool::new(2);
        let out: Vec<usize> = pool.run_morsels(16, |_| (), |_, m| Ok::<_, ()>(m)).unwrap();
        assert_eq!(out.len(), 16);
        let delta = global_metrics().snapshot().since(&before);
        assert!(delta.pool_runs >= 1);
        // Both workers published a claim count, and all 16 claims landed.
        assert!(delta.worker_morsel_claims.count() >= 2);
        assert!(delta.worker_morsel_claims.sum >= 16);
    }

    #[test]
    fn zero_morsels_is_empty() {
        let pool = WorkerPool::new(8);
        let out: Vec<u8> = pool.run_morsels(0, |_| (), |_, _| Ok::<_, ()>(0)).unwrap();
        assert!(out.is_empty());
    }
}
