//! The worker pool: morsel-driven workers pulling from a shared claim
//! counter, in two residency modes.
//!
//! Dispatch is the morsel-driven scheme: workers `fetch_add` a shared
//! cursor to claim the next morsel, so fast workers naturally absorb skewed
//! morsels without any static assignment. Each worker owns private scratch
//! state for the whole run (per-worker hash tables, stat counters, frame
//! buffers) — the "per-worker state" half of the NUMA-friendly design, minus
//! the NUMA placement `std` cannot express.
//!
//! A [`WorkerPool`] handle comes in two flavors:
//!
//! - **Per-run spawn** ([`WorkerPool::new`]): workers are spawned per run as
//!   scoped threads borrowing the caller's data directly — the library
//!   entry-point behavior `run_jit` keeps for compatibility.
//! - **Resident** ([`WorkerPool::resident`]): workers are spawned once and
//!   park between queries; each `run_morsels` call *attaches* a run to the
//!   shared pool and *detaches* when its morsels drain. Workers rotate
//!   round-robin across every attached run, claiming one morsel at a time,
//!   so concurrent queries time-slice the same workers at morsel
//!   granularity instead of oversubscribing the machine with per-query
//!   threads.
//!
//! Results come back **in morsel order**, not completion order, which is
//! what makes downstream merges deterministic — in both modes, at every
//! worker count, with any number of concurrently attached runs.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};
use vida_trace::global_metrics;
use vida_types::sync::{CachePadded, Mutex};

/// A pool of `threads` workers executing morsel runs.
///
/// The handle is cheap to clone. In spawn mode it is just a thread count;
/// in resident mode clones share one set of parked worker threads, and the
/// threads shut down (and are joined) when the last handle drops.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
    resident: Option<Arc<ResidentPool>>,
}

impl WorkerPool {
    /// A spawn-mode pool with `threads` workers (minimum 1): every threaded
    /// run spawns its workers as scoped threads and joins them at run end.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
            resident: None,
        }
    }

    /// A resident pool with `threads` workers (minimum 1), spawned now and
    /// parked between runs. Runs attach to the shared workers instead of
    /// spawning; concurrent runs from different threads interleave on the
    /// same workers, one morsel claim at a time.
    pub fn resident(threads: usize) -> Self {
        let threads = threads.max(1);
        WorkerPool {
            threads,
            resident: Some(Arc::new(ResidentPool::start(threads))),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this handle attaches runs to resident workers instead of
    /// spawning per run.
    pub fn is_resident(&self) -> bool {
        self.resident.is_some()
    }

    /// Execute `morsels` work items and collect their results in morsel
    /// order.
    ///
    /// `init(worker)` builds one scratch value per worker; `work(&mut
    /// scratch, morsel)` processes one morsel. The first error cancels the
    /// run: in-flight morsels finish, unclaimed ones are skipped, and the
    /// error is returned. In spawn mode a one-thread run executes inline on
    /// the caller with zero synchronization; a resident run always attaches
    /// to the pool so concurrent callers share the workers fairly.
    pub fn run_morsels<S, R, E, I, W>(
        &self,
        morsels: usize,
        init: I,
        work: W,
    ) -> std::result::Result<Vec<R>, E>
    where
        S: Send,
        R: Send,
        E: Send,
        I: Fn(usize) -> S + Sync,
        W: Fn(&mut S, usize) -> std::result::Result<R, E> + Sync,
    {
        if morsels == 0 {
            return Ok(Vec::new());
        }
        if self.threads == 1 {
            // One worker claims every morsel in order whether the run
            // executes inline or on a parked resident worker — so run it
            // inline and skip the wakeup round-trip. Concurrent callers of
            // a 1-worker resident pool each drive their own morsels on
            // their own thread; the OS scheduler is the time slicer.
            let mut scratch = init(0);
            return (0..morsels).map(|m| work(&mut scratch, m)).collect();
        }
        if let Some(pool) = &self.resident {
            return pool.attach_run(morsels, &init, &work);
        }

        let cursor = CachePadded::new(AtomicUsize::new(0));
        let failed = AtomicBool::new(false);
        let error: Mutex<Option<E>> = Mutex::new(None);
        let slots: Vec<Mutex<Option<R>>> = (0..morsels).map(|_| Mutex::new(None)).collect();
        let spawned = self.threads.min(morsels);
        // Per-worker claim counts, published at run end so the coordinator
        // can report the claim spread (the steal-imbalance signal).
        let claims: Vec<CachePadded<AtomicUsize>> = (0..spawned)
            .map(|_| CachePadded::new(AtomicUsize::new(0)))
            .collect();
        global_metrics().pool_thread_spawns.add(spawned as u64);

        std::thread::scope(|scope| {
            for worker in 0..spawned {
                let cursor = &cursor;
                let failed = &failed;
                let error = &error;
                let slots = &slots;
                let claims = &claims;
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let run_start = Instant::now();
                    let mut busy = Duration::ZERO;
                    let mut claimed = 0usize;
                    let mut scratch = init(worker);
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let m = cursor.fetch_add(1, Ordering::Relaxed);
                        if m >= morsels {
                            break;
                        }
                        claimed += 1;
                        let t0 = Instant::now();
                        let result = work(&mut scratch, m);
                        busy += t0.elapsed();
                        match result {
                            Ok(r) => *slots[m].lock() = Some(r),
                            Err(e) => {
                                failed.store(true, Ordering::Relaxed);
                                let mut first = error.lock();
                                if first.is_none() {
                                    *first = Some(e);
                                }
                            }
                        }
                    }
                    // Busy = time inside work closures; idle = everything
                    // else in the worker's lifetime (claim contention plus
                    // the tail wait for slower siblings is charged to the
                    // coordinator's scope join, not here).
                    let metrics = global_metrics();
                    metrics.worker_busy_ns.add(busy.as_nanos() as u64);
                    metrics
                        .worker_idle_ns
                        .add(run_start.elapsed().saturating_sub(busy).as_nanos() as u64);
                    metrics.worker_morsel_claims.record(claimed as u64);
                    claims[worker].store(claimed, Ordering::Relaxed);
                });
            }
        });

        let metrics = global_metrics();
        metrics.pool_runs.inc();
        let counts = claims.iter().map(|c| c.load(Ordering::Relaxed));
        let spread = counts.clone().max().unwrap_or(0) - counts.min().unwrap_or(0);
        metrics.morsel_claim_spread.record(spread as u64);

        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.into_inner().expect("run completed without error"))
            .collect())
    }

    /// Run `work` per morsel and fold the partials into one accumulator
    /// **in morsel order** — the merge half of push-pipeline parallelism.
    ///
    /// `work(worker, morsel)` also receives the executing worker's index
    /// (`0..threads`), so callers can attribute per-morsel output — trace
    /// spans, scratch stats — to the worker that produced it. Workers race
    /// on morsel claims and may complete out of order, but the fold the
    /// caller sees is always the serial left fold over morsel-indexed
    /// partials, so the result is identical at every worker count (the
    /// determinism contract). The merge runs on the caller after all
    /// partials exist. On a resident pool this is attach/detach, not
    /// spawn/join: the caller parks on the run's completion latch while the
    /// shared workers drain its morsels (interleaved with any other
    /// attached runs), then folds.
    pub fn fold_morsels<A, P, E, W, M>(
        &self,
        morsels: usize,
        work: W,
        init: A,
        mut merge: M,
    ) -> std::result::Result<A, E>
    where
        P: Send,
        E: Send,
        W: Fn(usize, usize) -> std::result::Result<P, E> + Sync,
        M: FnMut(A, P) -> std::result::Result<A, E>,
    {
        let partials = self.run_morsels(morsels, |w| w, |w, m| work(*w, m))?;
        let mut acc = init;
        for p in partials {
            acc = merge(acc, p)?;
        }
        Ok(acc)
    }
}

// ---------------------------------------------------------------------------
// Resident mode
// ---------------------------------------------------------------------------

/// One morsel of one attached run, seen untyped by the pool workers.
///
/// The typed closures, scratch, and result slots live on the *submitting*
/// thread's stack inside [`ResidentPool::attach_run`]; workers reach them
/// through the erased `job` pointer in [`RunEntry`].
trait MorselJob: Sync {
    /// Process morsel `m` as pool worker `worker`. Returns `false` when the
    /// morsel failed (the run records the first error itself).
    fn run_morsel(&self, worker: usize, m: usize) -> bool;
}

/// The typed half of an attached run, borrowed from the submitter's stack.
struct Job<'a, S, R, E, I, W> {
    init: &'a I,
    work: &'a W,
    /// Per-pool-worker scratch, created lazily on a worker's first claim.
    /// Slot `w` is only ever touched by pool worker `w`, but the mutex
    /// keeps the (cold, once-per-worker-per-run) access obviously safe.
    scratch: Vec<Mutex<Option<S>>>,
    /// Results in morsel order — the determinism contract.
    slots: Vec<Mutex<Option<R>>>,
    error: Mutex<Option<E>>,
    /// Nanoseconds spent inside `work`, summed across workers.
    busy_ns: AtomicU64,
}

impl<S, R, E, I, W> MorselJob for Job<'_, S, R, E, I, W>
where
    S: Send,
    R: Send,
    E: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) -> std::result::Result<R, E> + Sync,
{
    fn run_morsel(&self, worker: usize, m: usize) -> bool {
        let mut slot = self.scratch[worker].lock();
        let scratch = slot.get_or_insert_with(|| (self.init)(worker));
        let t0 = Instant::now();
        let result = (self.work)(scratch, m);
        self.busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match result {
            Ok(r) => {
                *self.slots[m].lock() = Some(r);
                true
            }
            Err(e) => {
                let mut first = self.error.lock();
                if first.is_none() {
                    *first = Some(e);
                }
                false
            }
        }
    }
}

/// Claim/progress state of one attached run, shared between the submitter
/// and the pool workers.
struct RunEntry {
    /// Erased pointer to the submitter's stack-held [`Job`].
    ///
    /// # Safety
    /// Only valid while the submitter is parked inside `attach_run`. The
    /// submitter returns only after observing `finished() && users == 0`
    /// under the pool lock, and workers increment `users` under that same
    /// lock before dereferencing — so no worker can touch the pointer after
    /// the submitter's stack unwinds (the rayon-scope argument).
    job: *const (dyn MorselJob + 'static),
    morsels: usize,
    /// The shared claim counter — the same `fetch_add` scheme as spawn
    /// mode, which is what lets multiple runs' cursors coexist on one pool.
    cursor: CachePadded<AtomicUsize>,
    /// Morsels claimed and fully processed (success or failure).
    completed: AtomicUsize,
    /// Morsels claimed but still inside `run_morsel`.
    in_flight: AtomicUsize,
    failed: AtomicBool,
    /// Workers currently between claim and release on this entry; guards
    /// the `job` pointer (see above).
    users: AtomicUsize,
    /// Per-pool-worker claim counts for the spread metric.
    claims: Vec<CachePadded<AtomicUsize>>,
}

// SAFETY: the raw `job` pointer is the only non-Sync field; its lifetime is
// protected by the `users` protocol documented on the field.
unsafe impl Send for RunEntry {}
unsafe impl Sync for RunEntry {}

impl RunEntry {
    /// Does this entry still have unclaimed morsels worth a claim attempt?
    fn claimable(&self) -> bool {
        !self.failed.load(Ordering::Relaxed) && self.cursor.load(Ordering::Relaxed) < self.morsels
    }

    /// Has the run retired — every morsel processed, or failed with no
    /// morsel still in flight?
    fn finished(&self) -> bool {
        if self.failed.load(Ordering::Relaxed) {
            self.in_flight.load(Ordering::Relaxed) == 0
        } else {
            self.completed.load(Ordering::Relaxed) == self.morsels
        }
    }
}

struct PoolState {
    /// Runs currently attached, in attach order.
    runs: Vec<Arc<RunEntry>>,
    /// Round-robin pick position — the rotation that time-slices workers
    /// across attached runs.
    next: usize,
    shutdown: bool,
}

/// The long-lived half of a resident [`WorkerPool`]: parked worker threads
/// plus the attached-run list they serve.
#[derive(Debug)]
struct ResidentPool {
    threads: usize,
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes parked workers on attach/shutdown and parked submitters on run
    /// completion.
    cv: Condvar,
    /// Count of attached runs, readable without the state lock. Workers
    /// use it to pick a claim strategy: while it reads 1, a worker drains
    /// its current run with lock-free cursor claims (spawn-mode cost);
    /// at ≥2 every claim goes through the locked round-robin pick — the
    /// morsel-granularity time slice between concurrent queries.
    active: AtomicUsize,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared").finish_non_exhaustive()
    }
}

impl ResidentPool {
    fn start(threads: usize) -> ResidentPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                runs: Vec::new(),
                next: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            active: AtomicUsize::new(0),
        });
        let handles = (0..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vida-worker-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn resident pool worker")
            })
            .collect();
        // Resident threads are counted once, here — a zero delta of this
        // counter across a query is the "no per-query spawns" proof.
        global_metrics().pool_thread_spawns.add(threads as u64);
        ResidentPool {
            threads,
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Attach a run to the pool, park until its morsels drain, detach, and
    /// collect the results in morsel order.
    fn attach_run<S, R, E, I, W>(
        &self,
        morsels: usize,
        init: &I,
        work: &W,
    ) -> std::result::Result<Vec<R>, E>
    where
        S: Send,
        R: Send,
        E: Send,
        I: Fn(usize) -> S + Sync,
        W: Fn(&mut S, usize) -> std::result::Result<R, E> + Sync,
    {
        let job = Job {
            init,
            work,
            scratch: (0..self.threads).map(|_| Mutex::new(None)).collect(),
            slots: (0..morsels).map(|_| Mutex::new(None)).collect(),
            error: Mutex::new(None),
            busy_ns: AtomicU64::new(0),
        };
        // SAFETY: erase the stack borrow to hand the job to long-lived
        // workers; the `users` protocol on `RunEntry::job` guarantees no
        // worker dereferences it after this function returns.
        let erased: *const (dyn MorselJob + 'static) = unsafe {
            std::mem::transmute::<&(dyn MorselJob + '_), *const (dyn MorselJob + 'static)>(&job)
        };
        let entry = Arc::new(RunEntry {
            job: erased,
            morsels,
            cursor: CachePadded::new(AtomicUsize::new(0)),
            completed: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            users: AtomicUsize::new(0),
            claims: (0..self.threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
        });

        {
            let mut state = self.shared.state.lock();
            state.runs.push(Arc::clone(&entry));
            self.shared
                .active
                .store(state.runs.len(), Ordering::Relaxed);
            self.shared.cv.notify_all();
            // Park on the completion latch: every morsel processed (or the
            // run failed and drained) and no worker still inside the job.
            // The Acquire load pairs with each worker's Release decrement,
            // ordering the worker's last job access before our return.
            while !(entry.finished() && entry.users.load(Ordering::Acquire) == 0) {
                state = match self.shared.cv.wait(state) {
                    Ok(g) => g,
                    Err(e) => e.into_inner(),
                };
            }
            state.runs.retain(|r| !Arc::ptr_eq(r, &entry));
            self.shared
                .active
                .store(state.runs.len(), Ordering::Relaxed);
        }

        let metrics = global_metrics();
        metrics.pool_runs.inc();
        metrics.pool_attached_runs.inc();
        metrics
            .worker_busy_ns
            .add(job.busy_ns.load(Ordering::Relaxed));
        // Claim accounting mirrors spawn mode over the workers that
        // actually served this run (parked-elsewhere workers are not idle
        // on our account, so they don't enter the spread).
        let counts: Vec<usize> = entry
            .claims
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .filter(|&c| c > 0)
            .collect();
        for &c in &counts {
            metrics.worker_morsel_claims.record(c as u64);
        }
        let spread =
            counts.iter().max().copied().unwrap_or(0) - counts.iter().min().copied().unwrap_or(0);
        metrics.morsel_claim_spread.record(spread as u64);

        if let Some(e) = job.error.into_inner() {
            return Err(e);
        }
        Ok(job
            .slots
            .into_iter()
            .map(|s| s.into_inner().expect("run completed without error"))
            .collect())
    }
}

impl Drop for ResidentPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// The parked-worker loop: pick the next claimable run round-robin, claim
/// one morsel, process it, repeat; park when nothing is claimable.
fn worker_loop(shared: &PoolShared, worker: usize) {
    let mut state = shared.state.lock();
    loop {
        if state.shutdown {
            return;
        }
        // Round-robin across attached runs: one claim per pick is the
        // morsel-granularity time slice between concurrent queries.
        let n = state.runs.len();
        let mut picked = None;
        for i in 0..n {
            let idx = (state.next + i) % n;
            if state.runs[idx].claimable() {
                state.next = (idx + 1) % n;
                picked = Some((Arc::clone(&state.runs[idx]), n));
                break;
            }
        }
        let Some((entry, active_runs)) = picked else {
            state = match shared.cv.wait(state) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            continue;
        };
        // Register as a user under the lock (so the submitter cannot
        // retire the job while we hold the pointer), then work unlocked.
        entry.users.fetch_add(1, Ordering::Relaxed);
        drop(state);

        let mut did_work = false;
        let mut multiplexed = active_runs >= 2;
        loop {
            if entry.failed.load(Ordering::Relaxed) {
                break;
            }
            let m = entry.cursor.fetch_add(1, Ordering::Relaxed);
            if m >= entry.morsels {
                break;
            }
            entry.in_flight.fetch_add(1, Ordering::Relaxed);
            entry.claims[worker].fetch_add(1, Ordering::Relaxed);
            if multiplexed {
                global_metrics().pool_multiplexed_claims.inc();
            }
            // SAFETY: `users > 0` keeps the submitter parked, so the
            // job pointer is live (see `RunEntry::job`).
            let ok = unsafe { (*entry.job).run_morsel(worker, m) };
            if !ok {
                entry.failed.store(true, Ordering::Relaxed);
            }
            entry.completed.fetch_add(1, Ordering::Relaxed);
            entry.in_flight.fetch_sub(1, Ordering::Relaxed);
            did_work = true;
            // Solo fast path: while this is the pool's only attached run
            // there is nothing to time-slice against, so keep draining it
            // with lock-free claims (spawn-mode cost). The moment another
            // run attaches, fall back to the locked round-robin pick so
            // concurrent queries interleave at morsel granularity.
            multiplexed = shared.active.load(Ordering::Relaxed) >= 2;
            if multiplexed {
                break;
            }
        }
        let remaining = entry.users.fetch_sub(1, Ordering::Release) - 1;

        state = shared.state.lock();
        // Wake the submitter when its run may have retired. `did_work`
        // covers the last-morsel case; `remaining == 0` covers the
        // cancelled-claim case where we were the user keeping a finished
        // run pinned.
        if (did_work || remaining == 0) && entry.finished() {
            shared.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn pools(threads: usize) -> [WorkerPool; 2] {
        [WorkerPool::new(threads), WorkerPool::resident(threads)]
    }

    #[test]
    fn results_come_back_in_morsel_order() {
        for threads in [1, 2, 8] {
            for pool in pools(threads) {
                let out: Vec<usize> = pool
                    .run_morsels(20, |_| (), |_, m| Ok::<_, ()>(m * m))
                    .unwrap();
                assert_eq!(
                    out,
                    (0..20).map(|m| m * m).collect::<Vec<_>>(),
                    "threads={threads} resident={}",
                    pool.is_resident()
                );
            }
        }
    }

    #[test]
    fn every_morsel_is_claimed_exactly_once() {
        for pool in pools(4) {
            let out: Vec<usize> = pool
                .run_morsels(100, |_| (), |_, m| Ok::<_, ()>(m))
                .unwrap();
            let distinct: HashSet<_> = out.iter().copied().collect();
            assert_eq!(distinct.len(), 100);
        }
    }

    #[test]
    fn scratch_is_per_worker() {
        // Each worker counts the morsels it processed into its scratch; the
        // per-morsel results carry the worker id so we can check no scratch
        // was shared across workers mid-run.
        for pool in pools(3) {
            let out = pool
                .run_morsels(
                    50,
                    |worker| (worker, 0usize),
                    |scratch, _| {
                        scratch.1 += 1;
                        Ok::<_, ()>(scratch.0)
                    },
                )
                .unwrap();
            assert_eq!(out.len(), 50);
            for w in out {
                assert!(w < 3);
            }
        }
    }

    #[test]
    fn first_error_cancels_the_run() {
        for pool in pools(4) {
            let r: std::result::Result<Vec<()>, String> = pool.run_morsels(
                1000,
                |_| (),
                |_, m| {
                    if m == 5 {
                        Err("boom".to_string())
                    } else {
                        Ok(())
                    }
                },
            );
            assert_eq!(r.unwrap_err(), "boom");
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(!pool.is_resident());
        let out = pool
            .run_morsels(3, |_| 10usize, |s, m| Ok::<_, ()>(*s + m))
            .unwrap();
        assert_eq!(out, vec![10, 11, 12]);
    }

    #[test]
    fn fold_morsels_merges_in_morsel_order() {
        // A non-commutative fold (string concatenation) exposes any
        // completion-order merge: the result must equal the serial left
        // fold at every worker count, in both residency modes.
        let expected: String = (0..32).map(|m| format!("[{m}]")).collect();
        for threads in [1, 2, 8] {
            for pool in pools(threads) {
                let folded = pool
                    .fold_morsels(
                        32,
                        |_, m| Ok::<_, ()>(format!("[{m}]")),
                        String::new(),
                        |mut acc, p| {
                            acc.push_str(&p);
                            Ok(acc)
                        },
                    )
                    .unwrap();
                assert_eq!(
                    folded,
                    expected,
                    "threads={threads} resident={}",
                    pool.is_resident()
                );
            }
        }
    }

    #[test]
    fn fold_morsels_propagates_errors() {
        for pool in pools(4) {
            let r = pool.fold_morsels(
                10,
                |_, m| if m == 3 { Err("bad morsel") } else { Ok(m) },
                0usize,
                |acc, p| Ok(acc + p),
            );
            assert_eq!(r.unwrap_err(), "bad morsel");
        }
    }

    #[test]
    fn fold_morsels_reports_worker_indexes() {
        for threads in [1, 2, 4] {
            for pool in pools(threads) {
                let workers = pool
                    .fold_morsels(
                        64,
                        |w, _| Ok::<_, ()>(w),
                        Vec::new(),
                        |mut acc, w| {
                            acc.push(w);
                            Ok(acc)
                        },
                    )
                    .unwrap();
                assert_eq!(workers.len(), 64);
                assert!(workers.iter().all(|&w| w < threads), "threads={threads}");
            }
        }
    }

    #[test]
    fn threaded_runs_meter_worker_time_and_claims() {
        // Metrics are global and shared across concurrently-running tests,
        // so assert on deltas, not absolutes.
        let before = global_metrics().snapshot();
        let pool = WorkerPool::new(2);
        let out: Vec<usize> = pool.run_morsels(16, |_| (), |_, m| Ok::<_, ()>(m)).unwrap();
        assert_eq!(out.len(), 16);
        let delta = global_metrics().snapshot().since(&before);
        assert!(delta.pool_runs >= 1);
        // Both workers published a claim count, and all 16 claims landed.
        assert!(delta.worker_morsel_claims.count() >= 2);
        assert!(delta.worker_morsel_claims.sum >= 16);
        // Spawn mode really spawned this run's workers.
        assert!(delta.pool_thread_spawns >= 2);
    }

    #[test]
    fn zero_morsels_is_empty() {
        for pool in pools(8) {
            let out: Vec<u8> = pool.run_morsels(0, |_| (), |_, _| Ok::<_, ()>(0)).unwrap();
            assert!(out.is_empty());
        }
    }

    #[test]
    fn resident_pool_spawns_nothing_per_run() {
        let pool = WorkerPool::resident(4);
        assert!(pool.is_resident());
        let before = global_metrics().snapshot();
        for _ in 0..10 {
            let out: Vec<usize> = pool.run_morsels(32, |_| (), |_, m| Ok::<_, ()>(m)).unwrap();
            assert_eq!(out.len(), 32);
        }
        let delta = global_metrics().snapshot().since(&before);
        // Other tests may run spawn-mode pools concurrently, so count this
        // pool's activity positively through the attach counter and prove
        // claims landed without new threads via busy accounting instead of
        // asserting a global spawn delta of zero (that exact assertion
        // lives in vida-exec's resident_engine integration test, which
        // controls its whole process).
        assert!(delta.pool_attached_runs >= 10);
        assert!(delta.pool_runs >= 10);
    }

    #[test]
    fn resident_runs_from_concurrent_submitters_multiplex() {
        // Two submitters attach sleepy runs back-to-back; with both runs in
        // flight on one 2-worker pool, the round-robin claim loop must take
        // claims while ≥2 runs are active. Retry the whole scenario a few
        // times to absorb scheduler noise on tiny machines.
        let pool = WorkerPool::resident(2);
        let mut saw_multiplex = false;
        for _ in 0..10 {
            let before = global_metrics().snapshot();
            let barrier = std::sync::Barrier::new(2);
            let expected: String = (0..8).map(|m| format!("[{m}]")).collect();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let pool = pool.clone();
                    let barrier = &barrier;
                    let expected = expected.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        let folded = pool
                            .fold_morsels(
                                8,
                                |_, m| {
                                    std::thread::sleep(Duration::from_millis(8));
                                    Ok::<_, ()>(format!("[{m}]"))
                                },
                                String::new(),
                                |mut acc, p| {
                                    acc.push_str(&p);
                                    Ok(acc)
                                },
                            )
                            .unwrap();
                        // Interleaved claims must not disturb per-run
                        // morsel-order determinism.
                        assert_eq!(folded, expected);
                    });
                }
            });
            let delta = global_metrics().snapshot().since(&before);
            // Lower bound, not equality: the registry is process-global and
            // sibling tests may attach runs concurrently.
            assert!(delta.pool_attached_runs >= 2);
            if delta.pool_multiplexed_claims > 0 {
                saw_multiplex = true;
                break;
            }
        }
        assert!(
            saw_multiplex,
            "no claim overlapped two in-flight runs in 10 attempts"
        );
    }

    #[test]
    fn resident_pool_shuts_down_on_last_handle_drop() {
        let pool = WorkerPool::resident(2);
        let clone = pool.clone();
        let out: Vec<usize> = clone.run_morsels(4, |_| (), |_, m| Ok::<_, ()>(m)).unwrap();
        assert_eq!(out.len(), 4);
        drop(clone);
        // Still serviceable through the surviving handle...
        let out: Vec<usize> = pool.run_morsels(4, |_| (), |_, m| Ok::<_, ()>(m)).unwrap();
        assert_eq!(out.len(), 4);
        // ...and the final drop joins the workers (hangs here = regression).
        drop(pool);
    }
}
