//! # vida-parallel
//!
//! Morsel-driven parallel execution for the JIT pipelines.
//!
//! The engine materializes touched columns and streams tuples through
//! generated kernels; both phases decompose naturally into **morsels** —
//! small contiguous runs of retrieval units (rows, objects) that workers
//! claim from a shared dispatcher (Leis et al., "Morsel-Driven
//! Parallelism"). This crate supplies the pieces the executor composes:
//!
//! - [`MorselPlan`]: the morsel grid. Boundaries depend only on the data
//!   (unit counts or raw byte spans), **never** on the worker count, so any
//!   number of workers produces the same per-morsel partial results and the
//!   deterministic merge yields one canonical answer. (Relative to a flat
//!   serial fold, merging per-morsel partials reassociates float addition,
//!   so float `sum`-style folds can differ from serial in the last ulp;
//!   exact monoids match bit for bit.)
//! - [`WorkerPool`]: `std::thread`-scoped workers pulling morsel indexes
//!   from an atomic claim counter, each with private scratch state; results
//!   are returned in morsel order regardless of completion order.
//! - [`dispatcher`]: aligned splitting of raw inputs — newline-aligned CSV
//!   byte ranges and record-aligned JSON spans — via the byte-span hooks on
//!   [`vida_formats::InputPlugin`].
//! - [`radix`]: hash partitioning for parallel hash-join build and probe.
//!
//! Folding partial results uses [`vida_types::Monoid::merge_partials`]: the
//! per-morsel accumulators merge in morsel order, so non-commutative
//! monoids (`list`) see exactly the sequential element order.
//!
//! No external dependencies: `std` threads and atomics plus the
//! `vida_types::sync` lock shim.

pub mod dispatcher;
pub mod morsel;
pub mod pool;
pub mod radix;

pub use dispatcher::{plan_scan, plan_scan_tail};
pub use morsel::{MorselPlan, DEFAULT_MORSEL_UNITS};
pub use pool::WorkerPool;
pub use radix::{partition_count, partition_of};
