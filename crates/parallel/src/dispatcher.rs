//! The morsel dispatcher: aligned splitting of raw inputs.
//!
//! Raw files have variable-width retrieval units (CSV rows, JSON objects),
//! so splitting by row count alone can hand one worker all the wide rows.
//! When a plugin can report unit byte spans, morsels are balanced by raw
//! bytes instead — and because boundaries always fall between units, CSV
//! morsels are newline-aligned byte ranges and JSON morsels are
//! record-aligned spans. Plugins without byte spans (in-memory tables) fall
//! back to a fixed unit grid.
//!
//! Either way the plan depends only on the data and the target sizes, never
//! on the worker count — the determinism contract of [`MorselPlan`].

use crate::morsel::{MorselPlan, DEFAULT_MORSEL_BYTES};
use vida_formats::InputPlugin;

/// Build the morsel plan for scanning `plugin`.
///
/// `morsel_units` overrides the fallback unit grid (0 = default); byte
/// balancing uses [`DEFAULT_MORSEL_BYTES`] per morsel, and an explicit unit
/// override wins when it asks for finer morsels than the byte target would
/// produce (tests use tiny overrides to force multi-morsel coverage on
/// small fixtures).
pub fn plan_scan(plugin: &dyn InputPlugin, morsel_units: usize) -> MorselPlan {
    let units = plugin.num_units();
    // Fast path: formats whose units tile the file hand over their offset
    // table (the CSV row index) and each boundary is one binary search.
    let by_bytes = if let Some(offsets) = plugin.unit_offsets() {
        MorselPlan::byte_aligned_offsets(offsets, DEFAULT_MORSEL_BYTES)
    } else if plugin.unit_byte_span(0).is_some() {
        MorselPlan::byte_aligned(units, DEFAULT_MORSEL_BYTES, |i| {
            plugin
                .unit_byte_span(i)
                .map(|(s, e)| e.saturating_sub(s))
                .unwrap_or(1)
        })
    } else {
        return MorselPlan::fixed(units, morsel_units);
    };
    // Honor an explicit finer grid (diagnostics/tests); otherwise prefer the
    // byte-balanced plan.
    if morsel_units != 0 {
        let fixed = MorselPlan::fixed(units, morsel_units);
        if fixed.len() > by_bytes.len() {
            return fixed;
        }
    }
    by_bytes
}

/// [`plan_scan`] restricted to units `from_unit..num_units()` — the morsel
/// grid of an incremental re-scan that only needs the rows appended since
/// the last query. Ranges address absolute unit numbers (the first starts
/// at `from_unit`), so scan workers and replica stitching need no special
/// casing. `from_unit = 0` degenerates to a whole-file plan.
pub fn plan_scan_tail(
    plugin: &dyn InputPlugin,
    morsel_units: usize,
    from_unit: usize,
) -> MorselPlan {
    let units = plugin.num_units();
    let from = from_unit.min(units);
    let tail_units = units - from;
    let by_bytes = if let Some(offsets) = plugin.unit_offsets() {
        // The offset table's suffix is itself a valid offset table of the
        // tail (unit starts + terminal end entry).
        MorselPlan::byte_aligned_offsets(&offsets[from..], DEFAULT_MORSEL_BYTES)
    } else if tail_units > 0 && plugin.unit_byte_span(from).is_some() {
        MorselPlan::byte_aligned(tail_units, DEFAULT_MORSEL_BYTES, |i| {
            plugin
                .unit_byte_span(from + i)
                .map(|(s, e)| e.saturating_sub(s))
                .unwrap_or(1)
        })
    } else {
        return MorselPlan::fixed(tail_units, morsel_units).shifted(from);
    };
    let by_bytes = by_bytes.shifted(from);
    if morsel_units != 0 {
        let fixed = MorselPlan::fixed(tail_units, morsel_units).shifted(from);
        if fixed.len() > by_bytes.len() {
            return fixed;
        }
    }
    by_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_formats::csv::CsvFile;
    use vida_formats::json::JsonFile;
    use vida_formats::plugin::{CsvPlugin, JsonPlugin, MemPlugin};
    use vida_types::{Schema, Type, Value};

    fn csv(rows: usize) -> CsvPlugin {
        let mut data = String::from("id,pad\n");
        for i in 0..rows {
            data.push_str(&format!("{i},{}\n", "x".repeat(16)));
        }
        CsvPlugin::new(
            CsvFile::from_bytes(
                "T",
                data.into_bytes(),
                b',',
                true,
                Schema::from_pairs([("id", Type::Int), ("pad", Type::Str)]),
            )
            .unwrap(),
        )
    }

    #[test]
    fn csv_morsels_are_newline_aligned() {
        let p = csv(50);
        let plan = plan_scan(&p, 0);
        assert_eq!(plan.units(), 50);
        // Every morsel boundary is a unit boundary: byte spans of adjacent
        // units in different morsels do not overlap.
        let covered: usize = plan.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 50);
        for r in plan.iter().filter(|r| r.start > 0) {
            let (start, _) = p.unit_byte_span(r.start).unwrap();
            let (_, prev_end) = p.unit_byte_span(r.start - 1).unwrap();
            // The previous row's span (incl. its newline) ends exactly where
            // this morsel's first row begins.
            assert_eq!(start, prev_end);
        }
    }

    #[test]
    fn json_morsels_are_record_aligned() {
        let mut data = String::new();
        for i in 0..40 {
            data.push_str(&format!("{{\"id\":{i},\"blob\":\"{}\"}}\n", "y".repeat(32)));
        }
        let p = JsonPlugin::new(
            JsonFile::from_bytes(
                "J",
                data.into_bytes(),
                Schema::from_pairs([("id", Type::Int)]),
            )
            .unwrap(),
        );
        let plan = plan_scan(&p, 8);
        let covered: usize = plan.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 40);
        assert!(plan.len() >= 5, "unit override should force fine morsels");
    }

    #[test]
    fn quoted_newlines_do_not_split_records_across_morsels() {
        // Regression: a quoted CSV field containing `\n` is ONE retrieval
        // unit. Row indexing is quote-aware, so every morsel boundary falls
        // between logical records and ranged scans reassemble the full
        // table regardless of the grid.
        let mut data = String::from("id,note\n");
        for i in 0..32 {
            data.push_str(&format!("{i},\"line one of {i}\nline two of {i}\"\n"));
        }
        let p = CsvPlugin::new(
            CsvFile::from_bytes(
                "Q",
                data.into_bytes(),
                b',',
                true,
                Schema::from_pairs([("id", Type::Int), ("note", Type::Str)]),
            )
            .unwrap(),
        );
        assert_eq!(p.num_units(), 32);
        let plan = plan_scan(&p, 3);
        assert!(plan.len() >= 5, "unit override should force fine morsels");
        let covered: usize = plan.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 32);
        // Morsel boundaries sit exactly between logical records (embedded
        // newlines are inside the spans, never at a boundary).
        for r in plan.iter().filter(|r| r.start > 0) {
            let (start, _) = p.unit_byte_span(r.start).unwrap();
            let (_, prev_end) = p.unit_byte_span(r.start - 1).unwrap();
            assert_eq!(start, prev_end);
        }
        // Scanning the morsel grid reproduces the serial scan exactly.
        let mut serial = Vec::new();
        p.scan_project(&[0, 1], &mut |row, vals| {
            serial.push((row, vals));
            Ok(())
        })
        .unwrap();
        let mut chunked = Vec::new();
        for r in plan.iter() {
            p.scan_project_range(&[0, 1], r, &mut |row, vals| {
                chunked.push((row, vals));
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(serial, chunked);
        assert_eq!(
            serial[5].1[1],
            Value::str("line one of 5\nline two of 5"),
            "embedded newline must survive the parse"
        );
    }

    #[test]
    fn offset_fast_path_matches_span_walk_plan() {
        // The CSV offset-table fast path must produce the identical plan to
        // the per-unit span walk (what JSON still uses) on the same file —
        // the determinism contract across format capabilities.
        let p = csv(5000);
        assert!(p.unit_offsets().is_some());
        let fast = plan_scan(&p, 0);
        let walk = MorselPlan::byte_aligned(p.num_units(), DEFAULT_MORSEL_BYTES, |i| {
            p.unit_byte_span(i).map(|(s, e)| e - s).unwrap()
        });
        assert_eq!(fast, walk);
        assert!(fast.len() > 1, "fixture should span several morsels");
    }

    #[test]
    fn tail_plan_covers_exactly_the_appended_suffix() {
        let p = csv(200);
        for from in [0usize, 1, 57, 199, 200] {
            let plan = plan_scan_tail(&p, 0, from);
            let covered: usize = plan.iter().map(|r| r.len()).sum();
            assert_eq!(covered, 200 - from, "from {from}");
            if from < 200 {
                assert_eq!(plan.iter().next().unwrap().start, from);
                assert_eq!(plan.iter().last().unwrap().end, 200);
            } else {
                assert!(plan.is_empty());
            }
            // Ranges are disjoint, ordered, and unit-aligned.
            let mut prev_end = from;
            for r in plan.iter() {
                assert_eq!(r.start, prev_end);
                prev_end = r.end;
            }
        }
        // from = 0 degenerates to the whole-file plan.
        assert_eq!(plan_scan_tail(&p, 0, 0), plan_scan(&p, 0));
        // Past-the-end clamps to empty rather than panicking.
        assert!(plan_scan_tail(&p, 0, 500).is_empty());
    }

    #[test]
    fn tail_plan_fixed_fallback_is_shifted() {
        let rows: Vec<Value> = (0..10)
            .map(|i| Value::record([("x", Value::Int(i))]))
            .collect();
        let p =
            MemPlugin::from_records("M", Schema::from_pairs([("x", Type::Int)]), &rows).unwrap();
        let plan = plan_scan_tail(&p, 4, 6);
        let ranges: Vec<_> = plan.iter().collect();
        assert_eq!(ranges, vec![6..10]);
    }

    #[test]
    fn mem_plugin_falls_back_to_fixed_grid() {
        let rows: Vec<Value> = (0..10)
            .map(|i| Value::record([("x", Value::Int(i))]))
            .collect();
        let p =
            MemPlugin::from_records("M", Schema::from_pairs([("x", Type::Int)]), &rows).unwrap();
        let plan = plan_scan(&p, 4);
        assert_eq!(plan.len(), 3); // 4 + 4 + 2
    }
}
