//! Radix partitioning for parallel hash joins.
//!
//! Build tuples are split by a few high bits of a mixed key hash into
//! independent partitions; each partition gets its own hash table built by
//! one worker, and probe tuples consult exactly one partition. Partition
//! assignment is a pure function of the key bits, so the partitioned join
//! visits exactly the same candidate pairs as the single-table join.

/// Number of partition bits (16 partitions): enough to spread work across
/// typical core counts without fragmenting small build sides.
pub const RADIX_BITS: u32 = 4;

/// Build sides smaller than this stay in a single partition — partitioning
/// overhead would dominate.
const MIN_PARTITIONED_BUILD: usize = 1024;

/// Number of partitions to use for a build side of `build_tuples` tuples.
pub fn partition_count(build_tuples: usize) -> usize {
    if build_tuples < MIN_PARTITIONED_BUILD {
        1
    } else {
        1 << RADIX_BITS
    }
}

/// Partition of a join key. `partitions` must be a power of two.
///
/// Key bits are mixed with a Fibonacci multiplier first: raw keys are often
/// sequential ids (or float bit patterns with constant exponents), and
/// taking their top bits directly would put everything in one partition.
pub fn partition_of(key_bits: i64, partitions: usize) -> usize {
    debug_assert!(partitions.is_power_of_two());
    if partitions == 1 {
        return 0;
    }
    let mixed = (key_bits as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> (64 - partitions.trailing_zeros())) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_builds_stay_single_partition() {
        assert_eq!(partition_count(0), 1);
        assert_eq!(partition_count(1023), 1);
        assert_eq!(partition_count(1024), 16);
    }

    #[test]
    fn partition_is_stable_and_in_range() {
        for key in [-5i64, 0, 1, 2, 1000, i64::MAX, i64::MIN] {
            let p = partition_of(key, 16);
            assert!(p < 16);
            assert_eq!(p, partition_of(key, 16));
        }
        assert_eq!(partition_of(123, 1), 0);
    }

    #[test]
    fn sequential_keys_spread_across_partitions() {
        let mut seen = [false; 16];
        for key in 0..256i64 {
            seen[partition_of(key, 16)] = true;
        }
        assert!(
            seen.iter().filter(|s| **s).count() >= 12,
            "sequential ids should hit most partitions: {seen:?}"
        );
    }

    #[test]
    fn float_bit_keys_spread_across_partitions() {
        // Float keys near 1.0 share exponent bits; mixing must still spread.
        let mut seen = [false; 16];
        for i in 0..256 {
            let bits = (1.0 + i as f64 / 256.0).to_bits() as i64;
            seen[partition_of(bits, 16)] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() >= 8, "{seen:?}");
    }
}
