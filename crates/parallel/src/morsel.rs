//! The morsel grid: contiguous unit ranges with data-dependent boundaries.
//!
//! Determinism contract: a plan is a pure function of the input (unit count
//! or unit byte sizes) and the target morsel size — the worker count never
//! influences boundaries. Per-morsel partial results therefore form the same
//! sequence at every thread count, and merging them in morsel order gives
//! one canonical result.

use std::ops::Range;

/// Default number of units per morsel for unit-count-based plans.
pub const DEFAULT_MORSEL_UNITS: usize = 4096;

/// Default target raw-byte size per morsel for byte-aligned plans (64 KiB —
/// small enough to load-balance skewed files, large enough to amortize the
/// per-morsel claim).
pub const DEFAULT_MORSEL_BYTES: usize = 64 << 10;

/// An ordered set of disjoint unit ranges covering `0..units`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MorselPlan {
    ranges: Vec<Range<usize>>,
    units: usize,
}

impl MorselPlan {
    /// Fixed grid: morsels of `morsel_units` rows each (last one ragged).
    /// `morsel_units = 0` falls back to [`DEFAULT_MORSEL_UNITS`].
    pub fn fixed(units: usize, morsel_units: usize) -> Self {
        let step = if morsel_units == 0 {
            DEFAULT_MORSEL_UNITS
        } else {
            morsel_units
        };
        let ranges = (0..units)
            .step_by(step)
            .map(|start| start..(start + step).min(units))
            .collect();
        MorselPlan { ranges, units }
    }

    /// Byte-balanced grid: greedily accumulate units until a morsel reaches
    /// `target_bytes` of raw data. Boundaries always fall on unit
    /// boundaries, so CSV morsels are newline-aligned and JSON morsels are
    /// record-aligned by construction. `unit_bytes(i)` reports the raw size
    /// of unit `i`.
    pub fn byte_aligned(
        units: usize,
        target_bytes: usize,
        unit_bytes: impl Fn(usize) -> usize,
    ) -> Self {
        let target = target_bytes.max(1);
        let mut ranges = Vec::new();
        let mut start = 0usize;
        let mut acc = 0usize;
        for i in 0..units {
            acc += unit_bytes(i);
            if acc >= target {
                ranges.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        if start < units {
            ranges.push(start..units);
        }
        MorselPlan { ranges, units }
    }

    /// [`MorselPlan::byte_aligned`] specialized to formats whose units tile
    /// the file back to back: `offsets` holds each unit's start byte plus a
    /// final end-of-data entry (unit `i` spans `offsets[i]..offsets[i+1]`).
    /// Each boundary is then one binary search instead of a walk over every
    /// unit's span — the shape the mmap'd scan path hands over (the CSV row
    /// index). Produces exactly the plan `byte_aligned` would with
    /// `unit_bytes(i) = offsets[i+1] - offsets[i]`.
    pub fn byte_aligned_offsets(offsets: &[u32], target_bytes: usize) -> Self {
        let units = offsets.len().saturating_sub(1);
        let target = target_bytes.max(1);
        let mut ranges = Vec::new();
        let mut start = 0usize;
        while start < units {
            // First unit whose end reaches `target` bytes past the morsel
            // start; the greedy accumulator cuts right after it.
            let threshold = offsets[start] as usize + target;
            let cut =
                offsets[start + 1..].partition_point(|&o| (o as usize) < threshold) + start + 1;
            if cut > units {
                ranges.push(start..units); // ragged tail below target
                break;
            }
            ranges.push(start..cut);
            start = cut;
        }
        MorselPlan { ranges, units }
    }

    /// Translate every range `offset` units to the right — turns a plan
    /// built over a tail slice `[0, n)` into one addressing the original
    /// units `[offset, offset + n)`. The covered-unit count is unchanged;
    /// only the addresses move. This is how tail-only re-scans reuse the
    /// ordinary constructors: plan the appended suffix as if it were a
    /// file of its own, then shift to absolute row numbers.
    pub fn shifted(mut self, offset: usize) -> Self {
        for r in &mut self.ranges {
            r.start += offset;
            r.end += offset;
        }
        self
    }

    /// Total units covered by the plan.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Number of morsels.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Unit range of morsel `i`.
    pub fn range(&self, i: usize) -> Range<usize> {
        self.ranges[i].clone()
    }

    pub fn iter(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.ranges.iter().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_grid_covers_all_units_in_order() {
        let p = MorselPlan::fixed(10, 3);
        let ranges: Vec<_> = p.iter().collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(p.units(), 10);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn fixed_grid_is_independent_of_anything_but_inputs() {
        assert_eq!(MorselPlan::fixed(100, 7), MorselPlan::fixed(100, 7));
    }

    #[test]
    fn zero_units_is_empty() {
        assert!(MorselPlan::fixed(0, 8).is_empty());
        assert!(MorselPlan::byte_aligned(0, 64, |_| 1).is_empty());
    }

    #[test]
    fn zero_morsel_units_uses_default() {
        let p = MorselPlan::fixed(DEFAULT_MORSEL_UNITS + 1, 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn byte_aligned_cuts_on_unit_boundaries() {
        // Units of 10 bytes each, target 25 → morsels of 3 units (30 bytes).
        let p = MorselPlan::byte_aligned(8, 25, |_| 10);
        let ranges: Vec<_> = p.iter().collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..8]);
    }

    #[test]
    fn byte_aligned_offsets_matches_span_walk() {
        // The binary-search plan must equal the greedy per-unit walk for
        // every offset shape: uniform, skewed, huge single units, ragged
        // tails, and nonzero first offsets (BOM / header bytes).
        let shapes: Vec<Vec<u32>> = vec![
            vec![0],
            vec![0, 10],
            vec![0, 10, 20, 30, 40, 50, 60, 70, 80],
            vec![7, 12, 512, 513, 600, 700],
            vec![0, 5, 505, 510, 515, 520],
            (0..100u32).map(|i| i * 3).collect(),
        ];
        for offsets in shapes {
            for target in [1usize, 16, 25, 100, 1 << 20] {
                let units = offsets.len() - 1;
                let by_walk = MorselPlan::byte_aligned(units, target, |i| {
                    (offsets[i + 1] - offsets[i]) as usize
                });
                let by_search = MorselPlan::byte_aligned_offsets(&offsets, target);
                assert_eq!(by_search, by_walk, "offsets {offsets:?} target {target}");
            }
        }
    }

    #[test]
    fn byte_aligned_handles_skewed_units() {
        // One huge unit forms its own morsel.
        let sizes = [5usize, 500, 5, 5, 5];
        let p = MorselPlan::byte_aligned(5, 100, |i| sizes[i]);
        let ranges: Vec<_> = p.iter().collect();
        assert_eq!(ranges[0], 0..2); // 5 + 500 crosses the target
        let covered: usize = p.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 5);
    }
}
