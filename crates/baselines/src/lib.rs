//! # vida-baselines
//!
//! Comparator baselines for the paper's experiments (ViDa §6).
//!
//! ViDa's claim is that querying raw data *in situ* with JIT pipelines can
//! match a DBMS that paid the full loading cost up front. The baseline here
//! is that DBMS stand-in: [`LoadedBaseline`] eagerly materializes every
//! registered dataset into memory at "load time" and then answers queries
//! with the interpreted engine over the loaded copies — all loading cost
//! paid before the first query, none at query time.

use std::sync::Arc;
use vida_algebra::Plan;
use vida_exec::{run_volcano, MemoryCatalog, SourceProvider};
use vida_formats::plugin::MemPlugin;
use vida_types::{Result, Value};

/// A fully-loaded comparator: all datasets copied into memory up front.
pub struct LoadedBaseline {
    catalog: MemoryCatalog,
    loaded_bytes: usize,
}

impl LoadedBaseline {
    /// "Load" every dataset of `source`: materialize each retrieval unit
    /// into an in-memory table. Returns the baseline plus its loading
    /// footprint — the cost ViDa avoids.
    pub fn load(source: &dyn SourceProvider) -> Result<Self> {
        let catalog = MemoryCatalog::new();
        let mut loaded_bytes = 0usize;
        for name in source.dataset_names() {
            let plugin = source.plugin(&name)?;
            let schema = plugin.schema().clone();
            let mut rows = Vec::with_capacity(plugin.num_units());
            for r in 0..plugin.num_units() {
                let unit = plugin.read_unit(r)?;
                loaded_bytes += unit.approx_bytes();
                rows.push(unit);
            }
            let mem = MemPlugin::from_records(name, schema, &rows)?;
            catalog.register(Arc::new(mem));
        }
        Ok(LoadedBaseline {
            catalog,
            loaded_bytes,
        })
    }

    /// Bytes materialized at load time.
    pub fn loaded_bytes(&self) -> usize {
        self.loaded_bytes
    }

    /// Execute a plan over the loaded copies.
    pub fn run(&self, plan: &Plan) -> Result<Value> {
        run_volcano(plan, &self.catalog)
    }

    /// The loaded catalog, for engines that want to run against it directly.
    pub fn catalog(&self) -> &MemoryCatalog {
        &self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_algebra::{lower, rewrite};
    use vida_lang::parse;
    use vida_types::{Schema, Type};

    fn raw_catalog() -> MemoryCatalog {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("id", Type::Int), ("x", Type::Float)]),
            &[
                Value::record([("id", Value::Int(1)), ("x", Value::Float(0.5))]),
                Value::record([("id", Value::Int(2)), ("x", Value::Float(1.5))]),
            ],
        )
        .unwrap();
        cat
    }

    #[test]
    fn loaded_baseline_answers_queries() {
        let base = LoadedBaseline::load(&raw_catalog()).unwrap();
        assert!(base.loaded_bytes() > 0);
        let plan =
            rewrite(&lower(&parse("for { t <- T, t.id > 1 } yield sum t.x").unwrap()).unwrap());
        assert_eq!(base.run(&plan).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn baseline_agrees_with_raw_execution() {
        let raw = raw_catalog();
        let base = LoadedBaseline::load(&raw).unwrap();
        let plan = rewrite(&lower(&parse("for { t <- T } yield count t").unwrap()).unwrap());
        assert_eq!(base.run(&plan).unwrap(), run_volcano(&plan, &raw).unwrap());
    }
}
