//! placeholder
