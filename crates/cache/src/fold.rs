//! Cached fold partials — the incremental-aggregation side table.
//!
//! A warm aggregate over a file that only *grew* does not need to re-fold
//! the prefix: the engine caches the monoid accumulator (pre-finalize!)
//! it produced over rows `0..rows` under the source's fingerprint, and a
//! later run over the extended file folds only the appended tail, then
//! `merge_partials([prefix, tail])`. The entry key is `(dataset, query
//! fingerprint)` where the query fingerprint hashes the bound plan — two
//! textually different queries that lower to the same plan share partials,
//! different plans never collide.
//!
//! Entries are small (one accumulator value each), so the table is bounded
//! by count rather than bytes.

use std::collections::HashMap;
use vida_types::sync::RwLock;
use vida_types::Value;

/// Upper bound on resident partials; inserting past it evicts an
/// arbitrary entry (the table is a pure performance hint, never a
/// correctness dependency).
pub const MAX_FOLD_ENTRIES: usize = 4096;

/// One cached pre-finalize accumulator.
#[derive(Debug, Clone)]
pub struct FoldPartial {
    /// Monoid accumulator over rows `0..rows`, **before** `finalize` (an
    /// `avg` partial is still its `{__sum, __count}` record).
    pub partial: Value,
    /// Number of source rows the partial covers, counted from row 0.
    pub rows: usize,
    /// Source fingerprint the partial was folded under. Valid for reuse
    /// when it matches the current file, or matches the pre-append
    /// fingerprint of a pure extension with `rows <=` the prefix length.
    pub fingerprint: (u64, u64),
}

/// Bounded map of fold partials keyed by `(dataset, query fingerprint)`.
#[derive(Default)]
pub struct FoldCache {
    entries: RwLock<HashMap<(String, u64), FoldPartial>>,
}

impl FoldCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the cached partial for one `(dataset, query)` pair.
    pub fn get(&self, dataset: &str, query: u64) -> Option<FoldPartial> {
        self.entries
            .read()
            .get(&(dataset.to_string(), query))
            .cloned()
    }

    /// Insert or replace the partial for one `(dataset, query)` pair.
    pub fn put(&self, dataset: &str, query: u64, partial: FoldPartial) {
        let mut entries = self.entries.write();
        let key = (dataset.to_string(), query);
        if entries.len() >= MAX_FOLD_ENTRIES && !entries.contains_key(&key) {
            if let Some(victim) = entries.keys().next().cloned() {
                entries.remove(&victim);
            }
        }
        entries.insert(key, partial);
    }

    /// Drop every partial of a dataset (the file shrank or was edited in
    /// place — nothing folded over the old bytes can be reused). Returns
    /// the number dropped.
    pub fn invalidate_dataset(&self, dataset: &str) -> usize {
        let mut entries = self.entries.write();
        let keys: Vec<(String, u64)> = entries
            .keys()
            .filter(|(d, _)| d == dataset)
            .cloned()
            .collect();
        for k in &keys {
            entries.remove(k);
        }
        keys.len()
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.entries.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partial(rows: usize) -> FoldPartial {
        FoldPartial {
            partial: Value::Int(rows as i64),
            rows,
            fingerprint: (rows as u64, 7),
        }
    }

    #[test]
    fn put_get_round_trip() {
        let c = FoldCache::new();
        assert!(c.get("d", 1).is_none());
        c.put("d", 1, partial(10));
        let got = c.get("d", 1).unwrap();
        assert_eq!(got.rows, 10);
        assert_eq!(got.partial, Value::Int(10));
        assert_eq!(got.fingerprint, (10, 7));
        // Same dataset, different query fingerprint: distinct slot.
        c.put("d", 2, partial(20));
        assert_eq!(c.get("d", 1).unwrap().rows, 10);
        assert_eq!(c.get("d", 2).unwrap().rows, 20);
        // Replace in place.
        c.put("d", 1, partial(30));
        assert_eq!(c.get("d", 1).unwrap().rows, 30);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidation_is_per_dataset() {
        let c = FoldCache::new();
        c.put("d", 1, partial(1));
        c.put("d", 2, partial(2));
        c.put("e", 1, partial(3));
        assert_eq!(c.invalidate_dataset("d"), 2);
        assert!(c.get("d", 1).is_none());
        assert_eq!(c.get("e", 1).unwrap().rows, 3);
    }

    #[test]
    fn capacity_is_bounded() {
        let c = FoldCache::new();
        for q in 0..(MAX_FOLD_ENTRIES as u64 + 10) {
            c.put("d", q, partial(1));
        }
        assert!(c.len() <= MAX_FOLD_ENTRIES);
    }
}
