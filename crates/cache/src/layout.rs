//! Cache layouts (Figure 4).
//!
//! A tuple carrying a JSON object can be materialized as (a) the object's
//! raw text, (b) a binary-JSON serialization, (c) a fully parsed in-memory
//! object, or (d) just the `(start, end)` byte positions into the raw file.
//! The optimizer chooses per operator (§5); this module gives each choice a
//! concrete representation and conversion paths between them.

use crate::bson;
use std::sync::Arc;
use vida_types::{Result, Value, VidaError};

/// The four materialization layouts of Figure 4, plus `Column` — the
//  columnar replica layout §5 describes for tabular reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Parsed in-memory values, one per row (Figure 4 (c)).
    Values,
    /// Raw text of each value (Figure 4 (a)).
    Text,
    /// Binary-JSON serialization of each value (Figure 4 (b)).
    BinaryJson,
    /// `(start, end)` byte positions into the raw file (Figure 4 (d)).
    Positions,
}

impl Layout {
    pub fn name(&self) -> &'static str {
        match self {
            Layout::Values => "values",
            Layout::Text => "text",
            Layout::BinaryJson => "binary-json",
            Layout::Positions => "positions",
        }
    }
}

/// Cached column data in one concrete layout. One `CachedData` covers one
/// field of one dataset, with one entry per retrieval unit.
///
/// `Values` holds its rows behind an `Arc` so a warm full hit serves the
/// whole column by pointer share instead of a per-row decode, and a pure
/// append extends the resident vector in place
/// ([`crate::CacheManager::extend_values`]) — the two moves that make warm
/// re-query cost proportional to the delta, not the file.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedData {
    Values(Arc<Vec<Value>>),
    Text(Vec<String>),
    BinaryJson(Vec<Vec<u8>>),
    Positions(Vec<(u64, u64)>),
}

impl CachedData {
    pub fn layout(&self) -> Layout {
        match self {
            CachedData::Values(_) => Layout::Values,
            CachedData::Text(_) => Layout::Text,
            CachedData::BinaryJson(_) => Layout::BinaryJson,
            CachedData::Positions(_) => Layout::Positions,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            CachedData::Values(v) => v.len(),
            CachedData::Text(v) => v.len(),
            CachedData::BinaryJson(v) => v.len(),
            CachedData::Positions(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory footprint used against the cache budget.
    pub fn approx_bytes(&self) -> usize {
        match self {
            CachedData::Values(v) => v.iter().map(Value::approx_bytes).sum::<usize>() + 24,
            CachedData::Text(v) => v.iter().map(|s| s.len() + 24).sum::<usize>() + 24,
            CachedData::BinaryJson(v) => v.iter().map(|b| b.len() + 24).sum::<usize>() + 24,
            CachedData::Positions(v) => v.len() * 16 + 24,
        }
    }

    /// Fetch one row as a [`Value`].
    ///
    /// `Positions` entries cannot rehydrate without the raw file, so they
    /// return an error here; callers holding the file use the positions
    /// directly (that is the point of the layout).
    pub fn get(&self, row: usize) -> Result<Value> {
        let oob = || VidaError::Exec(format!("cache row {row} out of range"));
        match self {
            CachedData::Values(v) => v.get(row).cloned().ok_or_else(oob),
            CachedData::Text(v) => v.get(row).map(|s| Value::Str(s.clone())).ok_or_else(oob),
            CachedData::BinaryJson(v) => {
                let bytes = v.get(row).ok_or_else(oob)?;
                bson::decode_value(bytes, 0).map(|(val, _)| val)
            }
            CachedData::Positions(_) => Err(VidaError::Exec(
                "positions-only cache entry cannot materialize values without the raw file".into(),
            )),
        }
    }

    /// Convert a parsed-values column into another layout.
    ///
    /// `Positions` cannot be derived from values (it needs raw-file byte
    /// offsets), so that conversion is an error.
    pub fn from_values(values: &[Value], target: Layout) -> Result<CachedData> {
        match target {
            Layout::Values => Ok(CachedData::Values(Arc::new(values.to_vec()))),
            Layout::Text => Ok(CachedData::Text(
                values.iter().map(|v| v.to_string()).collect(),
            )),
            Layout::BinaryJson => Ok(CachedData::BinaryJson(
                values.iter().map(bson::to_bytes).collect(),
            )),
            Layout::Positions => Err(VidaError::Plan(
                "positions layout requires raw-file offsets, not values".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals() -> Vec<Value> {
        vec![
            Value::record([("id", Value::Int(1)), ("x", Value::Float(0.5))]),
            Value::record([("id", Value::Int(2)), ("x", Value::Float(1.5))]),
        ]
    }

    #[test]
    fn values_layout_round_trip() {
        let c = CachedData::Values(Arc::new(vals()));
        assert_eq!(c.layout(), Layout::Values);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap().field("id"), Some(&Value::Int(2)));
        assert!(c.get(2).is_err());
    }

    #[test]
    fn binary_json_layout_round_trip() {
        let c = CachedData::from_values(&vals(), Layout::BinaryJson).unwrap();
        assert_eq!(c.layout(), Layout::BinaryJson);
        assert_eq!(c.get(0).unwrap(), vals()[0]);
    }

    #[test]
    fn positions_layout_cannot_materialize() {
        let c = CachedData::Positions(vec![(0, 10), (10, 25)]);
        assert!(c.get(0).is_err());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn positions_cannot_come_from_values() {
        assert!(CachedData::from_values(&vals(), Layout::Positions).is_err());
    }

    #[test]
    fn footprints_rank_as_figure4_expects() {
        // Positions are the smallest; parsed values the largest for nested
        // records — the cache-pollution argument of §5.
        let big_objects: Vec<Value> = (0..50)
            .map(|i| {
                Value::record(
                    (0..20)
                        .map(|j| (format!("f{j}"), Value::str(format!("payload-{i}-{j}"))))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let values = CachedData::from_values(&big_objects, Layout::Values)
            .unwrap()
            .approx_bytes();
        let binary = CachedData::from_values(&big_objects, Layout::BinaryJson)
            .unwrap()
            .approx_bytes();
        let positions = CachedData::Positions(vec![(0, 100); 50]).approx_bytes();
        assert!(
            positions < binary,
            "positions {positions} < binary {binary}"
        );
        assert!(binary < values, "binary {binary} < values {values}");
    }

    #[test]
    fn text_layout_prints_values() {
        let c = CachedData::from_values(&[Value::Int(3)], Layout::Text).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::str("3"));
    }

    #[test]
    fn layout_names_unique() {
        let names = [
            Layout::Values.name(),
            Layout::Text.name(),
            Layout::BinaryJson.name(),
            Layout::Positions.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
