//! The cache manager: budgeted, layout-aware, invalidation-driven.
//!
//! Entries are keyed by `(dataset, field, layout)` so replicas of the same
//! field in different layouts coexist (§5 "Re-using and re-shaping
//! results"). A logical-clock LRU keeps the total footprint under a
//! configurable budget. When a raw file changes (fingerprint mismatch),
//! every entry of that dataset is dropped — the paper's §2.1 update story.
//!
//! Concurrency: lookups take only a **read** lock — LRU stamps, the logical
//! clock, byte accounting, and hit/miss counters are all atomics — so any
//! number of pipeline workers can read replicas while one worker briefly
//! holds the write lock to insert a replica it just parsed. The previous
//! whole-`Mutex` design serialized every worker on every column fetch.

use crate::fold::FoldCache;
use crate::layout::{CachedData, Layout};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use vida_trace::global_metrics;
use vida_types::sync::RwLock;
use vida_types::Value;

/// Identifies one cached column replica.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub dataset: String,
    /// Field name, or `"*"` for whole-unit records.
    pub field: String,
    pub layout: Layout,
}

impl CacheKey {
    pub fn new(dataset: impl Into<String>, field: impl Into<String>, layout: Layout) -> Self {
        CacheKey {
            dataset: dataset.into(),
            field: field.into(),
            layout,
        }
    }
}

/// Hit/miss/eviction counters (exposed in query stats; drives the §6
/// "80% of the workload was served from caches" measurement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-tenant budget and usage counters (see
/// [`CacheManager::set_tenant_budget`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's quota, if one was set; quota-less tenants are tracked
    /// but unprotected.
    pub budget_bytes: Option<usize>,
    pub used_bytes: usize,
    pub insertions: u64,
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct TenantState {
    budget: Option<usize>,
    used: usize,
    insertions: u64,
    evictions: u64,
}

struct Entry {
    data: Arc<CachedData>,
    bytes: usize,
    /// Owning tenant for budget scoping; `None` for untenanted (library)
    /// inserts.
    tenant: Option<String>,
    /// LRU stamp; atomic so lookups bump it under the shared read lock.
    last_used: AtomicU64,
    /// Eviction slack in LRU ticks: replicas that are expensive to rebuild
    /// survive as if they had been touched `rebuild_bonus` ticks more
    /// recently (GreedyDual-style; 0 = pure LRU).
    rebuild_bonus: f64,
    fingerprint: (u64, u64),
}

impl Entry {
    /// Eviction priority: the lowest goes first.
    fn priority(&self) -> f64 {
        self.last_used.load(Ordering::Relaxed) as f64 + self.rebuild_bonus
    }
}

#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

/// Budgeted cache of raw-data column replicas.
///
/// # Example
///
/// Replicas of the same field coexist in several layouts; `get_any` probes
/// them in the caller's preference order (the optimizer's cost model
/// supplies that order in the engine):
///
/// ```
/// use std::sync::Arc;
/// use vida_cache::{CacheKey, CacheManager, CachedData, Layout};
/// use vida_types::Value;
///
/// let cache = CacheManager::new(1 << 20); // 1 MiB budget
/// let fingerprint = (42, 0); // (file length, mtime)
/// cache.put(
///     CacheKey::new("Patients", "age", Layout::Values),
///     CachedData::Values(Arc::new(vec![Value::Int(71), Value::Int(34)])),
///     fingerprint,
/// );
/// cache.put(
///     CacheKey::new("Patients", "age", Layout::Positions),
///     CachedData::Positions(vec![(12, 14), (20, 22)]),
///     fingerprint,
/// );
/// let (layout, data) = cache
///     .get_any("Patients", "age", &[Layout::Values, Layout::Positions])
///     .unwrap();
/// assert_eq!(layout, Layout::Values);
/// assert_eq!(data.get(0).unwrap(), Value::Int(71));
/// // The raw file changed: every replica of the dataset is dropped.
/// assert_eq!(cache.invalidate_stale("Patients", (43, 0)), 2);
/// ```
pub struct CacheManager {
    budget_bytes: usize,
    entries: RwLock<HashMap<CacheKey, Entry>>,
    clock: AtomicU64,
    /// Mutated only under the write lock; atomic so usage reads are
    /// lock-free.
    used_bytes: AtomicUsize,
    stats: AtomicStats,
    /// Per-tenant budgets and usage. Always locked *after* `entries` when
    /// both are held, and only mutated while holding the `entries` write
    /// lock, so usage never drifts from the entries it accounts for.
    tenants: RwLock<HashMap<String, TenantState>>,
    /// Side table of fold partials for incremental re-aggregation (small,
    /// count-bounded — see [`crate::fold`]).
    folds: FoldCache,
}

impl CacheManager {
    /// Create a manager with a memory budget in bytes.
    pub fn new(budget_bytes: usize) -> Self {
        CacheManager {
            budget_bytes,
            entries: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
            used_bytes: AtomicUsize::new(0),
            stats: AtomicStats::default(),
            tenants: RwLock::new(HashMap::new()),
            folds: FoldCache::new(),
        }
    }

    /// The fold-partial side table (incremental re-aggregation).
    pub fn folds(&self) -> &FoldCache {
        &self.folds
    }

    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    pub fn used_bytes(&self) -> usize {
        self.used_bytes.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            invalidations: self.stats.invalidations.load(Ordering::Relaxed),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Give `tenant` a byte quota. Entries inserted for a budgeted tenant
    /// (via [`CacheManager::put_with_cost_for`]) are charged against it:
    /// the tenant's own lowest-priority entries are evicted to stay within
    /// quota, and while the tenant is at or under quota no *other* tenant's
    /// insert can victimize its entries. Untenanted entries and quota-less
    /// tenants keep the original pure global-budget behavior.
    pub fn set_tenant_budget(&self, tenant: &str, bytes: usize) {
        let mut tenants = self.tenants.write();
        tenants.entry(tenant.to_string()).or_default().budget = Some(bytes);
    }

    /// Budget/usage/eviction counters for one tenant (zeros if unknown).
    pub fn tenant_stats(&self, tenant: &str) -> TenantStats {
        let tenants = self.tenants.read();
        match tenants.get(tenant) {
            Some(s) => TenantStats {
                budget_bytes: s.budget,
                used_bytes: s.used,
                insertions: s.insertions,
                evictions: s.evictions,
            },
            None => TenantStats::default(),
        }
    }

    /// Every tenant the cache has seen (budgeted or not), sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn tenant_quota(&self, tenant: &str) -> Option<usize> {
        self.tenants.read().get(tenant).and_then(|s| s.budget)
    }

    fn tenant_used(&self, tenant: &str) -> usize {
        self.tenants.read().get(tenant).map_or(0, |s| s.used)
    }

    fn credit_tenant(&self, tenant: &str, bytes: usize) {
        let mut tenants = self.tenants.write();
        let state = tenants.entry(tenant.to_string()).or_default();
        state.used += bytes;
        state.insertions += 1;
    }

    fn debit_tenant(&self, tenant: &Option<String>, bytes: usize, evicted: bool) {
        let Some(t) = tenant else { return };
        let mut tenants = self.tenants.write();
        if let Some(state) = tenants.get_mut(t) {
            state.used = state.used.saturating_sub(bytes);
            if evicted {
                state.evictions += 1;
            }
        }
    }

    /// May an insert on behalf of `inserting` victimize `e`? A tenant at or
    /// under its quota is protected from everyone but itself; untenanted
    /// entries and quota-less tenants are always fair game.
    fn entry_evictable(&self, inserting: Option<&str>, e: &Entry) -> bool {
        let Some(owner) = e.tenant.as_deref() else {
            return true;
        };
        if Some(owner) == inserting {
            return true;
        }
        let tenants = self.tenants.read();
        match tenants.get(owner) {
            Some(s) => match s.budget {
                Some(quota) => s.used > quota,
                None => true,
            },
            None => true,
        }
    }

    /// Remove `k`, updating global usage, eviction counters, and the owning
    /// tenant's account.
    fn evict_entry(&self, entries: &mut HashMap<CacheKey, Entry>, k: &CacheKey) {
        let e = entries.remove(k).expect("victim exists");
        self.used_bytes.fetch_sub(e.bytes, Ordering::Relaxed);
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        global_metrics().cache_evictions.inc();
        self.debit_tenant(&e.tenant, e.bytes, true);
    }

    /// Look up an entry; bumps LRU clock and hit/miss counters. Takes only
    /// the read lock, so concurrent lookups never serialize.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedData>> {
        let entries = self.entries.read();
        match entries.get(key) {
            Some(e) => {
                e.last_used.store(self.tick(), Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                global_metrics().cache_hits.inc();
                Some(Arc::clone(&e.data))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                global_metrics().cache_misses.inc();
                None
            }
        }
    }

    /// Look up any layout of `(dataset, field)`, preferring the order given.
    pub fn get_any(
        &self,
        dataset: &str,
        field: &str,
        preference: &[Layout],
    ) -> Option<(Layout, Arc<CachedData>)> {
        let entries = self.entries.read();
        for &layout in preference {
            let key = CacheKey::new(dataset, field, layout);
            // Peek without counting misses for non-preferred layouts.
            if let Some(e) = entries.get(&key) {
                e.last_used.store(self.tick(), Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                global_metrics().cache_hits.inc();
                return Some((layout, Arc::clone(&e.data)));
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        global_metrics().cache_misses.inc();
        None
    }

    /// [`CacheManager::get_any`], also reporting the fingerprint the entry
    /// was stored under. The incremental re-query path needs it: after a
    /// pure append, a replica stored under the *pre-append* fingerprint is
    /// not stale — it is valid for the unchanged prefix rows and only the
    /// tail needs scanning.
    pub fn get_any_versioned(
        &self,
        dataset: &str,
        field: &str,
        preference: &[Layout],
    ) -> Option<(Layout, Arc<CachedData>, (u64, u64))> {
        let entries = self.entries.read();
        for &layout in preference {
            let key = CacheKey::new(dataset, field, layout);
            if let Some(e) = entries.get(&key) {
                e.last_used.store(self.tick(), Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                global_metrics().cache_hits.inc();
                return Some((layout, Arc::clone(&e.data), e.fingerprint));
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        global_metrics().cache_misses.inc();
        None
    }

    /// Insert (or replace) an entry, evicting entries to stay within budget.
    /// Entries larger than the whole budget are refused (returns false) —
    /// caching them would evict everything for a single query.
    ///
    /// Eviction is LRU; see [`CacheManager::put_with_cost`] for the
    /// rebuild-cost-weighted variant.
    pub fn put(&self, key: CacheKey, data: CachedData, fingerprint: (u64, u64)) -> bool {
        self.put_with_cost(key, data, fingerprint, 0.0)
    }

    /// [`CacheManager::put`] with an explicit **rebuild cost** expressed in
    /// LRU clock ticks: when eviction runs, the victim is the entry with the
    /// lowest `last_used + rebuild_cost`, so replicas that would be
    /// expensive to recreate (a fresh raw-file parse plus the layout build)
    /// outlive equally-recent cheap ones. A cost of `0.0` is pure LRU; the
    /// optimizer's `CostModel::eviction_bonus` supplies bounded costs.
    pub fn put_with_cost(
        &self,
        key: CacheKey,
        data: CachedData,
        fingerprint: (u64, u64),
        rebuild_cost: f64,
    ) -> bool {
        self.put_with_cost_for(None, key, data, fingerprint, rebuild_cost)
    }

    /// [`CacheManager::put_with_cost`] on behalf of a tenant. The insert is
    /// charged against the tenant's quota (see
    /// [`CacheManager::set_tenant_budget`]): first the tenant's own
    /// lowest-priority entries are evicted until the new entry fits within
    /// its quota, then the global budget is enforced by evicting
    /// lowest-priority *unprotected* entries — never another tenant's while
    /// that tenant is at or under its own quota. Returns false when the
    /// entry cannot fit without breaking a protection.
    pub fn put_with_cost_for(
        &self,
        tenant: Option<&str>,
        key: CacheKey,
        data: CachedData,
        fingerprint: (u64, u64),
        rebuild_cost: f64,
    ) -> bool {
        let bytes = data.approx_bytes();
        if bytes > self.budget_bytes {
            return false;
        }
        let quota = tenant.and_then(|t| self.tenant_quota(t));
        if quota.is_some_and(|q| bytes > q) {
            return false;
        }
        let mut entries = self.entries.write();
        let clock = self.tick();
        if let Some(old) = entries.remove(&key) {
            self.used_bytes.fetch_sub(old.bytes, Ordering::Relaxed);
            self.debit_tenant(&old.tenant, old.bytes, false);
        }
        // Quota enforcement: this tenant stays within its own budget by
        // shedding its own coldest entries first.
        if let (Some(t), Some(q)) = (tenant, quota) {
            while self.tenant_used(t) + bytes > q {
                let victim = entries
                    .iter()
                    .filter(|(_, e)| e.tenant.as_deref() == Some(t))
                    .min_by(|(_, a), (_, b)| {
                        a.priority()
                            .partial_cmp(&b.priority())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => self.evict_entry(&mut entries, &k),
                    None => return false,
                }
            }
        }
        // Global budget: evict lowest-priority unprotected entries until
        // the new entry fits.
        while self.used_bytes.load(Ordering::Relaxed) + bytes > self.budget_bytes {
            let victim = entries
                .iter()
                .filter(|(_, e)| self.entry_evictable(tenant, e))
                .min_by(|(_, a), (_, b)| {
                    a.priority()
                        .partial_cmp(&b.priority())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => self.evict_entry(&mut entries, &k),
                None => return false,
            }
        }
        self.used_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = tenant {
            self.credit_tenant(t, bytes);
        }
        let metrics = global_metrics();
        metrics.cache_insertions.inc();
        metrics.cache_replica_bytes.record(bytes as u64);
        entries.insert(
            key,
            Entry {
                data: Arc::new(data),
                bytes,
                tenant: tenant.map(str::to_string),
                last_used: AtomicU64::new(clock),
                rebuild_bonus: rebuild_cost.max(0.0),
                fingerprint,
            },
        );
        true
    }

    /// Extend a resident `Values` replica in place with appended tail rows
    /// — the O(delta) half of incremental re-query over a grown file. The
    /// entry must be a `Values` replica stored under `expect_fingerprint`
    /// with at least `keep_rows` rows; rows beyond `keep_rows` (a
    /// re-parsed unterminated last unit) are dropped, `tail` is appended,
    /// and the entry is promoted to `fingerprint` so the next query is a
    /// plain full hit. Returns the full column, shared with the refreshed
    /// entry, or `None` when no qualifying entry exists (the caller then
    /// stitches prefix and tail by hand).
    ///
    /// The splice normally mutates the resident vector directly; a
    /// concurrent query still holding the column forces one copy-on-write.
    pub fn extend_values(
        &self,
        key: &CacheKey,
        expect_fingerprint: (u64, u64),
        keep_rows: usize,
        tail: Vec<Value>,
        fingerprint: (u64, u64),
    ) -> Option<Arc<Vec<Value>>> {
        let added: usize = tail.iter().map(Value::approx_bytes).sum();
        let mut entries = self.entries.write();
        let clock = self.tick();
        let (full, owner) = {
            let entry = entries.get_mut(key)?;
            if entry.fingerprint != expect_fingerprint
                || entry.data.layout() != Layout::Values
                || entry.data.len() < keep_rows
            {
                return None;
            }
            let CachedData::Values(vec) = Arc::make_mut(&mut entry.data) else {
                unreachable!("layout checked above");
            };
            let vec = Arc::make_mut(vec);
            let removed: usize = vec[keep_rows..].iter().map(Value::approx_bytes).sum();
            vec.truncate(keep_rows);
            vec.extend(tail);
            entry.bytes = (entry.bytes + added).saturating_sub(removed);
            entry.fingerprint = fingerprint;
            entry.last_used.store(clock, Ordering::Relaxed);
            if added >= removed {
                self.used_bytes
                    .fetch_add(added - removed, Ordering::Relaxed);
            } else {
                self.used_bytes
                    .fetch_sub(removed - added, Ordering::Relaxed);
            }
            if let Some(t) = &entry.tenant {
                let mut tenants = self.tenants.write();
                if let Some(state) = tenants.get_mut(t) {
                    state.used = (state.used + added).saturating_sub(removed);
                }
            }
            let CachedData::Values(vec) = &*entry.data else {
                unreachable!("layout checked above");
            };
            (Arc::clone(vec), entry.tenant.clone())
        };
        // The growth may push usage over budget: evict other *unprotected*
        // entries (same rule as an insert on the owner's behalf), never the
        // one just extended (an oversized survivor is the next put's
        // problem, exactly as with a fresh oversized insert).
        while self.used_bytes.load(Ordering::Relaxed) > self.budget_bytes {
            let victim = entries
                .iter()
                .filter(|(k, e)| *k != key && self.entry_evictable(owner.as_deref(), e))
                .min_by(|(_, a), (_, b)| {
                    a.priority()
                        .partial_cmp(&b.priority())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => self.evict_entry(&mut entries, &k),
                None => break,
            }
        }
        Some(full)
    }

    /// Whether an entry exists, without touching LRU stamps or counters.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.read().contains_key(key)
    }

    /// Whether an entry exists **and** was written for `fingerprint`. The
    /// replica-sync step uses this instead of [`CacheManager::contains`]
    /// after an append: prior-generation replicas are deliberately retained
    /// (their prefix still serves), but they still need refreshing to the
    /// current generation or the next query would invalidate them.
    pub fn contains_fresh(&self, key: &CacheKey, fingerprint: (u64, u64)) -> bool {
        self.entries
            .read()
            .get(key)
            .is_some_and(|e| e.fingerprint == fingerprint)
    }

    /// Drop one entry (the optimizer re-shaping a replica supersedes the old
    /// layout). Returns whether it existed.
    pub fn remove(&self, key: &CacheKey) -> bool {
        let mut entries = self.entries.write();
        match entries.remove(key) {
            Some(e) => {
                self.used_bytes.fetch_sub(e.bytes, Ordering::Relaxed);
                self.debit_tenant(&e.tenant, e.bytes, false);
                true
            }
            None => false,
        }
    }

    /// Drop all entries of a dataset whose fingerprint differs from
    /// `current` — called when the engine notices a raw file changed
    /// (ViDa §2.1: updates drop the affected auxiliary structures).
    /// Returns the number of dropped entries.
    pub fn invalidate_stale(&self, dataset: &str, current: (u64, u64)) -> usize {
        // Every query re-validates fingerprints on its way in; stay on the
        // shared read lock for the common nothing-is-stale case.
        {
            let entries = self.entries.read();
            if !entries
                .iter()
                .any(|(k, e)| k.dataset == dataset && e.fingerprint != current)
            {
                return 0;
            }
        }
        let mut entries = self.entries.write();
        let stale: Vec<CacheKey> = entries
            .iter()
            .filter(|(k, e)| k.dataset == dataset && e.fingerprint != current)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &stale {
            let e = entries.remove(k).expect("stale key exists");
            self.used_bytes.fetch_sub(e.bytes, Ordering::Relaxed);
            self.debit_tenant(&e.tenant, e.bytes, false);
        }
        self.stats
            .invalidations
            .fetch_add(stale.len() as u64, Ordering::Relaxed);
        global_metrics().cache_invalidations.add(stale.len() as u64);
        stale.len()
    }

    /// Drop all entries of a dataset whose fingerprint is in neither of
    /// the two accepted generations — the extension analogue of
    /// [`CacheManager::invalidate_stale`]. After a pure append, replicas
    /// under the pre-append fingerprint stay prefix-valid and replicas
    /// under the current fingerprint are fully valid; everything older is
    /// stale. Returns the number of dropped entries.
    pub fn retain_fingerprints(&self, dataset: &str, keep: &[(u64, u64)]) -> usize {
        {
            let entries = self.entries.read();
            if !entries
                .iter()
                .any(|(k, e)| k.dataset == dataset && !keep.contains(&e.fingerprint))
            {
                return 0;
            }
        }
        let mut entries = self.entries.write();
        let stale: Vec<CacheKey> = entries
            .iter()
            .filter(|(k, e)| k.dataset == dataset && !keep.contains(&e.fingerprint))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &stale {
            let e = entries.remove(k).expect("stale key exists");
            self.used_bytes.fetch_sub(e.bytes, Ordering::Relaxed);
            self.debit_tenant(&e.tenant, e.bytes, false);
        }
        self.stats
            .invalidations
            .fetch_add(stale.len() as u64, Ordering::Relaxed);
        global_metrics().cache_invalidations.add(stale.len() as u64);
        stale.len()
    }

    /// Drop every entry of a dataset unconditionally, fold partials
    /// included.
    pub fn invalidate_dataset(&self, dataset: &str) -> usize {
        self.folds.invalidate_dataset(dataset);
        let mut entries = self.entries.write();
        let keys: Vec<CacheKey> = entries
            .keys()
            .filter(|k| k.dataset == dataset)
            .cloned()
            .collect();
        for k in &keys {
            let e = entries.remove(k).expect("key exists");
            self.used_bytes.fetch_sub(e.bytes, Ordering::Relaxed);
            self.debit_tenant(&e.tenant, e.bytes, false);
        }
        self.stats
            .invalidations
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        global_metrics().cache_invalidations.add(keys.len() as u64);
        keys.len()
    }

    /// Clear everything (benchmark phase boundaries).
    pub fn clear(&self) {
        self.folds.clear();
        let mut entries = self.entries.write();
        entries.clear();
        self.used_bytes.store(0, Ordering::Relaxed);
        // Budgets and cumulative counters survive; usage resets with the
        // entries it accounted for.
        for state in self.tenants.write().values_mut() {
            state.used = 0;
        }
    }

    /// How many replicas exist per layout, across all datasets (sorted by
    /// layout name; layouts with zero replicas are omitted). The
    /// `reproduce` driver reports this to show which layouts the cost model
    /// actually picked.
    pub fn layout_counts(&self) -> Vec<(Layout, usize)> {
        let entries = self.entries.read();
        let mut counts: Vec<(Layout, usize)> = Vec::new();
        for k in entries.keys() {
            match counts.iter_mut().find(|(l, _)| *l == k.layout) {
                Some((_, n)) => *n += 1,
                None => counts.push((k.layout, 1)),
            }
        }
        counts.sort_by_key(|(l, _)| l.name());
        counts
    }

    /// [`CacheManager::layout_counts`] restricted to one tenant's entries —
    /// the per-tenant split the server's stats endpoint reports.
    pub fn layout_counts_for(&self, tenant: &str) -> Vec<(Layout, usize)> {
        let entries = self.entries.read();
        let mut counts: Vec<(Layout, usize)> = Vec::new();
        for (k, e) in entries.iter() {
            if e.tenant.as_deref() != Some(tenant) {
                continue;
            }
            match counts.iter_mut().find(|(l, _)| *l == k.layout) {
                Some((_, n)) => *n += 1,
                None => counts.push((k.layout, 1)),
            }
        }
        counts.sort_by_key(|(l, _)| l.name());
        counts
    }

    /// Which fields of a dataset are cached (any layout)?
    pub fn cached_fields(&self, dataset: &str) -> Vec<String> {
        let entries = self.entries.read();
        let mut fields: Vec<String> = entries
            .keys()
            .filter(|k| k.dataset == dataset)
            .map(|k| k.field.clone())
            .collect();
        fields.sort();
        fields.dedup();
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_types::Value;

    fn col(n: usize) -> CachedData {
        CachedData::Values(Arc::new((0..n).map(|i| Value::Int(i as i64)).collect()))
    }

    #[test]
    fn get_put_hit_miss() {
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("Patients", "age", Layout::Values);
        assert!(m.get(&key).is_none());
        assert!(m.put(key.clone(), col(10), (1, 1)));
        let got = m.get(&key).unwrap();
        assert_eq!(got.len(), 10);
        let s = m.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn operations_feed_the_global_metrics_registry() {
        // The registry is process-global and shared with every other test,
        // so assert on deltas only.
        let before = global_metrics().snapshot();
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("MetricsWiring", "age", Layout::Values);
        assert!(m.get(&key).is_none());
        assert!(m.put(key.clone(), col(10), (1, 1)));
        assert!(m.get(&key).is_some());
        m.invalidate_dataset("MetricsWiring");
        let delta = global_metrics().snapshot().since(&before);
        assert!(delta.cache_hits >= 1);
        assert!(delta.cache_misses >= 1);
        assert!(delta.cache_insertions >= 1);
        assert!(delta.cache_invalidations >= 1);
        assert!(delta.cache_replica_bytes.count() >= 1);
        assert!(delta.cache_replica_bytes.sum >= col(10).approx_bytes() as u64);
    }

    #[test]
    fn lru_eviction_under_budget() {
        // Budget fits roughly two of the three columns.
        let one = col(100).approx_bytes();
        let m = CacheManager::new(one * 2 + 10);
        m.put(CacheKey::new("d", "a", Layout::Values), col(100), (1, 1));
        m.put(CacheKey::new("d", "b", Layout::Values), col(100), (1, 1));
        // Touch "a" so "b" becomes LRU.
        m.get(&CacheKey::new("d", "a", Layout::Values)).unwrap();
        m.put(CacheKey::new("d", "c", Layout::Values), col(100), (1, 1));
        assert!(m.get(&CacheKey::new("d", "a", Layout::Values)).is_some());
        assert!(m.get(&CacheKey::new("d", "b", Layout::Values)).is_none());
        assert!(m.get(&CacheKey::new("d", "c", Layout::Values)).is_some());
        assert_eq!(m.stats().evictions, 1);
        assert!(m.used_bytes() <= m.budget_bytes());
    }

    #[test]
    fn oversized_entry_refused() {
        let m = CacheManager::new(64);
        assert!(!m.put(CacheKey::new("d", "big", Layout::Values), col(1000), (1, 1)));
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn invalidate_stale_by_fingerprint() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(5), (1, 1));
        m.put(CacheKey::new("d", "b", Layout::Values), col(5), (1, 1));
        m.put(CacheKey::new("e", "a", Layout::Values), col(5), (1, 1));
        // File "d" changed: fingerprint now (2, 2).
        let dropped = m.invalidate_stale("d", (2, 2));
        assert_eq!(dropped, 2);
        assert!(m.get(&CacheKey::new("d", "a", Layout::Values)).is_none());
        assert!(m.get(&CacheKey::new("e", "a", Layout::Values)).is_some());
        // Same fingerprint: nothing dropped.
        assert_eq!(m.invalidate_stale("e", (1, 1)), 0);
    }

    #[test]
    fn retain_fingerprints_keeps_two_generations() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "old", Layout::Values), col(5), (1, 1));
        m.put(CacheKey::new("d", "prev", Layout::Values), col(5), (2, 2));
        m.put(CacheKey::new("d", "cur", Layout::Values), col(5), (3, 3));
        m.put(CacheKey::new("e", "old", Layout::Values), col(5), (1, 1));
        // Append happened: (2,2) is the prefix-valid generation, (3,3) the
        // current one; only the (1,1) relic of dataset "d" drops.
        assert_eq!(m.retain_fingerprints("d", &[(2, 2), (3, 3)]), 1);
        assert!(m.get(&CacheKey::new("d", "old", Layout::Values)).is_none());
        assert!(m.get(&CacheKey::new("d", "prev", Layout::Values)).is_some());
        assert!(m.get(&CacheKey::new("d", "cur", Layout::Values)).is_some());
        assert!(m.get(&CacheKey::new("e", "old", Layout::Values)).is_some());
        // Nothing stale: read-lock fast path returns 0.
        assert_eq!(m.retain_fingerprints("d", &[(2, 2), (3, 3)]), 0);
    }

    #[test]
    fn get_any_versioned_reports_stored_fingerprint() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(5), (10, 20));
        let (layout, data, fp) = m
            .get_any_versioned("d", "a", &[Layout::Values, Layout::Positions])
            .unwrap();
        assert_eq!(layout, Layout::Values);
        assert_eq!(data.len(), 5);
        assert_eq!(fp, (10, 20));
        assert!(m.get_any_versioned("d", "b", &[Layout::Values]).is_none());
    }

    #[test]
    fn extend_values_splices_tail_in_place() {
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("d", "a", Layout::Values);
        m.put(key.clone(), col(5), (1, 1));
        let before = m.used_bytes();
        let full = m
            .extend_values(&key, (1, 1), 5, vec![Value::Int(5), Value::Int(6)], (2, 2))
            .unwrap();
        assert_eq!(full.len(), 7);
        assert_eq!(full[6], Value::Int(6));
        assert!(m.used_bytes() > before);
        // Promoted to the new generation, sharing storage with the caller.
        assert!(m.contains_fresh(&key, (2, 2)));
        let got = m.get(&key).unwrap();
        let CachedData::Values(resident) = &*got else {
            panic!("values replica expected");
        };
        assert!(Arc::ptr_eq(resident, &full));
    }

    #[test]
    fn extend_values_drops_rows_past_the_proven_prefix() {
        // The last resident row re-parsed an unterminated unit: keep_rows
        // trims it before the tail (which re-reads it whole) goes on.
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("d", "a", Layout::Values);
        m.put(key.clone(), col(5), (1, 1));
        let full = m
            .extend_values(
                &key,
                (1, 1),
                4,
                vec![Value::Int(40), Value::Int(41)],
                (2, 2),
            )
            .unwrap();
        assert_eq!(&full[3..], &[Value::Int(3), Value::Int(40), Value::Int(41)]);
    }

    #[test]
    fn extend_values_refuses_mismatches() {
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("d", "a", Layout::Values);
        assert!(m.extend_values(&key, (1, 1), 0, vec![], (2, 2)).is_none());
        m.put(key.clone(), col(5), (1, 1));
        // Wrong stored generation.
        assert!(m
            .extend_values(&key, (9, 9), 5, vec![Value::Int(5)], (2, 2))
            .is_none());
        // Prefix longer than the replica.
        assert!(m
            .extend_values(&key, (1, 1), 6, vec![Value::Int(5)], (2, 2))
            .is_none());
        // Not a values replica.
        let pos = CacheKey::new("d", "a", Layout::Positions);
        m.put(pos.clone(), CachedData::Positions(vec![(0, 4); 5]), (1, 1));
        assert!(m
            .extend_values(&pos, (1, 1), 5, vec![Value::Int(5)], (2, 2))
            .is_none());
        // The untouched entry still serves under its old generation.
        assert!(m.contains_fresh(&key, (1, 1)));
    }

    #[test]
    fn extend_values_evicts_others_when_growth_exceeds_budget() {
        let one = col(100).approx_bytes();
        let m = CacheManager::new(one * 2 + 64);
        let hot = CacheKey::new("d", "hot", Layout::Values);
        m.put(hot.clone(), col(100), (1, 1));
        m.put(CacheKey::new("d", "cold", Layout::Values), col(100), (1, 1));
        let tail: Vec<Value> = (100..120).map(|i| Value::Int(i as i64)).collect();
        assert!(m.extend_values(&hot, (1, 1), 100, tail, (2, 2)).is_some());
        assert!(m.contains(&hot), "the extended entry is never the victim");
        assert!(!m.contains(&CacheKey::new("d", "cold", Layout::Values)));
        assert!(m.used_bytes() <= m.budget_bytes());
    }

    #[test]
    fn invalidate_dataset_drops_fold_partials_too() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(5), (1, 1));
        m.folds().put(
            "d",
            42,
            crate::fold::FoldPartial {
                partial: Value::Int(9),
                rows: 5,
                fingerprint: (1, 1),
            },
        );
        m.invalidate_dataset("d");
        assert!(m.folds().get("d", 42).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn invalidate_dataset_unconditional() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(5), (1, 1));
        m.put(
            CacheKey::new("d", "a", Layout::BinaryJson),
            CachedData::from_values(&[Value::Int(1)], Layout::BinaryJson).unwrap(),
            (1, 1),
        );
        assert_eq!(m.invalidate_dataset("d"), 2);
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn layout_replicas_coexist() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(3), (1, 1));
        m.put(
            CacheKey::new("d", "a", Layout::Positions),
            CachedData::Positions(vec![(0, 5); 3]),
            (1, 1),
        );
        assert_eq!(m.len(), 2);
        let (layout, _) = m
            .get_any("d", "a", &[Layout::Positions, Layout::Values])
            .unwrap();
        assert_eq!(layout, Layout::Positions);
        assert_eq!(m.cached_fields("d"), vec!["a".to_string()]);
    }

    #[test]
    fn get_any_miss_counts_once() {
        let m = CacheManager::new(1 << 20);
        assert!(m
            .get_any("d", "a", &[Layout::Values, Layout::Text])
            .is_none());
        assert_eq!(m.stats().misses, 1);
    }

    #[test]
    fn replacing_entry_updates_bytes() {
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("d", "a", Layout::Values);
        m.put(key.clone(), col(100), (1, 1));
        let big = m.used_bytes();
        m.put(key.clone(), col(10), (1, 1));
        assert!(m.used_bytes() < big);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_resets_usage() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(5), (1, 1));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn rebuild_cost_outweighs_recency_in_eviction() {
        // Budget fits two columns. "cheap" is the more recently used entry,
        // but "dear" carries a large rebuild bonus: eviction must pick
        // "cheap" even though pure LRU would keep it.
        let one = col(100).approx_bytes();
        let m = CacheManager::new(one * 2 + 10);
        m.put_with_cost(
            CacheKey::new("d", "dear", Layout::Values),
            col(100),
            (1, 1),
            50.0,
        );
        m.put(
            CacheKey::new("d", "cheap", Layout::Values),
            col(100),
            (1, 1),
        );
        m.get(&CacheKey::new("d", "cheap", Layout::Values)).unwrap();
        m.put(CacheKey::new("d", "new", Layout::Values), col(100), (1, 1));
        assert!(m.contains(&CacheKey::new("d", "dear", Layout::Values)));
        assert!(!m.contains(&CacheKey::new("d", "cheap", Layout::Values)));
        assert!(m.contains(&CacheKey::new("d", "new", Layout::Values)));
    }

    #[test]
    fn zero_cost_put_is_pure_lru() {
        let one = col(100).approx_bytes();
        let m = CacheManager::new(one * 2 + 10);
        m.put_with_cost(
            CacheKey::new("d", "a", Layout::Values),
            col(100),
            (1, 1),
            0.0,
        );
        m.put_with_cost(
            CacheKey::new("d", "b", Layout::Values),
            col(100),
            (1, 1),
            0.0,
        );
        m.get(&CacheKey::new("d", "a", Layout::Values)).unwrap();
        m.put(CacheKey::new("d", "c", Layout::Values), col(100), (1, 1));
        assert!(!m.contains(&CacheKey::new("d", "b", Layout::Values)));
    }

    #[test]
    fn remove_drops_entry_and_bytes() {
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("d", "a", Layout::Values);
        m.put(key.clone(), col(10), (1, 1));
        assert!(m.used_bytes() > 0);
        assert!(m.remove(&key));
        assert!(!m.remove(&key));
        assert_eq!(m.used_bytes(), 0);
        assert!(!m.contains(&key));
    }

    #[test]
    fn contains_does_not_touch_counters() {
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("d", "a", Layout::Values);
        m.put(key.clone(), col(3), (1, 1));
        assert!(m.contains(&key));
        assert!(!m.contains(&CacheKey::new("d", "b", Layout::Values)));
        let s = m.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn layout_counts_report_replica_mix() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(3), (1, 1));
        m.put(CacheKey::new("d", "b", Layout::Values), col(3), (1, 1));
        m.put(
            CacheKey::new("d", "c", Layout::Positions),
            CachedData::Positions(vec![(0, 5); 3]),
            (1, 1),
        );
        let counts = m.layout_counts();
        assert_eq!(counts, vec![(Layout::Positions, 1), (Layout::Values, 2)]);
    }

    #[test]
    fn tenant_quota_sheds_own_coldest_entries_first() {
        let one = col(100).approx_bytes();
        // Global budget is roomy; tenant "a" may hold only two columns.
        let m = CacheManager::new(one * 10);
        m.set_tenant_budget("a", one * 2 + 10);
        for f in ["x", "y"] {
            assert!(m.put_with_cost_for(
                Some("a"),
                CacheKey::new("d", f, Layout::Values),
                col(100),
                (1, 1),
                0.0,
            ));
        }
        m.get(&CacheKey::new("d", "x", Layout::Values)).unwrap();
        assert!(m.put_with_cost_for(
            Some("a"),
            CacheKey::new("d", "z", Layout::Values),
            col(100),
            (1, 1),
            0.0,
        ));
        // "y" was a's LRU entry and pays for a's own growth.
        assert!(m.contains(&CacheKey::new("d", "x", Layout::Values)));
        assert!(!m.contains(&CacheKey::new("d", "y", Layout::Values)));
        assert!(m.contains(&CacheKey::new("d", "z", Layout::Values)));
        let stats = m.tenant_stats("a");
        assert_eq!(stats.evictions, 1);
        assert!(stats.used_bytes <= stats.budget_bytes.unwrap());
    }

    #[test]
    fn skewed_tenants_never_cross_evict_past_quota() {
        let one = col(100).approx_bytes();
        // Global budget fits four columns; "big" may hold three, "small" one.
        let m = CacheManager::new(one * 4 + 20);
        m.set_tenant_budget("big", one * 3 + 15);
        m.set_tenant_budget("small", one + 5);
        for f in ["b1", "b2", "b3"] {
            assert!(m.put_with_cost_for(
                Some("big"),
                CacheKey::new("d", f, Layout::Values),
                col(100),
                (1, 1),
                0.0,
            ));
        }
        assert!(m.put_with_cost_for(
            Some("small"),
            CacheKey::new("d", "s1", Layout::Values),
            col(100),
            (1, 1),
            0.0,
        ));
        // The cache is globally full and both tenants are at quota. Either
        // tenant churning stays inside its own allotment:
        assert!(m.put_with_cost_for(
            Some("small"),
            CacheKey::new("d", "s2", Layout::Values),
            col(100),
            (1, 1),
            0.0,
        ));
        assert!(!m.contains(&CacheKey::new("d", "s1", Layout::Values)));
        for f in ["b1", "b2", "b3"] {
            assert!(
                m.contains(&CacheKey::new("d", f, Layout::Values)),
                "small's churn evicted big's {f} despite big being under quota"
            );
        }
        assert!(m.put_with_cost_for(
            Some("big"),
            CacheKey::new("d", "b4", Layout::Values),
            col(100),
            (1, 1),
            0.0,
        ));
        assert!(m.contains(&CacheKey::new("d", "s2", Layout::Values)));
        // Eviction counters split per tenant.
        assert_eq!(m.tenant_stats("small").evictions, 1);
        assert_eq!(m.tenant_stats("big").evictions, 1);
        assert_eq!(m.tenant_stats("big").insertions, 4);
        assert_eq!(m.tenant_names(), vec!["big".to_string(), "small".into()]);
    }

    #[test]
    fn untenanted_insert_cannot_victimize_protected_tenants() {
        let one = col(100).approx_bytes();
        let m = CacheManager::new(one * 2 + 10);
        m.set_tenant_budget("a", one * 2 + 10);
        for f in ["x", "y"] {
            assert!(m.put_with_cost_for(
                Some("a"),
                CacheKey::new("d", f, Layout::Values),
                col(100),
                (1, 1),
                0.0,
            ));
        }
        // Globally full, every entry protected: the untenanted put must be
        // refused rather than break a's quota.
        assert!(!m.put(CacheKey::new("d", "anon", Layout::Values), col(100), (1, 1)));
        assert!(m.contains(&CacheKey::new("d", "x", Layout::Values)));
        assert!(m.contains(&CacheKey::new("d", "y", Layout::Values)));
    }

    #[test]
    fn entry_larger_than_tenant_quota_refused() {
        let m = CacheManager::new(1 << 20);
        m.set_tenant_budget("tiny", 16);
        assert!(!m.put_with_cost_for(
            Some("tiny"),
            CacheKey::new("d", "a", Layout::Values),
            col(100),
            (1, 1),
            0.0,
        ));
        assert_eq!(m.tenant_stats("tiny").used_bytes, 0);
    }

    #[test]
    fn layout_counts_split_per_tenant() {
        let m = CacheManager::new(1 << 20);
        m.put_with_cost_for(
            Some("a"),
            CacheKey::new("d", "x", Layout::Values),
            col(3),
            (1, 1),
            0.0,
        );
        m.put_with_cost_for(
            Some("a"),
            CacheKey::new("d", "y", Layout::Positions),
            CachedData::Positions(vec![(0, 5); 3]),
            (1, 1),
            0.0,
        );
        m.put_with_cost_for(
            Some("b"),
            CacheKey::new("d", "z", Layout::Values),
            col(3),
            (1, 1),
            0.0,
        );
        assert_eq!(
            m.layout_counts_for("a"),
            vec![(Layout::Positions, 1), (Layout::Values, 1)]
        );
        assert_eq!(m.layout_counts_for("b"), vec![(Layout::Values, 1)]);
        assert!(m.layout_counts_for("nobody").is_empty());
        // The global view still sees everything.
        assert_eq!(
            m.layout_counts(),
            vec![(Layout::Positions, 1), (Layout::Values, 2)]
        );
    }

    #[test]
    fn removal_paths_debit_tenant_usage() {
        let m = CacheManager::new(1 << 20);
        m.set_tenant_budget("a", 1 << 20);
        let key = CacheKey::new("d", "x", Layout::Values);
        m.put_with_cost_for(Some("a"), key.clone(), col(10), (1, 1), 0.0);
        assert!(m.tenant_stats("a").used_bytes > 0);
        m.remove(&key);
        assert_eq!(m.tenant_stats("a").used_bytes, 0);

        m.put_with_cost_for(Some("a"), key.clone(), col(10), (2, 2), 0.0);
        assert_eq!(m.invalidate_stale("d", (3, 3)), 1);
        assert_eq!(m.tenant_stats("a").used_bytes, 0);

        m.put_with_cost_for(Some("a"), key.clone(), col(10), (3, 3), 0.0);
        m.clear();
        assert_eq!(m.tenant_stats("a").used_bytes, 0);
        // The quota survives a clear.
        assert_eq!(m.tenant_stats("a").budget_bytes, Some(1 << 20));
    }

    #[test]
    fn concurrent_readers_while_one_worker_populates() {
        // Pipeline workers hammer lookups while another worker inserts
        // replicas; counters and byte accounting must stay consistent.
        let m = std::sync::Arc::new(CacheManager::new(1 << 20));
        let hot = CacheKey::new("d", "hot", Layout::Values);
        m.put(hot.clone(), col(64), (1, 1));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                let hot = hot.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        assert!(m.get(&hot).is_some());
                    }
                });
            }
            let m = std::sync::Arc::clone(&m);
            s.spawn(move || {
                for i in 0..50 {
                    m.put(
                        CacheKey::new("d", format!("c{i}"), Layout::Values),
                        col(8),
                        (1, 1),
                    );
                }
            });
        });
        let s = m.stats();
        assert_eq!(s.hits, 2000);
        assert_eq!(s.insertions, 51);
        assert_eq!(m.len(), 51);
        assert!(m.used_bytes() <= m.budget_bytes());
    }
}
