//! The cache manager: budgeted, layout-aware, invalidation-driven.
//!
//! Entries are keyed by `(dataset, field, layout)` so replicas of the same
//! field in different layouts coexist (§5 "Re-using and re-shaping
//! results"). A logical-clock LRU keeps the total footprint under a
//! configurable budget. When a raw file changes (fingerprint mismatch),
//! every entry of that dataset is dropped — the paper's §2.1 update story.

use crate::layout::{CachedData, Layout};
use std::collections::HashMap;
use std::sync::Arc;
use vida_types::sync::Mutex;

/// Identifies one cached column replica.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub dataset: String,
    /// Field name, or `"*"` for whole-unit records.
    pub field: String,
    pub layout: Layout,
}

impl CacheKey {
    pub fn new(dataset: impl Into<String>, field: impl Into<String>, layout: Layout) -> Self {
        CacheKey {
            dataset: dataset.into(),
            field: field.into(),
            layout,
        }
    }
}

/// Hit/miss/eviction counters (exposed in query stats; drives the §6
/// "80% of the workload was served from caches" measurement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    data: Arc<CachedData>,
    bytes: usize,
    last_used: u64,
    fingerprint: (u64, u64),
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    clock: u64,
    used_bytes: usize,
    stats: CacheStats,
}

/// Budgeted cache of raw-data column replicas.
pub struct CacheManager {
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

impl CacheManager {
    /// Create a manager with a memory budget in bytes.
    pub fn new(budget_bytes: usize) -> Self {
        CacheManager {
            budget_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                used_bytes: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Look up an entry; bumps LRU clock and hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedData>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.last_used = clock;
                let data = Arc::clone(&e.data);
                inner.stats.hits += 1;
                Some(data)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Look up any layout of `(dataset, field)`, preferring the order given.
    pub fn get_any(
        &self,
        dataset: &str,
        field: &str,
        preference: &[Layout],
    ) -> Option<(Layout, Arc<CachedData>)> {
        for &layout in preference {
            let key = CacheKey::new(dataset, field, layout);
            // Peek without counting misses for non-preferred layouts.
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(e) = inner.entries.get_mut(&key) {
                e.last_used = clock;
                let data = Arc::clone(&e.data);
                inner.stats.hits += 1;
                return Some((layout, data));
            }
        }
        self.inner.lock().stats.misses += 1;
        None
    }

    /// Insert (or replace) an entry, evicting LRU entries to stay within
    /// budget. Entries larger than the whole budget are refused (returns
    /// false) — caching them would evict everything for a single query.
    pub fn put(&self, key: CacheKey, data: CachedData, fingerprint: (u64, u64)) -> bool {
        let bytes = data.approx_bytes();
        if bytes > self.budget_bytes {
            return false;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.remove(&key) {
            inner.used_bytes -= old.bytes;
        }
        // Evict least-recently-used until the new entry fits.
        while inner.used_bytes + bytes > self.budget_bytes {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = inner.entries.remove(&k).expect("victim exists");
                    inner.used_bytes -= e.bytes;
                    inner.stats.evictions += 1;
                }
                None => break,
            }
        }
        inner.used_bytes += bytes;
        inner.stats.insertions += 1;
        inner.entries.insert(
            key,
            Entry {
                data: Arc::new(data),
                bytes,
                last_used: clock,
                fingerprint,
            },
        );
        true
    }

    /// Drop all entries of a dataset whose fingerprint differs from
    /// `current` — called when the engine notices a raw file changed
    /// (ViDa §2.1: updates drop the affected auxiliary structures).
    /// Returns the number of dropped entries.
    pub fn invalidate_stale(&self, dataset: &str, current: (u64, u64)) -> usize {
        let mut inner = self.inner.lock();
        let stale: Vec<CacheKey> = inner
            .entries
            .iter()
            .filter(|(k, e)| k.dataset == dataset && e.fingerprint != current)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &stale {
            let e = inner.entries.remove(k).expect("stale key exists");
            inner.used_bytes -= e.bytes;
        }
        inner.stats.invalidations += stale.len() as u64;
        stale.len()
    }

    /// Drop every entry of a dataset unconditionally.
    pub fn invalidate_dataset(&self, dataset: &str) -> usize {
        let mut inner = self.inner.lock();
        let keys: Vec<CacheKey> = inner
            .entries
            .keys()
            .filter(|k| k.dataset == dataset)
            .cloned()
            .collect();
        for k in &keys {
            let e = inner.entries.remove(k).expect("key exists");
            inner.used_bytes -= e.bytes;
        }
        inner.stats.invalidations += keys.len() as u64;
        keys.len()
    }

    /// Clear everything (benchmark phase boundaries).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.used_bytes = 0;
    }

    /// Which fields of a dataset are cached (any layout)?
    pub fn cached_fields(&self, dataset: &str) -> Vec<String> {
        let inner = self.inner.lock();
        let mut fields: Vec<String> = inner
            .entries
            .keys()
            .filter(|k| k.dataset == dataset)
            .map(|k| k.field.clone())
            .collect();
        fields.sort();
        fields.dedup();
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_types::Value;

    fn col(n: usize) -> CachedData {
        CachedData::Values((0..n).map(|i| Value::Int(i as i64)).collect())
    }

    #[test]
    fn get_put_hit_miss() {
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("Patients", "age", Layout::Values);
        assert!(m.get(&key).is_none());
        assert!(m.put(key.clone(), col(10), (1, 1)));
        let got = m.get(&key).unwrap();
        assert_eq!(got.len(), 10);
        let s = m.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_under_budget() {
        // Budget fits roughly two of the three columns.
        let one = col(100).approx_bytes();
        let m = CacheManager::new(one * 2 + 10);
        m.put(CacheKey::new("d", "a", Layout::Values), col(100), (1, 1));
        m.put(CacheKey::new("d", "b", Layout::Values), col(100), (1, 1));
        // Touch "a" so "b" becomes LRU.
        m.get(&CacheKey::new("d", "a", Layout::Values)).unwrap();
        m.put(CacheKey::new("d", "c", Layout::Values), col(100), (1, 1));
        assert!(m.get(&CacheKey::new("d", "a", Layout::Values)).is_some());
        assert!(m.get(&CacheKey::new("d", "b", Layout::Values)).is_none());
        assert!(m.get(&CacheKey::new("d", "c", Layout::Values)).is_some());
        assert_eq!(m.stats().evictions, 1);
        assert!(m.used_bytes() <= m.budget_bytes());
    }

    #[test]
    fn oversized_entry_refused() {
        let m = CacheManager::new(64);
        assert!(!m.put(CacheKey::new("d", "big", Layout::Values), col(1000), (1, 1)));
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn invalidate_stale_by_fingerprint() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(5), (1, 1));
        m.put(CacheKey::new("d", "b", Layout::Values), col(5), (1, 1));
        m.put(CacheKey::new("e", "a", Layout::Values), col(5), (1, 1));
        // File "d" changed: fingerprint now (2, 2).
        let dropped = m.invalidate_stale("d", (2, 2));
        assert_eq!(dropped, 2);
        assert!(m.get(&CacheKey::new("d", "a", Layout::Values)).is_none());
        assert!(m.get(&CacheKey::new("e", "a", Layout::Values)).is_some());
        // Same fingerprint: nothing dropped.
        assert_eq!(m.invalidate_stale("e", (1, 1)), 0);
    }

    #[test]
    fn invalidate_dataset_unconditional() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(5), (1, 1));
        m.put(
            CacheKey::new("d", "a", Layout::BinaryJson),
            CachedData::from_values(&[Value::Int(1)], Layout::BinaryJson).unwrap(),
            (1, 1),
        );
        assert_eq!(m.invalidate_dataset("d"), 2);
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn layout_replicas_coexist() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(3), (1, 1));
        m.put(
            CacheKey::new("d", "a", Layout::Positions),
            CachedData::Positions(vec![(0, 5); 3]),
            (1, 1),
        );
        assert_eq!(m.len(), 2);
        let (layout, _) = m
            .get_any("d", "a", &[Layout::Positions, Layout::Values])
            .unwrap();
        assert_eq!(layout, Layout::Positions);
        assert_eq!(m.cached_fields("d"), vec!["a".to_string()]);
    }

    #[test]
    fn get_any_miss_counts_once() {
        let m = CacheManager::new(1 << 20);
        assert!(m
            .get_any("d", "a", &[Layout::Values, Layout::Text])
            .is_none());
        assert_eq!(m.stats().misses, 1);
    }

    #[test]
    fn replacing_entry_updates_bytes() {
        let m = CacheManager::new(1 << 20);
        let key = CacheKey::new("d", "a", Layout::Values);
        m.put(key.clone(), col(100), (1, 1));
        let big = m.used_bytes();
        m.put(key.clone(), col(10), (1, 1));
        assert!(m.used_bytes() < big);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_resets_usage() {
        let m = CacheManager::new(1 << 20);
        m.put(CacheKey::new("d", "a", Layout::Values), col(5), (1, 1));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.used_bytes(), 0);
    }
}
