//! A compact binary serialization of [`Value`] — ViDa's "binary JSON"
//! (Figure 4 layout (b)).
//!
//! The paper notes binary JSON serializations are more compact than JSON
//! text and cheaper to re-read; ViDa materializes intermediate results this
//! way when an application wants JSON-shaped output repeatedly (§5). The
//! encoding is a simple tag-length-value scheme:
//!
//! ```text
//! 0x00 null | 0x01 bool u8 | 0x02 int i64 | 0x03 float f64
//! 0x04 str (u32 len, bytes) | 0x05 record (u32 n, n × (str name, value))
//! 0x06..0x09 set/bag/list/array-collection (u32 n, n × value)
//! 0x0A array (u32 ndims, ndims × u64, u32 n, n × value)
//! ```

use vida_types::{CollectionKind, Result, Value, VidaError};

/// Append the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0x00),
        Value::Bool(b) => {
            out.push(0x01);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(0x02);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(0x03);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x04);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Record(fields) => {
            out.push(0x05);
            out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
            for (n, v) in fields {
                out.extend_from_slice(&(n.len() as u32).to_le_bytes());
                out.extend_from_slice(n.as_bytes());
                encode_value(v, out);
            }
        }
        Value::Collection(kind, items) => {
            out.push(match kind {
                CollectionKind::Set => 0x06,
                CollectionKind::Bag => 0x07,
                CollectionKind::List => 0x08,
                CollectionKind::Array => 0x09,
            });
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for v in items {
                encode_value(v, out);
            }
        }
        Value::Array { dims, data } => {
            out.push(0x0A);
            out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for &d in dims {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            for v in data {
                encode_value(v, out);
            }
        }
    }
}

/// Decode one value starting at `pos`; returns the value and the offset just
/// past it.
pub fn decode_value(buf: &[u8], pos: usize) -> Result<(Value, usize)> {
    let err = || VidaError::Exec("truncated binary value".into());
    let tag = *buf.get(pos).ok_or_else(err)?;
    let mut p = pos + 1;
    let take = |p: &mut usize, n: usize| -> Result<&[u8]> {
        let s = buf.get(*p..*p + n).ok_or_else(err)?;
        *p += n;
        Ok(s)
    };
    match tag {
        0x00 => Ok((Value::Null, p)),
        0x01 => {
            let b = take(&mut p, 1)?[0];
            Ok((Value::Bool(b != 0), p))
        }
        0x02 => {
            let b: [u8; 8] = take(&mut p, 8)?.try_into().unwrap();
            Ok((Value::Int(i64::from_le_bytes(b)), p))
        }
        0x03 => {
            let b: [u8; 8] = take(&mut p, 8)?.try_into().unwrap();
            Ok((Value::Float(f64::from_le_bytes(b)), p))
        }
        0x04 => {
            let n = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
            let s = std::str::from_utf8(take(&mut p, n)?)
                .map_err(|_| VidaError::Exec("invalid UTF-8 in binary value".into()))?
                .to_string();
            Ok((Value::Str(s), p))
        }
        0x05 => {
            let n = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let ln = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
                let name = std::str::from_utf8(take(&mut p, ln)?)
                    .map_err(|_| VidaError::Exec("invalid UTF-8 in field name".into()))?
                    .to_string();
                let (v, np) = decode_value(buf, p)?;
                p = np;
                fields.push((name, v));
            }
            Ok((Value::Record(fields), p))
        }
        0x06..=0x09 => {
            let kind = match tag {
                0x06 => CollectionKind::Set,
                0x07 => CollectionKind::Bag,
                0x08 => CollectionKind::List,
                _ => CollectionKind::Array,
            };
            let n = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let (v, np) = decode_value(buf, p)?;
                p = np;
                items.push(v);
            }
            Ok((Value::Collection(kind, items), p))
        }
        0x0A => {
            let nd = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
            let mut dims = Vec::with_capacity(nd);
            for _ in 0..nd {
                dims.push(u64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap()) as usize);
            }
            let n = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                let (v, np) = decode_value(buf, p)?;
                p = np;
                data.push(v);
            }
            Ok((Value::Array { dims, data }, p))
        }
        t => Err(VidaError::Exec(format!("unknown binary value tag {t:#x}"))),
    }
}

/// Encode a value into a fresh buffer.
pub fn to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(v, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let bytes = to_bytes(&v);
        let (back, end) = decode_value(&bytes, 0).unwrap();
        assert_eq!(back, v);
        assert_eq!(end, bytes.len());
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Int(-42));
        round_trip(Value::Float(2.5));
        round_trip(Value::str("héllo\nworld"));
    }

    #[test]
    fn nested_round_trip() {
        round_trip(Value::record([
            ("id", Value::Int(1)),
            (
                "inner",
                Value::record([("xs", Value::list(vec![Value::Int(1), Value::Null]))]),
            ),
            ("s", Value::set(vec![Value::Int(2), Value::Int(1)])),
        ]));
        round_trip(Value::Array {
            dims: vec![2, 2],
            data: vec![
                Value::Float(1.0),
                Value::Float(2.0),
                Value::Float(3.0),
                Value::Float(4.0),
            ],
        });
    }

    #[test]
    fn binary_is_more_compact_than_json_for_numbers() {
        // The Figure-4 motivation: binary JSON beats text for numeric data.
        let v = Value::record(
            (0..20)
                .map(|i| {
                    (
                        format!("field_number_{i}"),
                        Value::Float(i as f64 * 1.123456789),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let bin = to_bytes(&v).len();
        // JSON text of the same record (rough expansion).
        let json: usize = 2 + 20 * (18 + 3 + 18);
        assert!(bin < json, "binary {bin} should beat text {json}");
    }

    #[test]
    fn truncated_buffers_error() {
        let bytes = to_bytes(&Value::str("hello"));
        for cut in 1..bytes.len() {
            assert!(decode_value(&bytes[..cut], 0).is_err());
        }
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(decode_value(&[0xFF], 0).is_err());
        assert!(decode_value(&[], 0).is_err());
    }

    #[test]
    fn sequential_values_decode_in_order() {
        let mut buf = Vec::new();
        encode_value(&Value::Int(1), &mut buf);
        encode_value(&Value::str("two"), &mut buf);
        encode_value(&Value::Bool(false), &mut buf);
        let (a, p1) = decode_value(&buf, 0).unwrap();
        let (b, p2) = decode_value(&buf, p1).unwrap();
        let (c, p3) = decode_value(&buf, p2).unwrap();
        assert_eq!(
            (a, b, c),
            (Value::Int(1), Value::str("two"), Value::Bool(false))
        );
        assert_eq!(p3, buf.len());
    }
}
