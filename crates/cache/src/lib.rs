//! # vida-cache
//!
//! ViDa's layout-aware data caches (§2.1, §5).
//!
//! ViDa caches previously-accessed raw data fields so that workload locality
//! (~80% in the paper's HBP workload) turns repeated raw-file accesses into
//! memory reads. Three ideas from the paper shape the design:
//!
//! 1. **Layout-aware replicas** — the same field may be cached in several
//!    layouts (columnar values, row records, binary JSON, positions-only;
//!    Figure 4) and the optimizer picks the one that fits the query.
//! 2. **Cache-pollution avoidance** — large nested objects can be cached as
//!    `(start, end)` byte positions into the raw file rather than eagerly
//!    materialized (§5).
//! 3. **Invalidation, not synchronization** — in-place updates to a raw
//!    file simply drop the affected entries (§2.1): the raw file stays the
//!    golden copy.

pub mod bson;
pub mod fold;
pub mod layout;
pub mod manager;

pub use bson::{decode_value, encode_value};
pub use fold::{FoldCache, FoldPartial};
pub use layout::{CachedData, Layout};
pub use manager::{CacheKey, CacheManager, CacheStats, TenantStats};
