//! File-backed tests for the mmap path: mapped and owned backings must
//! expose byte-identical data, and unmappable inputs must fall back
//! cleanly.

use std::path::PathBuf;
use vida_io::{MapMode, RawData};

fn fixture(name: &str, contents: &[u8]) -> PathBuf {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::write(&path, contents).expect("write fixture");
    path
}

#[test]
fn mapped_and_owned_bytes_are_identical() {
    let contents: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
    let path = fixture("raw_identical.bin", &contents);
    let auto = RawData::open_with(&path, MapMode::Auto).unwrap();
    let owned = RawData::open_with(&path, MapMode::Never).unwrap();
    assert!(!owned.is_mapped());
    assert_eq!(&auto[..], &contents[..]);
    assert_eq!(&owned[..], &contents[..]);
    #[cfg(unix)]
    assert!(auto.is_mapped(), "unix Auto should map a regular file");
}

#[test]
fn zero_length_file_falls_back_to_owned() {
    // mmap(len = 0) is EINVAL; Auto must still open the file.
    let path = fixture("raw_empty.bin", b"");
    let d = RawData::open_with(&path, MapMode::Auto).unwrap();
    assert!(!d.is_mapped());
    assert!(d.is_empty());
}

#[test]
fn missing_file_errors_in_both_modes() {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("does_not_exist.bin");
    assert!(RawData::open_with(&path, MapMode::Auto).is_err());
    assert!(RawData::open_with(&path, MapMode::Never).is_err());
}

#[test]
fn mapped_data_is_shareable_across_threads() {
    let contents = b"abcdefgh".repeat(4096);
    let path = fixture("raw_shared.bin", &contents);
    let data = std::sync::Arc::new(RawData::open(&path).unwrap());
    std::thread::scope(|s| {
        for chunk in 0..4 {
            let data = std::sync::Arc::clone(&data);
            let contents = &contents;
            s.spawn(move || {
                let span = chunk * 8192..(chunk + 1) * 8192;
                assert_eq!(&data[span.clone()], &contents[span]);
            });
        }
    });
}

#[test]
fn from_vec_wraps_owned() {
    let d = RawData::from_vec(vec![1, 2, 3]);
    assert!(!d.is_mapped());
    assert_eq!(d.as_ref(), &[1, 2, 3]);
    assert_eq!(format!("{d:?}"), "RawData { len: 3, mapped: false }");
}

#[test]
fn drop_unmaps_without_poisoning_other_maps() {
    // Two maps of the same file are independent: dropping one leaves the
    // other readable (a double-munmap or shared-state bug would fault).
    let contents = b"0123456789".repeat(1000);
    let path = fixture("raw_two_maps.bin", &contents);
    let a = RawData::open(&path).unwrap();
    let b = RawData::open(&path).unwrap();
    drop(a);
    assert_eq!(&b[..10], b"0123456789");
}
