//! SWAR scanners for JSON structural characters.
//!
//! NDJSON semi-index construction has three hot scanning loops: the record
//! split on newlines, the plain-byte run inside string parsing (everything
//! up to the next `"` or `\`), and the composite skip that balances
//! `{}`/`[]` while respecting strings. Each is a multi-byte search over
//! structural characters, so each rides the word-at-a-time scanners in
//! [`crate::swar`]. Escape handling and depth tracking stay with the
//! caller — these helpers only answer "where is the next byte I must look
//! at?", which is exactly the part worth vectorizing.

use crate::swar::{find_byte, find_byte2, find_byte3};

/// Offset (relative to `data`) of the next newline at or after `pos`, i.e.
/// the next NDJSON record boundary. `None` when the last record is
/// unterminated.
#[inline]
pub fn next_record_boundary(data: &[u8], pos: usize) -> Option<usize> {
    find_byte(&data[pos..], b'\n').map(|d| pos + d)
}

/// Offset of the next byte a JSON string parser must inspect — the closing
/// `"` or a `\` escape — at or after `pos`. Bytes before it are a plain
/// run that can be bulk-copied. `None` means the string never terminates.
#[inline]
pub fn next_string_special(data: &[u8], pos: usize) -> Option<usize> {
    find_byte2(&data[pos..], b'"', b'\\').map(|d| pos + d)
}

/// Offset of the next byte a composite skipper must inspect — a `"`
/// (string start: its contents must not count toward nesting) or the
/// given `open`/`close` bracket — at or after `pos`.
#[inline]
pub fn next_composite_special(data: &[u8], pos: usize, open: u8, close: u8) -> Option<usize> {
    find_byte3(&data[pos..], b'"', open, close).map(|d| pos + d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_boundaries_split_ndjson() {
        let data = b"{\"a\":1}\n{\"b\":\"x\\ny\"}\n{\"c\":3}";
        assert_eq!(next_record_boundary(data, 0), Some(7));
        assert_eq!(next_record_boundary(data, 8), Some(20));
        assert_eq!(next_record_boundary(data, 21), None);
    }

    #[test]
    fn string_specials_stop_at_quote_and_backslash() {
        let data = br#"plain run then \n and "end"#;
        assert_eq!(next_string_special(data, 0), Some(15)); // the backslash
        assert_eq!(next_string_special(data, 16), Some(22)); // the quote
        assert_eq!(next_string_special(b"no special", 0), None);
    }

    #[test]
    fn composite_specials_cover_both_bracket_kinds() {
        let data = b"[1,2,{\"k\":[3]}]";
        assert_eq!(next_composite_special(data, 0, b'[', b']'), Some(0));
        assert_eq!(next_composite_special(data, 1, b'[', b']'), Some(6)); // the quote
        assert_eq!(next_composite_special(data, 1, b'{', b'}'), Some(5));
        assert_eq!(next_composite_special(b"123", 0, b'{', b'}'), None);
    }
}
