//! The shared quote-aware CSV tokenizer (RFC 4180).
//!
//! One implementation of CSV structure — record boundaries, field
//! boundaries, quoted-field skipping — used by the positional-map build,
//! field location, schema inference, and the morsel dispatcher alike, so
//! the different consumers can never drift apart on quoting semantics.
//!
//! The hot loops ride the [`crate::swar`] scanners: each iteration loads 8
//! bytes and builds exact match masks for the delimiter, `"` and `\n` at
//! once. Quote state is carried across words with one trick: a quote only
//! *opens* a quoted field at a field start, i.e. when the previous byte is
//! a delimiter (or the byte is the scan start), so
//! `field_start_quotes = quote_mask & ((delim_mask << 8) | carry)` with
//! `carry = delim_mask >> 56` flowing between words. Words containing no
//! field-start quote and no newline are consumed whole — several
//! delimiters per iteration via `count_ones` — which is where the ≥4x
//! positional-map build speedup comes from.
//!
//! Degenerate delimiters (`"`, `\n`, `\r`) would alias the structural
//! bytes the masks key on, so those configurations route to the scalar
//! reference implementations, which are also kept as the differential
//! oracle for the unit tests below.

use crate::swar::{eq_mask, find_byte, first_match, load, nth_match};

/// Tokenizer for one CSV dialect (a delimiter byte; quoting is RFC 4180).
#[derive(Debug, Clone, Copy)]
pub struct CsvTokenizer {
    delimiter: u8,
    /// Delimiter aliases a structural byte; word-at-a-time masks would
    /// misclassify it, so structure scans take the scalar reference path.
    degenerate: bool,
}

/// Flag bit of byte `k` in an exact SWAR mask.
#[inline(always)]
const fn flag(k: usize) -> u64 {
    0x80u64 << (8 * k)
}

/// Mask selecting the flags of bytes strictly before byte `k`.
#[inline(always)]
const fn flags_below(k: usize) -> u64 {
    flag(k) - 1
}

impl CsvTokenizer {
    pub fn new(delimiter: u8) -> Self {
        CsvTokenizer {
            delimiter,
            degenerate: matches!(delimiter, b'"' | b'\n' | b'\r'),
        }
    }

    pub fn delimiter(&self) -> u8 {
        self.delimiter
    }

    /// Index of the closing quote of a quoted field. `field[0]` must be
    /// `"`; doubled quotes (`""`) are RFC 4180 escapes for a literal quote
    /// and do not close the field. `None` when the field never closes.
    pub fn closing_quote(field: &[u8]) -> Option<usize> {
        debug_assert_eq!(field.first(), Some(&b'"'));
        let mut i = 1;
        loop {
            let q = i + find_byte(&field[i..], b'"')?;
            if field.get(q + 1) == Some(&b'"') {
                i = q + 2; // escaped literal quote, keep scanning
            } else {
                return Some(q);
            }
        }
    }

    /// Advance from `pos` (the first byte of a record) to just past the
    /// newline terminating it. A field that starts with `"` runs to its
    /// closing quote, so delimiters and newlines inside it are field
    /// content; an unterminated quoted field runs to end of data.
    pub fn record_end(&self, data: &[u8], pos: usize) -> usize {
        if self.degenerate {
            return self.record_end_scalar(data, pos);
        }
        let mut i = pos;
        while i + 8 <= data.len() {
            let w = load(data, i);
            let nm = eq_mask(w, b'\n');
            let qm = eq_mask(w, b'"');
            if qm == 0 {
                // Quote-free word: the first newline (if any) ends the
                // record; no field-start bookkeeping needed.
                if nm != 0 {
                    return i + first_match(nm) + 1;
                }
                i += 8;
                continue;
            }
            // A quote opens a field iff its predecessor is a delimiter
            // (in-word via the shifted mask) or the byte before the word —
            // checked directly: at the scan start the record begins at a
            // field start, and just past a closing quote `data[i - 1]` is
            // `"`, which correctly reads as mid-field.
            let dm = eq_mask(w, self.delimiter);
            let before = if i == pos || data[i - 1] == self.delimiter {
                flag(0)
            } else {
                0
            };
            let stop = nm | (qm & ((dm << 8) | before));
            if stop != 0 {
                let k = first_match(stop);
                if nm & flag(k) != 0 {
                    return i + k + 1;
                }
                // A quoted field opens at i + k: skip it whole, then
                // resume the word loop just past its closing quote.
                match Self::closing_quote(&data[i + k..]) {
                    Some(close) => {
                        i += k + close + 1;
                        continue;
                    }
                    None => return data.len(),
                }
            }
            i += 8;
        }
        let fs = i == pos || data[i - 1] == self.delimiter;
        self.record_end_tail(data, i, fs)
    }

    /// Scalar reference for [`CsvTokenizer::record_end`]: the original
    /// byte-at-a-time state machine. Used for degenerate delimiters and as
    /// the differential oracle in tests and benches.
    pub fn record_end_scalar(&self, data: &[u8], pos: usize) -> usize {
        self.record_end_tail(data, pos, true)
    }

    /// Emit the end offset of every record from `pos` (a record start) to
    /// the end of data — exactly the sequence repeated
    /// [`CsvTokenizer::record_end`] calls would produce, but in one scan
    /// that keeps the word pipeline running *across* records. This is the
    /// row-index (positional-map seed) build path: short rows never pay
    /// per-record setup, and words free of quotes skip the field-start
    /// bookkeeping entirely.
    pub fn scan_record_ends<F: FnMut(usize)>(&self, data: &[u8], pos: usize, emit: &mut F) {
        if self.degenerate {
            let mut p = pos;
            while p < data.len() {
                p = self.record_end_scalar(data, p);
                emit(p);
            }
            return;
        }
        // Last record end emitted so far: a final record without a
        // trailing newline still ends at end-of-data, even when the word
        // loop consumes it exactly.
        let mut last = pos;
        let mut i = pos;
        'words: while i + 8 <= data.len() {
            // Quote-free fast stride: two words per iteration, nothing but
            // newline extraction — the common case for machine-written CSV.
            while i + 16 <= data.len() {
                let w0 = load(data, i);
                let w1 = load(data, i + 8);
                if (eq_mask(w0, b'"') | eq_mask(w1, b'"')) != 0 {
                    break;
                }
                let mut m = eq_mask(w0, b'\n');
                while m != 0 {
                    last = i + first_match(m) + 1;
                    emit(last);
                    m &= m - 1;
                }
                m = eq_mask(w1, b'\n');
                while m != 0 {
                    last = i + 8 + first_match(m) + 1;
                    emit(last);
                    m &= m - 1;
                }
                i += 16;
            }
            if i + 8 > data.len() {
                break;
            }
            let w = load(data, i);
            let nm = eq_mask(w, b'\n');
            let qm = eq_mask(w, b'"');
            if qm == 0 {
                // Quote-free word: every newline is a record end.
                let mut m = nm;
                while m != 0 {
                    last = i + first_match(m) + 1;
                    emit(last);
                    m &= m - 1;
                }
                i += 8;
                continue;
            }
            // A quote opens a field iff its predecessor is a delimiter or a
            // newline (in-word via the shifted mask) or the byte before the
            // word (checked directly; a closing quote there leaves the
            // next byte mid-record, which this test correctly rejects).
            let fs = eq_mask(w, self.delimiter) | nm;
            let before = if i == pos || data[i - 1] == self.delimiter || data[i - 1] == b'\n' {
                flag(0)
            } else {
                0
            };
            let mut stop = nm | (qm & ((fs << 8) | before));
            while stop != 0 {
                let k = first_match(stop);
                stop &= stop - 1;
                if nm & flag(k) != 0 {
                    last = i + k + 1;
                    emit(last);
                } else {
                    // Skip the quoted field whole; flags beyond it belong
                    // to skipped content, so rescan from the new position.
                    match Self::closing_quote(&data[i + k..]) {
                        Some(close) => {
                            i += k + close + 1;
                            continue 'words;
                        }
                        None => {
                            emit(data.len());
                            return;
                        }
                    }
                }
            }
            i += 8;
        }
        while i < data.len() {
            let fs = i == pos || data[i - 1] == self.delimiter || data[i - 1] == b'\n';
            let end = self.record_end_tail(data, i, fs);
            last = end;
            emit(end);
            i = end;
        }
        if last < data.len() {
            emit(data.len());
        }
    }

    fn record_end_tail(&self, data: &[u8], mut pos: usize, mut field_start: bool) -> usize {
        while pos < data.len() {
            let b = data[pos];
            if field_start && b == b'"' {
                pos += match Self::closing_quote(&data[pos..]) {
                    Some(close) => close + 1,
                    None => return data.len(),
                };
                field_start = false;
                continue;
            }
            pos += 1;
            match b {
                b'\n' => return pos,
                d if d == self.delimiter => field_start = true,
                _ => field_start = false,
            }
        }
        pos
    }

    /// End of the field starting at `start` (exclusive), bounded by
    /// `row_end`.
    pub fn field_end(&self, data: &[u8], start: usize, row_end: usize) -> usize {
        if start < row_end && data[start] == b'"' {
            match Self::closing_quote(&data[start..row_end]) {
                Some(close) => (start + close + 1).min(row_end),
                None => row_end,
            }
        } else {
            match find_byte(&data[start..row_end], self.delimiter) {
                Some(d) => start + d,
                None => row_end,
            }
        }
    }

    /// Position of the next delimiter in `rest` (which begins at a field
    /// start), skipping over a quoted field, doubled-quote escapes
    /// included.
    pub fn find_delim(&self, rest: &[u8]) -> Option<usize> {
        if !rest.is_empty() && rest[0] == b'"' {
            let close = Self::closing_quote(rest)?;
            return find_byte(&rest[close..], self.delimiter).map(|d| close + d);
        }
        find_byte(rest, self.delimiter)
    }

    /// Advance from the field start `off` past `n` delimiters (i.e. to the
    /// start of the field `n` columns over), bounded by `row_end`.
    /// `Err(m)` reports that only `m < n` delimiters exist.
    ///
    /// Equivalent to `n` successive [`CsvTokenizer::find_delim`] hops, but
    /// words free of field-start quotes are consumed whole — every
    /// delimiter in a loaded word counts in one `count_ones` — which is
    /// what makes a cold positional-map build fast on wide rows.
    pub fn skip_fields(
        &self,
        data: &[u8],
        off: usize,
        row_end: usize,
        n: usize,
    ) -> std::result::Result<usize, usize> {
        if n == 0 {
            return Ok(off);
        }
        if self.degenerate {
            return self.skip_fields_scalar(data, off, row_end, n);
        }
        let mut i = off;
        let mut left = n;
        let mut carry = flag(0);
        while i + 8 <= row_end {
            let w = load(data, i);
            let dm = eq_mask(w, self.delimiter);
            let fsq = eq_mask(w, b'"') & ((dm << 8) | carry);
            if fsq != 0 {
                let k = first_match(fsq);
                // Count the delimiters strictly before the quoted field.
                let before = dm & flags_below(k);
                let cnt = before.count_ones() as usize;
                if cnt >= left {
                    return Ok(i + nth_match(before, (left - 1) as u32) + 1);
                }
                left -= cnt;
                // Skip the quoted field, then hop to the delimiter after it
                // (find_delim semantics: search from the closing quote on).
                let rest = &data[i + k..row_end];
                let Some(close) = Self::closing_quote(rest) else {
                    return Err(n - left);
                };
                let Some(d) = find_byte(&rest[close..], self.delimiter) else {
                    return Err(n - left);
                };
                i += k + close + d + 1;
                left -= 1;
                if left == 0 {
                    return Ok(i);
                }
                carry = flag(0); // i is a field start again
                continue;
            }
            let cnt = dm.count_ones() as usize;
            if cnt >= left {
                return Ok(i + nth_match(dm, (left - 1) as u32) + 1);
            }
            left -= cnt;
            carry = dm >> 56;
            i += 8;
        }
        // Scalar tail. `carry` says whether byte `i` sits at a field
        // start; if not, consume the remainder of the current field first.
        if carry == 0 {
            match find_byte(&data[i..row_end], self.delimiter) {
                Some(d) => {
                    i += d + 1;
                    left -= 1;
                    if left == 0 {
                        return Ok(i);
                    }
                }
                None => return Err(n - left),
            }
        }
        match self.skip_fields_scalar(data, i, row_end, left) {
            Ok(end) => Ok(end),
            Err(m) => Err(n - left + m),
        }
    }

    /// Scalar reference for [`CsvTokenizer::skip_fields`]: `n` successive
    /// [`CsvTokenizer::find_delim`] hops.
    pub fn skip_fields_scalar(
        &self,
        data: &[u8],
        mut off: usize,
        row_end: usize,
        n: usize,
    ) -> std::result::Result<usize, usize> {
        for done in 0..n {
            match self.find_delim(&data[off..row_end]) {
                Some(d) => off += d + 1,
                None => return Err(done),
            }
        }
        Ok(off)
    }

    /// Split one record into fields; delimiters inside a quoted field
    /// (doubled-quote escapes included) do not split.
    pub fn split_fields<'a>(&self, record: &'a [u8]) -> Vec<&'a [u8]> {
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut i = 0usize;
        while i < record.len() {
            if i == start && record[i] == b'"' {
                i += match Self::closing_quote(&record[i..]) {
                    Some(close) => close + 1,
                    None => record.len() - i,
                };
                continue;
            }
            match find_byte(&record[i..], self.delimiter) {
                Some(d) => {
                    out.push(&record[start..i + d]);
                    start = i + d + 1;
                    i = start;
                }
                None => break,
            }
        }
        out.push(&record[start..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for corpus generation (no RNG dependency).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    /// Adversarial corpus: quotes at and off field starts, doubled-quote
    /// escapes, embedded newlines/delimiters, CRLF, empty fields, words
    /// straddling 8-byte boundaries, unterminated quotes.
    fn corpus() -> Vec<Vec<u8>> {
        let mut cases: Vec<Vec<u8>> = [
            &b""[..],
            b"\n",
            b"a,b,c\n",
            b"1,64,0.5,geneva\n2,31,1.25,bern\n",
            b"a,\"b,c\",d\n",
            b"\"a\"\"b\",x\n",
            b"\"say \"\"hi\"\", ok\",y\n",
            b"\"\"\"\",z\n",
            b"1,\"line one\nline two\"\n2,flat\n",
            b"id,\"na\nme\"\n1,x\n",
            b"1,\"open\n",
            b"a,b\r\n1,2\r\n",
            b"1,\n,2\n",
            b",,,\n",
            b"\"q\"x,tail\n",
            b"no newline at all",
            b"aaaaaaa,bbbbbbbb,ccccccc\n",
            b"padpadpad\"not a field start\",x\n",
            b"\"esc at boundary aaaa\"\"bb\",x\n",
            b"x,\"\",y\n",
            b"\"\",\"\"\n",
        ]
        .iter()
        .map(|c| c.to_vec())
        .collect();
        // Random streams over a structural-heavy alphabet, many lengths so
        // every word/tail alignment is exercised.
        let mut rng = Rng(0xC0FFEE);
        let alphabet = b",\"\n\rabz01 ";
        for len in [1usize, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 200] {
            for _ in 0..8 {
                cases.push(
                    (0..len)
                        .map(|_| alphabet[(rng.next() % alphabet.len() as u64) as usize])
                        .collect(),
                );
            }
        }
        cases
    }

    #[test]
    fn record_end_matches_scalar_reference_on_corpus() {
        let tok = CsvTokenizer::new(b',');
        for data in corpus() {
            let mut pos = 0;
            while pos < data.len() {
                let fast = tok.record_end(&data, pos);
                let slow = tok.record_end_scalar(&data, pos);
                assert_eq!(
                    fast,
                    slow,
                    "data {:?} pos {pos}",
                    String::from_utf8_lossy(&data)
                );
                assert!(fast > pos, "must make progress");
                pos = slow;
            }
        }
    }

    #[test]
    fn scan_record_ends_matches_repeated_record_end_on_corpus() {
        for delim in [b',', b';', b'"'] {
            let tok = CsvTokenizer::new(delim);
            for data in corpus() {
                let mut expected = Vec::new();
                let mut pos = 0;
                while pos < data.len() {
                    pos = tok.record_end_scalar(&data, pos);
                    expected.push(pos);
                }
                let mut got = Vec::new();
                tok.scan_record_ends(&data, 0, &mut |end| got.push(end));
                assert_eq!(
                    got,
                    expected,
                    "delim {:?} data {:?}",
                    delim as char,
                    String::from_utf8_lossy(&data)
                );
            }
        }
    }

    #[test]
    fn skip_fields_matches_scalar_reference_on_corpus() {
        let tok = CsvTokenizer::new(b',');
        for data in corpus() {
            let mut pos = 0;
            while pos < data.len() {
                let end = tok.record_end_scalar(&data, pos);
                let mut row_end = end;
                while row_end > pos && matches!(data[row_end - 1], b'\n' | b'\r') {
                    row_end -= 1;
                }
                for n in 0..6 {
                    assert_eq!(
                        tok.skip_fields(&data, pos, row_end, n),
                        tok.skip_fields_scalar(&data, pos, row_end, n),
                        "data {:?} pos {pos} n {n}",
                        String::from_utf8_lossy(&data)
                    );
                }
                pos = end;
            }
        }
    }

    #[test]
    fn closing_quote_handles_escapes() {
        assert_eq!(CsvTokenizer::closing_quote(b"\"ab\""), Some(3));
        assert_eq!(CsvTokenizer::closing_quote(b"\"a\"\"b\",x"), Some(5));
        assert_eq!(CsvTokenizer::closing_quote(b"\"\"\"\""), Some(3));
        assert_eq!(CsvTokenizer::closing_quote(b"\"never"), None);
        assert_eq!(CsvTokenizer::closing_quote(b"\"\"\""), None); // escaped then open
                                                                  // An escape pair straddling the 8-byte word boundary.
        assert_eq!(CsvTokenizer::closing_quote(b"\"abcdef\"\"gh\""), Some(11));
    }

    #[test]
    fn record_end_skips_quoted_newlines() {
        let tok = CsvTokenizer::new(b',');
        let data = b"1,\"line one\nline two\"\n2,flat\n";
        assert_eq!(tok.record_end(data, 0), 22);
        assert_eq!(tok.record_end(data, 22), data.len());
    }

    #[test]
    fn record_end_quote_mid_field_is_ordinary() {
        // A quote that does not sit at a field start never opens a quoted
        // field; the first newline ends the record.
        let tok = CsvTokenizer::new(b',');
        let data = b"padpadpad\"not at field start\nnext\n";
        assert_eq!(tok.record_end(data, 0), 29);
    }

    #[test]
    fn skip_fields_reports_short_rows() {
        let tok = CsvTokenizer::new(b',');
        let data = b"1,2";
        assert_eq!(tok.skip_fields(data, 0, 3, 1), Ok(2));
        assert_eq!(tok.skip_fields(data, 0, 3, 2), Err(1));
        assert_eq!(tok.skip_fields(data, 0, 3, 5), Err(1));
        // Wide enough to engage the word loop before running short.
        let wide = b"a1,b2,c3,d4,e5,f6,g7,h8";
        assert_eq!(tok.skip_fields(wide, 0, wide.len(), 3), Ok(9));
        assert_eq!(tok.skip_fields(wide, 0, wide.len(), 9), Err(7));
    }

    #[test]
    fn split_fields_honors_quoting() {
        let tok = CsvTokenizer::new(b',');
        let fields = tok.split_fields(b"1,\"doe, jane\",x");
        assert_eq!(fields, vec![&b"1"[..], &b"\"doe, jane\""[..], &b"x"[..]]);
        let fields = tok.split_fields(b"\"a\"\"b\",y");
        assert_eq!(fields, vec![&b"\"a\"\"b\""[..], &b"y"[..]]);
        assert_eq!(tok.split_fields(b""), vec![&b""[..]]);
        assert_eq!(tok.split_fields(b",,"), vec![&b""[..]; 3]);
    }

    #[test]
    fn degenerate_delimiters_fall_back_to_scalar() {
        // A quote delimiter aliases the quoting machinery; the tokenizer
        // must still behave exactly like the scalar state machine.
        for delim in [b'"', b'\n', b'\r'] {
            let tok = CsvTokenizer::new(delim);
            for data in corpus() {
                let mut pos = 0;
                while pos < data.len() {
                    let end = tok.record_end(&data, pos);
                    assert_eq!(end, tok.record_end_scalar(&data, pos));
                    assert!(end > pos);
                    pos = end;
                }
            }
        }
    }

    #[test]
    fn semicolon_and_tab_dialects() {
        for delim in [b';', b'\t', b'|'] {
            let tok = CsvTokenizer::new(delim);
            let data: Vec<u8> = format!(
                "a{d}\"q{d}uoted\"{d}c\nlong second record 1{d}2{d}3\n",
                d = delim as char
            )
            .into_bytes();
            let mut pos = 0;
            while pos < data.len() {
                let fast = tok.record_end(&data, pos);
                assert_eq!(fast, tok.record_end_scalar(&data, pos));
                pos = fast;
            }
            assert_eq!(
                tok.skip_fields(&data, 0, tok.record_end(&data, 0) - 1, 2),
                tok.skip_fields_scalar(&data, 0, tok.record_end(&data, 0) - 1, 2)
            );
        }
    }
}
