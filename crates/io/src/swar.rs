//! SWAR ("SIMD within a register") byte scanning.
//!
//! Every scanner here loads 8 input bytes into a `u64` and compares all of
//! them against a broadcast needle at once, using only integer ops — no
//! `std::simd`, no intrinsics, no dependencies — so it runs at full speed
//! on stable Rust on every target.
//!
//! The core primitive is [`eq_mask`], which is **exact**: it returns a mask
//! with the high bit of byte `k` set iff byte `k` equals the needle, for
//! *every* byte of the word. (The classic `haszero` trick is only reliable
//! for the first match because its borrow propagates across bytes; the
//! masked-add formulation below has no cross-byte carries.) Exact masks are
//! what let the CSV tokenizer count several delimiters per loaded word and
//! detect quote-at-field-start positions with one AND.

/// `0x01` in every byte.
const LO: u64 = 0x0101_0101_0101_0101;
/// `0x80` in every byte.
const HI: u64 = 0x8080_8080_8080_8080;

/// The needle byte replicated into every byte of a word.
#[inline(always)]
pub const fn broadcast(b: u8) -> u64 {
    (b as u64) * LO
}

/// Exact per-byte equality mask: bit `8k + 7` is set iff byte `k` of `w`
/// equals `needle`. No false positives or negatives on any byte.
#[inline(always)]
pub const fn eq_mask(w: u64, needle: u8) -> u64 {
    let x = w ^ broadcast(needle); // zero bytes mark matches
                                   // High bit of byte k set iff byte k is nonzero: the add cannot carry
                                   // across bytes because the high bit is masked off first.
    let nonzero = ((x & !HI).wrapping_add(!HI) | x) & HI;
    !nonzero & HI
}

/// Byte index (0..8) of the lowest set flag in a nonzero [`eq_mask`].
#[inline(always)]
pub const fn first_match(mask: u64) -> usize {
    (mask.trailing_zeros() >> 3) as usize
}

/// Byte index of the `n`-th (0-based) set flag of `mask`; `mask` must have
/// more than `n` flags set.
#[inline(always)]
pub fn nth_match(mut mask: u64, n: u32) -> usize {
    let mut left = n;
    while left > 0 {
        mask &= mask - 1; // clear lowest flag
        left -= 1;
    }
    first_match(mask)
}

/// Load 8 little-endian bytes at `i` (caller guarantees `i + 8 <= len`).
#[inline(always)]
pub fn load(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte window"))
}

/// Position of the first occurrence of `needle` in `hay` (SWAR `memchr`).
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    let mut i = 0;
    while i + 8 <= hay.len() {
        let m = eq_mask(load(hay, i), needle);
        if m != 0 {
            return Some(i + first_match(m));
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Position of the first occurrence of either needle in `hay`.
#[inline]
pub fn find_byte2(hay: &[u8], a: u8, b: u8) -> Option<usize> {
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = load(hay, i);
        let m = eq_mask(w, a) | eq_mask(w, b);
        if m != 0 {
            return Some(i + first_match(m));
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == a || hay[i] == b {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Position of the first occurrence of any of three needles in `hay`.
#[inline]
pub fn find_byte3(hay: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = load(hay, i);
        let m = eq_mask(w, a) | eq_mask(w, b) | eq_mask(w, c);
        if m != 0 {
            return Some(i + first_match(m));
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == a || hay[i] == b || hay[i] == c {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic byte stream for cross-checking against the naive
    /// scalar scanners (xorshift — no external RNG).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn byte(&mut self, alphabet: &[u8]) -> u8 {
            alphabet[(self.next() % alphabet.len() as u64) as usize]
        }
    }

    #[test]
    fn eq_mask_is_exact_on_every_byte() {
        // Adversarial bytes for the haszero trick: 0x00, 0x01, 0x80, 0xFF
        // adjacent to matches must produce no spurious flags.
        for needle in [0u8, 0x01, 0x2C, 0x22, 0x80, 0xFF] {
            let bytes = [needle, 0x00, needle, 0x01, 0x80, needle, 0xFF, needle];
            let w = u64::from_le_bytes(bytes);
            let m = eq_mask(w, needle);
            for (k, &b) in bytes.iter().enumerate() {
                let flag = m & (0x80u64 << (8 * k)) != 0;
                assert_eq!(flag, b == needle, "needle {needle:#x} byte {k}");
            }
        }
    }

    #[test]
    fn first_and_nth_match_positions() {
        let w = u64::from_le_bytes(*b"a,b,,cd,");
        let m = eq_mask(w, b',');
        assert_eq!(first_match(m), 1);
        assert_eq!(nth_match(m, 0), 1);
        assert_eq!(nth_match(m, 1), 3);
        assert_eq!(nth_match(m, 2), 4);
        assert_eq!(nth_match(m, 3), 7);
        assert_eq!(m.count_ones(), 4);
    }

    #[test]
    fn find_byte_matches_naive_on_random_streams() {
        let mut rng = Lcg(0x5EED);
        let alphabet = b",\n\"ax0\x80\xFF";
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 31, 64, 257] {
            let hay: Vec<u8> = (0..len).map(|_| rng.byte(alphabet)).collect();
            for &needle in alphabet {
                assert_eq!(
                    find_byte(&hay, needle),
                    hay.iter().position(|&b| b == needle),
                    "len {len} needle {needle:#x}"
                );
            }
            assert_eq!(
                find_byte2(&hay, b'"', b'\\'),
                hay.iter().position(|&b| b == b'"' || b == b'\\')
            );
            assert_eq!(
                find_byte3(&hay, b'"', b'{', b'}'),
                hay.iter().position(|&b| matches!(b, b'"' | b'{' | b'}'))
            );
        }
    }

    #[test]
    fn find_byte_hits_every_offset_within_a_word() {
        for pos in 0..24 {
            let mut hay = vec![b'x'; 24];
            hay[pos] = b'\n';
            assert_eq!(find_byte(&hay, b'\n'), Some(pos));
        }
        assert_eq!(find_byte(&[b'x'; 24], b'\n'), None);
    }
}
