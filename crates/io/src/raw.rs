//! Raw input backing: memory-mapped files with an owned-buffer fallback.
//!
//! On unix targets [`RawData::open`] maps the file read-only with
//! `mmap(2)` so scan workers share one set of physical pages and a cold
//! open pays no up-front copy; the kernel pages data in as the scanners
//! walk it. Everywhere else — and whenever the map fails (pipes, special
//! files, zero-length files) — it falls back to reading the file into an
//! owned `Vec<u8>`, so callers never observe a difference beyond
//! [`RawData::is_mapped`].
//!
//! The syscalls are declared directly via `extern "C"`: libc is already
//! linked by `std` on unix, so this adds no dependency.

use std::fmt;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// How [`RawData::open_with`] should back the bytes of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapMode {
    /// Memory-map when the platform supports it, falling back to an owned
    /// read on any failure. The default.
    #[default]
    Auto,
    /// Always read into an owned buffer (the `--no-mmap` escape hatch).
    Never,
}

/// The bytes of one raw input, either borrowed from a shared file mapping
/// or held in an owned buffer. Derefs to `&[u8]`, so format code indexes
/// it exactly like the `Vec<u8>` it replaces.
pub enum RawData {
    /// Bytes copied into process-private memory.
    Owned(Vec<u8>),
    /// Bytes backed by a read-only, private file mapping.
    #[cfg(unix)]
    Mapped(Mmap),
}

impl RawData {
    /// Wrap an in-memory buffer (the `from_bytes` construction path).
    pub fn from_vec(data: Vec<u8>) -> Self {
        RawData::Owned(data)
    }

    /// Open `path` with the default [`MapMode::Auto`] policy.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with(path, MapMode::Auto)
    }

    /// Open `path` under an explicit backing policy.
    pub fn open_with(path: &Path, mode: MapMode) -> io::Result<Self> {
        #[cfg(unix)]
        if mode == MapMode::Auto {
            if let Ok(map) = Mmap::map(path) {
                return Ok(RawData::Mapped(map));
            }
            // Fall through: unmappable inputs (zero-length files report
            // EINVAL, pipes/sockets ENODEV) still open as owned buffers.
        }
        let _ = mode;
        std::fs::read(path).map(RawData::Owned)
    }

    /// Whether the bytes are backed by a file mapping.
    pub fn is_mapped(&self) -> bool {
        match self {
            RawData::Owned(_) => false,
            #[cfg(unix)]
            RawData::Mapped(_) => true,
        }
    }
}

impl Deref for RawData {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            RawData::Owned(v) => v,
            #[cfg(unix)]
            RawData::Mapped(m) => m.as_slice(),
        }
    }
}

impl AsRef<[u8]> for RawData {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for RawData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawData")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(unix)]
mod unix {
    use std::ffi::c_void;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    // libc is linked by std on unix; declaring the three calls we need
    // avoids adding a crate dependency.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MADV_WILLNEED: i32 = 3;

    /// A read-only, private memory mapping of a whole file.
    ///
    /// # Safety invariants
    ///
    /// `ptr` points at a live `len`-byte mapping created by `mmap` and is
    /// unmapped exactly once, in `Drop`. The mapping is `PROT_READ` +
    /// `MAP_PRIVATE`, so the pages are immutable from this process and
    /// safe to share across threads (`Send`/`Sync` below). Truncating the
    /// underlying file while mapped can still raise `SIGBUS` on access —
    /// the same contract every mmap'd reader accepts; inputs are treated
    /// as immutable for the lifetime of a query session.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned uniquely by this struct.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Map `path` read-only. Fails (letting the caller fall back to an
        /// owned read) for zero-length files — `mmap` with `len == 0` is
        /// `EINVAL` — and for any file the kernel refuses to map.
        pub fn map(path: &Path) -> io::Result<Self> {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map zero-length file",
                ));
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large"))?;
            // SAFETY: fd is a valid open file, len is its nonzero size;
            // a PROT_READ + MAP_PRIVATE mapping aliases no Rust memory.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            // Sequential scans benefit from read-ahead; purely advisory.
            // SAFETY: ptr/len describe the mapping created above.
            unsafe {
                let _ = madvise(ptr, len, MADV_WILLNEED);
            }
            Ok(Mmap { ptr, len })
        }

        #[inline]
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr is a live PROT_READ mapping of exactly len bytes
            // (struct invariant); the lifetime is tied to &self.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        #[inline]
        pub fn len(&self) -> usize {
            self.len
        }

        #[inline]
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // only here.
            unsafe {
                let _ = munmap(self.ptr, self.len);
            }
        }
    }
}
