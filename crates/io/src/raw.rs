//! Raw input backing: memory-mapped files with an owned-buffer fallback.
//!
//! On unix targets [`RawData::open`] maps the file read-only with
//! `mmap(2)` so scan workers share one set of physical pages and a cold
//! open pays no up-front copy; the kernel pages data in as the scanners
//! walk it. Everywhere else — and whenever the map fails (pipes, special
//! files, zero-length files) — it falls back to reading the file into an
//! owned `Vec<u8>`, so callers never observe a difference beyond
//! [`RawData::is_mapped`].
//!
//! The syscalls are declared directly via `extern "C"`: libc is already
//! linked by `std` on unix, so this adds no dependency.

use std::fmt;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// How [`RawData::open_with`] should back the bytes of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapMode {
    /// Memory-map when the platform supports it, falling back to an owned
    /// read on any failure. The default.
    #[default]
    Auto,
    /// Always read into an owned buffer (the `--no-mmap` escape hatch).
    Never,
}

/// The bytes of one raw input, either borrowed from a shared file mapping
/// or held in an owned buffer. Derefs to `&[u8]`, so format code indexes
/// it exactly like the `Vec<u8>` it replaces.
pub enum RawData {
    /// Bytes copied into process-private memory.
    Owned(Vec<u8>),
    /// Bytes backed by a read-only, private file mapping.
    #[cfg(unix)]
    Mapped(Mmap),
}

impl RawData {
    /// Wrap an in-memory buffer (the `from_bytes` construction path).
    pub fn from_vec(data: Vec<u8>) -> Self {
        RawData::Owned(data)
    }

    /// Open `path` with the default [`MapMode::Auto`] policy.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with(path, MapMode::Auto)
    }

    /// Open `path` under an explicit backing policy.
    pub fn open_with(path: &Path, mode: MapMode) -> io::Result<Self> {
        #[cfg(unix)]
        if mode == MapMode::Auto {
            if let Ok(map) = Mmap::map(path) {
                return Ok(RawData::Mapped(map));
            }
            // Fall through: unmappable inputs (zero-length files report
            // EINVAL, pipes/sockets ENODEV) still open as owned buffers.
        }
        let _ = mode;
        std::fs::read(path).map(RawData::Owned)
    }

    /// Whether the bytes are backed by a file mapping.
    pub fn is_mapped(&self) -> bool {
        match self {
            RawData::Owned(_) => false,
            #[cfg(unix)]
            RawData::Mapped(_) => true,
        }
    }
}

/// Stat-based change fingerprint of a file: `(byte length, mtime in
/// nanoseconds since the unix epoch)`.
///
/// Nanosecond precision matters: a same-length in-place rewrite lands
/// within one second of the original write on any real workload, so a
/// seconds-truncated mtime would produce an identical fingerprint and the
/// engine would keep serving replicas of the old bytes. Filesystems that
/// only store coarser mtimes degrade gracefully (the fingerprint is only
/// ever compared for equality).
pub fn file_fingerprint(path: &Path) -> io::Result<(u64, u64)> {
    let meta = std::fs::metadata(path)?;
    let mtime = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    Ok((meta.len(), mtime))
}

/// Number of boundary bytes [`prefix_matches`] compares on each side of
/// the old data (start and end) — enough to catch truncate-and-rewrite
/// cycles that happen to land on a larger size, cheap enough to run on
/// every revalidation.
pub const PREFIX_CHECK_BYTES: usize = 4096;

/// Cheap structural check that `old` is a byte-prefix of `new`: compares
/// the first and last [`PREFIX_CHECK_BYTES`] of `old` against `new` at the
/// same offsets instead of all `old.len()` bytes. Exact for files up to
/// twice the window; for larger files it is the growth heuristic the
/// incremental re-query path accepts — an in-place edit confined to the
/// uncompared middle *and* accompanied by an append is indistinguishable
/// from a pure append, exactly as with any sampled prefix check.
pub fn prefix_matches(old: &[u8], new: &[u8]) -> bool {
    if old.len() > new.len() {
        return false;
    }
    let k = PREFIX_CHECK_BYTES.min(old.len());
    old[..k] == new[..k] && old[old.len() - k..] == new[old.len() - k..old.len()]
}

impl Deref for RawData {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            RawData::Owned(v) => v,
            #[cfg(unix)]
            RawData::Mapped(m) => m.as_slice(),
        }
    }
}

impl AsRef<[u8]> for RawData {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for RawData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawData")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(unix)]
mod unix {
    use std::ffi::c_void;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    // libc is linked by std on unix; declaring the three calls we need
    // avoids adding a crate dependency.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MADV_WILLNEED: i32 = 3;

    /// A read-only, private memory mapping of a whole file.
    ///
    /// # Safety invariants
    ///
    /// `ptr` points at a live `len`-byte mapping created by `mmap` and is
    /// unmapped exactly once, in `Drop`. The mapping is `PROT_READ` +
    /// `MAP_PRIVATE`, so the pages are immutable from this process and
    /// safe to share across threads (`Send`/`Sync` below).
    ///
    /// # Truncation
    ///
    /// Touching a mapped page past the file's current EOF raises `SIGBUS`
    /// — the contract every mmap'd reader accepts. The engine handles it
    /// at the *revalidation* layer: every query description re-stats its
    /// inputs first ([`super::file_fingerprint`]), and a shrunk file makes
    /// the format plugin drop this mapping and reopen the file fresh
    /// (owned read fallback included) **before** any scan dereferences the
    /// old pages. A truncation racing the stat-then-scan window remains
    /// fatal, as it is for every mmap consumer; `MapMode::Never`
    /// (`--no-mmap`) removes the hazard entirely for hostile filesystems.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned uniquely by this struct.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Map `path` read-only. Fails (letting the caller fall back to an
        /// owned read) for zero-length files — `mmap` with `len == 0` is
        /// `EINVAL` — and for any file the kernel refuses to map.
        pub fn map(path: &Path) -> io::Result<Self> {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map zero-length file",
                ));
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large"))?;
            // SAFETY: fd is a valid open file, len is its nonzero size;
            // a PROT_READ + MAP_PRIVATE mapping aliases no Rust memory.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            // Sequential scans benefit from read-ahead; purely advisory.
            // SAFETY: ptr/len describe the mapping created above.
            unsafe {
                let _ = madvise(ptr, len, MADV_WILLNEED);
            }
            Ok(Mmap { ptr, len })
        }

        #[inline]
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr is a live PROT_READ mapping of exactly len bytes
            // (struct invariant); the lifetime is tied to &self.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        #[inline]
        pub fn len(&self) -> usize {
            self.len
        }

        #[inline]
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // only here.
            unsafe {
                let _ = munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_accepts_pure_appends() {
        let old = b"id,age\n1,70\n2,31\n".to_vec();
        let mut new = old.clone();
        new.extend_from_slice(b"3,45\n");
        assert!(prefix_matches(&old, &new));
        assert!(prefix_matches(&old, &old), "equal data is its own prefix");
        assert!(prefix_matches(b"", &old), "empty is a prefix of anything");
    }

    #[test]
    fn prefix_matches_rejects_edits_and_shrinks() {
        let old = b"id,age\n1,70\n2,31\n".to_vec();
        // Shrunk: old cannot be a prefix of something shorter.
        assert!(!prefix_matches(&old, &old[..5]));
        // Head edit within the window.
        let mut head = old.clone();
        head[0] = b'X';
        head.extend_from_slice(b"3,45\n");
        assert!(!prefix_matches(&old, &head));
        // Tail edit within the window.
        let mut tail = old.clone();
        let n = tail.len();
        tail[n - 2] = b'9';
        tail.extend_from_slice(b"3,45\n");
        assert!(!prefix_matches(&old, &tail));
    }

    #[test]
    fn file_fingerprint_tracks_length_and_mtime() {
        let dir = std::env::temp_dir().join(format!("vida-io-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.csv");
        std::fs::write(&path, b"a,b\n1,2\n").unwrap();
        let fp1 = file_fingerprint(&path).unwrap();
        assert_eq!(fp1.0, 8);
        // Same-length in-place rewrite, no sleep: length ties, so only a
        // sub-second mtime can tell the versions apart. The kernel's file
        // clock has coarse granularity (one tick, typically ≤10ms), so
        // rewrite until the stamp moves — still far inside one second,
        // which is the precision the fingerprint must beat.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut fp2 = fp1;
        while fp2 == fp1 && std::time::Instant::now() < deadline {
            std::fs::write(&path, b"a,b\n9,8\n").unwrap();
            fp2 = file_fingerprint(&path).unwrap();
        }
        assert_eq!(fp2.0, 8);
        assert_ne!(fp1, fp2, "nanosecond mtime must distinguish rewrites");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
