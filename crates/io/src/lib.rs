//! # vida-io
//!
//! The raw-data ingest substrate shared by every format plugin.
//!
//! The paper's premise (querying raw files in situ) makes cold-run parsing
//! and positional-structure construction the dominant cost, so the two
//! things this crate provides are exactly the two levers on that cost:
//!
//! - [`RawData`]: the bytes of an input file, memory-mapped when the
//!   platform allows it ([`raw`]). Plugins borrow `&[u8]` views of one
//!   shared mapping instead of copying files into private `Vec<u8>`
//!   buffers, so concurrent scan workers read the same pages and cold
//!   opens pay no up-front copy. An owned-buffer backing remains both the
//!   non-unix fallback and an explicit escape hatch ([`MapMode::Never`],
//!   surfaced as `--no-mmap` in the tooling).
//! - **SWAR scanners** ([`swar`]): word-at-a-time byte search built on
//!   `u64` broadcast-compare — no SIMD intrinsics, no dependencies, and
//!   exact per-byte match masks (not just first-match) so tokenizers can
//!   count several delimiters per loaded word.
//! - Format tokenizers built on those scanners: the quote-aware CSV
//!   tokenizer ([`csv::CsvTokenizer`] — RFC 4180 doubled quotes and
//!   embedded newlines preserved, quote state carried across words) and
//!   the JSON structural scanners ([`json`]) for `"` `\` `{}` `[]` and
//!   NDJSON record boundaries.
//!
//! A UTF-8 byte-order mark at the start of a text file is metadata, not
//! data; [`bom_len`] lets readers skip it uniformly.

pub mod csv;
pub mod json;
pub mod raw;
pub mod swar;

pub use csv::CsvTokenizer;
pub use raw::{file_fingerprint, prefix_matches, MapMode, RawData, PREFIX_CHECK_BYTES};

/// The UTF-8 byte-order mark some writers put at the start of text files.
pub const UTF8_BOM: [u8; 3] = [0xEF, 0xBB, 0xBF];

/// Length of the UTF-8 BOM prefix of `data` (3 if present, else 0).
///
/// Text readers start scanning at this offset so the BOM is never glued
/// onto the first CSV header name or the first JSON record.
#[inline]
pub fn bom_len(data: &[u8]) -> usize {
    if data.starts_with(&UTF8_BOM) {
        3
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bom_detection() {
        assert_eq!(bom_len(b"\xEF\xBB\xBFid,age"), 3);
        assert_eq!(bom_len(b"id,age"), 0);
        assert_eq!(bom_len(b""), 0);
        assert_eq!(bom_len(b"\xEF\xBB"), 0);
    }
}
