//! # vida-core
//!
//! Facade crate: one dependency pulling in the whole ViDa engine, with the
//! common types re-exported at the top level. Downstream code (benchmarks,
//! services, notebooks) can depend on `vida-core` alone and follow the
//! query lifecycle end to end:
//!
//! ```
//! use vida_core::{lower, parse, rewrite, run_jit, JitOptions, MemoryCatalog, Schema, Type, Value};
//!
//! let cat = MemoryCatalog::new();
//! cat.register_records(
//!     "Patients",
//!     Schema::from_pairs([("id", Type::Int), ("age", Type::Int)]),
//!     &[Value::record([("id", Value::Int(1)), ("age", Value::Int(71))])],
//! )
//! .unwrap();
//! let plan = rewrite(&lower(&parse("for { p <- Patients, p.age > 60 } yield count p").unwrap()).unwrap());
//! assert_eq!(run_jit(&plan, &cat, &JitOptions::default()).unwrap(), Value::Int(1));
//! ```

pub use vida_algebra::{execute_plan, lower, rewrite, Plan};
pub use vida_cache::{CacheKey, CacheManager, CacheStats, CachedData, Layout, TenantStats};
pub use vida_exec::{
    run_jit, run_jit_with_stats, run_volcano, Engine, ExecStats, JitOptions, MemoryCatalog,
    OutputFormat, Session, SourceProvider,
};
pub use vida_formats::{open_plugin, DataFormat, InputPlugin, SourceDescription};
pub use vida_jit::{CompiledKernel, FrameLayout, JitCompiler, SlotType};
pub use vida_lang::{eval, parse, typecheck, Bindings, Expr, TypeEnv};
pub use vida_optimizer::{CostModel, CostModelConfig, FieldObservation, Optimizer, Pass};
pub use vida_parallel::{MorselPlan, WorkerPool};
pub use vida_server::{QueryRequest, QueryServer, ServerConfig, ServerStats};
pub use vida_sql::sql_to_comprehension;
pub use vida_trace::{chrome_trace_json, global_metrics, MetricsRegistry, QueryTrace};
pub use vida_types::{Monoid, Result, Schema, Type, Value, VidaError};

/// Lower crates, for callers that need the full module paths.
pub use vida_algebra as algebra;
pub use vida_cache as cache;
pub use vida_exec as exec;
pub use vida_formats as formats;
pub use vida_jit as jit;
pub use vida_lang as lang;
pub use vida_optimizer as optimizer;
pub use vida_parallel as parallel;
pub use vida_server as server;
pub use vida_sql as sql;
pub use vida_trace as trace;
pub use vida_types as types;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_runs_the_full_lifecycle() {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("x", Type::Int)]),
            &[
                Value::record([("x", Value::Int(2))]),
                Value::record([("x", Value::Int(40))]),
            ],
        )
        .unwrap();
        let expr = parse("for { t <- T } yield sum t.x").unwrap();
        let plan = rewrite(&lower(&expr).unwrap());
        assert_eq!(
            run_jit(&plan, &cat, &JitOptions::default()).unwrap(),
            Value::Int(42)
        );
        assert_eq!(run_volcano(&plan, &cat).unwrap(), Value::Int(42));
    }

    #[test]
    fn facade_runs_parallel_pipelines() {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("x", Type::Int)]),
            &(0..100)
                .map(|i| Value::record([("x", Value::Int(i))]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let plan =
            rewrite(&lower(&parse("for { t <- T, t.x > 9 } yield sum t.x").unwrap()).unwrap());
        let serial = run_jit(&plan, &cat, &JitOptions::default()).unwrap();
        let parallel = run_jit(
            &plan,
            &cat,
            &JitOptions {
                threads: 4,
                clamp_threads: false, // force workers even on small machines
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn facade_exposes_the_cost_model() {
        use std::sync::Arc;
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("x", Type::Int)]),
            &[Value::record([("x", Value::Int(7))])],
        )
        .unwrap();
        let cache = Arc::new(CacheManager::new(1 << 20));
        let model = Arc::new(CostModel::new());
        let opts = JitOptions::with_cost_model(Arc::clone(&cache), Arc::clone(&model));
        let plan = rewrite(&lower(&parse("for { t <- T } yield sum t.x").unwrap()).unwrap());
        run_jit(&plan, &cat, &opts).unwrap();
        assert_eq!(model.profile("T", "x").unwrap().touches, 1);
        assert!(!cache.layout_counts().is_empty());
    }

    #[test]
    fn facade_runs_a_resident_engine() {
        use std::sync::Arc;
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("x", Type::Int)]),
            &[
                Value::record([("x", Value::Int(2))]),
                Value::record([("x", Value::Int(40))]),
            ],
        )
        .unwrap();
        let engine = Engine::new(Arc::new(cat), JitOptions::default());
        let plan = rewrite(&lower(&parse("for { t <- T } yield sum t.x").unwrap()).unwrap());
        let mut session = engine.session();
        assert_eq!(session.execute(&plan).unwrap(), Value::Int(42));
        assert_eq!(engine.execute(&plan).unwrap(), Value::Int(42));
        assert_eq!(engine.stats().queries, 2);
    }

    #[test]
    fn facade_translates_sql() {
        let expr = sql_to_comprehension("SELECT COUNT(*) FROM T t WHERE t.x > 1").unwrap();
        assert!(matches!(expr, Expr::Comprehension { .. }));
    }
}
