//! Portable compilation of scalar expressions (the default backend).
//!
//! [`JitCompiler::compile`] turns a calculus expression over a
//! [`FrameLayout`] into a *fused kernel*: a tree of monomorphic closures
//! specialized at compile time to the slot types the expression touches.
//! All type dispatch, slot resolution, and string interning happen once,
//! at compilation — the per-tuple call path contains no type tags, no hash
//! lookups, and allocates nothing, which is the §4.1 property the paper's
//! LLVM backend provides. (A true native-code backend using Cranelift lives
//! in `compile_cranelift.rs` behind the `cranelift` feature; it exposes the
//! identical API and is used when the cranelift crates are vendored.)
//!
//! The compilable subset is pure and total (no division, no collection
//! operations). Expressions outside it return `None` from
//! [`JitCompiler::try_prepare`] and stay interpreted. Kernel semantics match
//! native code, not the interpreter: integer arithmetic wraps rather than
//! erroring on overflow, and floats use IEEE comparison (ordered, so
//! `NaN != NaN`).

use crate::frame::{FrameLayout, SlotType, StringInterner};
use std::sync::Arc;
use vida_lang::{BinOp, Expr, UnOp};
use vida_types::{Result, Value, VidaError};

/// Declared output encoding of a compiled kernel.
pub type KernelOutput = SlotType;

/// One fused scalar kernel: `fn(&[i64]) -> i64` over a frame laid out
/// according to the [`FrameLayout`] it was compiled against.
type Kern = Box<dyn Fn(&[i64]) -> i64 + Send + Sync>;

/// A finalized kernel. Cheap to clone and safe to call from any thread.
#[derive(Clone)]
pub struct CompiledKernel {
    func: Arc<Kern>,
    output: KernelOutput,
    id: u32,
}

impl CompiledKernel {
    /// Id of a kernel that was never tagged with [`CompiledKernel::with_id`].
    /// Trace consumers skip it — only pipeline-owned kernels get dense ids.
    pub const UNASSIGNED: u32 = u32::MAX;

    /// Tag this kernel with a query-dense id (assigned at compile time by
    /// the pipeline builder; the hook per-kernel invocation counts key on).
    pub fn with_id(mut self, id: u32) -> Self {
        self.id = id;
        self
    }

    /// The kernel's id, or [`CompiledKernel::UNASSIGNED`].
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Run the kernel over a frame. The frame must match the layout the
    /// kernel was compiled against.
    #[inline]
    pub fn call(&self, frame: &[i64]) -> i64 {
        (self.func)(frame)
    }

    /// Run a boolean kernel over a frame (`0` = false, anything else true).
    #[inline]
    pub fn call_bool(&self, frame: &[i64]) -> bool {
        self.call(frame) != 0
    }

    /// Run and decode into a [`Value`].
    pub fn call_value(&self, frame: &[i64]) -> Value {
        crate::frame::decode_output(self.call(frame), self.output)
    }

    pub fn output(&self) -> KernelOutput {
        self.output
    }
}

/// A fused select stage for push pipelines: the conjunction of compiled
/// boolean kernels, evaluated short-circuit over one frame.
///
/// This is the kernel-level form of a filter chain in streaming execution:
/// instead of producing a boolean column (or a filtered tuple vector) per
/// predicate, the stage decides per frame and the caller forwards
/// survivors straight into the next stage's sink — no intermediate
/// materialization.
#[derive(Clone)]
pub struct SelectKernel {
    preds: Vec<CompiledKernel>,
}

impl SelectKernel {
    /// Fuse `preds` (each a boolean kernel) into one select stage.
    pub fn new(preds: Vec<CompiledKernel>) -> Self {
        debug_assert!(preds.iter().all(|k| k.output() == SlotType::Bool));
        SelectKernel { preds }
    }

    /// Fuse `preds` evaluating in `order` (a permutation of `0..preds.len()`
    /// ranked by the plan optimizer: cheapest-and-most-selective first).
    /// Compiled predicate kernels are pure and total, so any evaluation
    /// order admits exactly the same frames; only the short-circuit point
    /// moves.
    pub fn with_order(preds: Vec<CompiledKernel>, order: &[usize]) -> Self {
        debug_assert_eq!(order.len(), preds.len());
        debug_assert!({
            let mut seen = vec![false; preds.len()];
            order
                .iter()
                .all(|&i| i < seen.len() && !std::mem::replace(&mut seen[i], true))
        });
        let preds = order.iter().map(|&i| preds[i].clone()).collect();
        SelectKernel::new(preds)
    }

    /// Number of fused predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Does `frame` satisfy every predicate? Short-circuits on the first
    /// failure, like the chained serial selects it replaces.
    #[inline]
    pub fn admit(&self, frame: &[i64]) -> bool {
        self.preds.iter().all(|k| k.call_bool(frame))
    }

    /// Ids of the fused predicate kernels, in evaluation order.
    pub fn kernel_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.preds.iter().map(CompiledKernel::id)
    }
}

/// Per-query compiler.
///
/// The portable backend is stateless, but the constructor stays fallible and
/// the `compile` call consuming for API parity with the Cranelift backend
/// (which owns a JIT module per query).
pub struct JitCompiler {
    _private: (),
}

impl JitCompiler {
    pub fn new() -> Result<Self> {
        Ok(JitCompiler { _private: () })
    }

    /// Static check + output type inference: can `expr` compile against
    /// `layout`? Returns the output slot type if yes.
    pub fn try_prepare(expr: &Expr, layout: &FrameLayout) -> Option<SlotType> {
        infer(expr, layout)
    }

    /// Compile `expr`. String constants are interned through `interner` —
    /// the same interner the frame builder uses at runtime.
    pub fn compile(
        self,
        expr: &Expr,
        layout: &FrameLayout,
        interner: &mut StringInterner,
    ) -> Result<CompiledKernel> {
        let output = infer(expr, layout)
            .ok_or_else(|| VidaError::Codegen(format!("expression not compilable: {expr}")))?;
        let (func, ty) = emit(expr, layout, interner)?;
        debug_assert_eq!(ty, output);
        Ok(CompiledKernel {
            func: Arc::new(func),
            output,
            id: CompiledKernel::UNASSIGNED,
        })
    }
}

/// Output type inference over the compilable subset; `None` = fallback to
/// the interpreter.
fn infer(expr: &Expr, layout: &FrameLayout) -> Option<SlotType> {
    match expr {
        Expr::Const(Value::Int(_)) => Some(SlotType::Int),
        Expr::Const(Value::Float(_)) => Some(SlotType::Float),
        Expr::Const(Value::Bool(_)) => Some(SlotType::Bool),
        Expr::Const(Value::Str(_)) => Some(SlotType::Str),
        Expr::Var(_) | Expr::Proj(..) => {
            let path = path_of(expr)?;
            layout.lookup(&path).map(|(_, t)| t)
        }
        Expr::BinOp(op, l, r) => {
            let lt = infer(l, layout)?;
            let rt = infer(r, layout)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul => match (lt, rt) {
                    (SlotType::Int, SlotType::Int) => Some(SlotType::Int),
                    (SlotType::Int | SlotType::Float, SlotType::Int | SlotType::Float) => {
                        Some(SlotType::Float)
                    }
                    _ => None,
                },
                // Division/modulo keep interpreter error semantics.
                BinOp::Div | BinOp::Mod => None,
                BinOp::Eq | BinOp::Ne => match (lt, rt) {
                    (SlotType::Str, SlotType::Str) => Some(SlotType::Bool),
                    (SlotType::Bool, SlotType::Bool) => Some(SlotType::Bool),
                    (SlotType::Int | SlotType::Float, SlotType::Int | SlotType::Float) => {
                        Some(SlotType::Bool)
                    }
                    _ => None,
                },
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (lt, rt) {
                    (SlotType::Int | SlotType::Float, SlotType::Int | SlotType::Float) => {
                        Some(SlotType::Bool)
                    }
                    _ => None, // string ordering stays interpreted
                },
                BinOp::And | BinOp::Or => {
                    if lt == SlotType::Bool && rt == SlotType::Bool {
                        Some(SlotType::Bool)
                    } else {
                        None
                    }
                }
            }
        }
        Expr::UnOp(UnOp::Not, e) => (infer(e, layout)? == SlotType::Bool).then_some(SlotType::Bool),
        Expr::UnOp(UnOp::Neg, e) => match infer(e, layout)? {
            SlotType::Int => Some(SlotType::Int),
            SlotType::Float => Some(SlotType::Float),
            _ => None,
        },
        Expr::If(c, t, f) => {
            if infer(c, layout)? != SlotType::Bool {
                return None;
            }
            let tt = infer(t, layout)?;
            let ft = infer(f, layout)?;
            match (tt, ft) {
                (a, b) if a == b => Some(a),
                (SlotType::Int, SlotType::Float) | (SlotType::Float, SlotType::Int) => {
                    Some(SlotType::Float)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Dotted path string of a variable/projection chain (`p.age`).
pub fn path_of(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Var(v) => Some(v.clone()),
        Expr::Proj(e, f) => Some(format!("{}.{f}", path_of(e)?)),
        _ => None,
    }
}

#[inline]
fn bits(x: f64) -> i64 {
    x.to_bits() as i64
}

#[inline]
fn fval(b: i64) -> f64 {
    f64::from_bits(b as u64)
}

/// Widen a kernel to produce float bits regardless of its numeric type.
fn as_float(k: Kern, ty: SlotType) -> Kern {
    match ty {
        SlotType::Int => Box::new(move |f| bits(k(f) as f64)),
        _ => k,
    }
}

fn emit(
    expr: &Expr,
    layout: &FrameLayout,
    interner: &mut StringInterner,
) -> Result<(Kern, SlotType)> {
    match expr {
        Expr::Const(Value::Int(i)) => {
            let i = *i;
            Ok((Box::new(move |_| i), SlotType::Int))
        }
        Expr::Const(Value::Float(x)) => {
            let b = bits(*x);
            Ok((Box::new(move |_| b), SlotType::Float))
        }
        Expr::Const(Value::Bool(b)) => {
            let b = *b as i64;
            Ok((Box::new(move |_| b), SlotType::Bool))
        }
        Expr::Const(Value::Str(s)) => {
            let id = interner.intern(s);
            Ok((Box::new(move |_| id), SlotType::Str))
        }
        Expr::Var(_) | Expr::Proj(..) => {
            let path =
                path_of(expr).ok_or_else(|| VidaError::Codegen(format!("bad path {expr}")))?;
            let (slot, ty) = layout
                .lookup(&path)
                .ok_or_else(|| VidaError::Codegen(format!("path '{path}' not in frame layout")))?;
            Ok((Box::new(move |f: &[i64]| f[slot]), ty))
        }
        Expr::BinOp(op, l, r) => {
            let (lk, lt) = emit(l, layout, interner)?;
            let (rk, rt) = emit(r, layout, interner)?;
            emit_binop(*op, lk, lt, rk, rt)
        }
        Expr::UnOp(UnOp::Not, e) => {
            let (k, _) = emit(e, layout, interner)?;
            Ok((Box::new(move |f| k(f) ^ 1), SlotType::Bool))
        }
        Expr::UnOp(UnOp::Neg, e) => {
            let (k, t) = emit(e, layout, interner)?;
            Ok(match t {
                SlotType::Float => (
                    Box::new(move |f: &[i64]| bits(-fval(k(f)))) as Kern,
                    SlotType::Float,
                ),
                _ => (Box::new(move |f| k(f).wrapping_neg()), SlotType::Int),
            })
        }
        Expr::If(c, t, f) => {
            let (ck, _) = emit(c, layout, interner)?;
            let (tk, tt) = emit(t, layout, interner)?;
            let (fk, ft) = emit(f, layout, interner)?;
            // Unify numeric branches.
            let (tk, fk, ty) = match (tt, ft) {
                (a, b) if a == b => (tk, fk, a),
                (SlotType::Int, SlotType::Float) => {
                    (as_float(tk, SlotType::Int), fk, SlotType::Float)
                }
                (SlotType::Float, SlotType::Int) => {
                    (tk, as_float(fk, SlotType::Int), SlotType::Float)
                }
                _ => {
                    return Err(VidaError::Codegen(
                        "if branches with incompatible slot types".into(),
                    ))
                }
            };
            Ok((
                Box::new(move |f| if ck(f) != 0 { tk(f) } else { fk(f) }),
                ty,
            ))
        }
        other => Err(VidaError::Codegen(format!("not compilable: {other}"))),
    }
}

fn emit_binop(
    op: BinOp,
    lk: Kern,
    lt: SlotType,
    rk: Kern,
    rt: SlotType,
) -> Result<(Kern, SlotType)> {
    let both_int = lt == SlotType::Int && rt == SlotType::Int;
    let numeric = |t: SlotType| matches!(t, SlotType::Int | SlotType::Float);
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            if both_int {
                let k: Kern = match op {
                    BinOp::Add => Box::new(move |f| lk(f).wrapping_add(rk(f))),
                    BinOp::Sub => Box::new(move |f| lk(f).wrapping_sub(rk(f))),
                    _ => Box::new(move |f| lk(f).wrapping_mul(rk(f))),
                };
                Ok((k, SlotType::Int))
            } else {
                let a = as_float(lk, lt);
                let b = as_float(rk, rt);
                let k: Kern = match op {
                    BinOp::Add => Box::new(move |f| bits(fval(a(f)) + fval(b(f)))),
                    BinOp::Sub => Box::new(move |f| bits(fval(a(f)) - fval(b(f)))),
                    _ => Box::new(move |f| bits(fval(a(f)) * fval(b(f)))),
                };
                Ok((k, SlotType::Float))
            }
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let k: Kern = if numeric(lt) && numeric(rt) && !both_int {
                let a = as_float(lk, lt);
                let b = as_float(rk, rt);
                match op {
                    BinOp::Eq => Box::new(move |f| (fval(a(f)) == fval(b(f))) as i64),
                    BinOp::Ne => Box::new(move |f| (fval(a(f)) != fval(b(f))) as i64),
                    BinOp::Lt => Box::new(move |f| (fval(a(f)) < fval(b(f))) as i64),
                    BinOp::Le => Box::new(move |f| (fval(a(f)) <= fval(b(f))) as i64),
                    BinOp::Gt => Box::new(move |f| (fval(a(f)) > fval(b(f))) as i64),
                    _ => Box::new(move |f| (fval(a(f)) >= fval(b(f))) as i64),
                }
            } else {
                // Ints, interned strings (eq/ne only), bools.
                match op {
                    BinOp::Eq => Box::new(move |f| (lk(f) == rk(f)) as i64),
                    BinOp::Ne => Box::new(move |f| (lk(f) != rk(f)) as i64),
                    BinOp::Lt => Box::new(move |f| (lk(f) < rk(f)) as i64),
                    BinOp::Le => Box::new(move |f| (lk(f) <= rk(f)) as i64),
                    BinOp::Gt => Box::new(move |f| (lk(f) > rk(f)) as i64),
                    _ => Box::new(move |f| (lk(f) >= rk(f)) as i64),
                }
            };
            Ok((k, SlotType::Bool))
        }
        BinOp::And => Ok((Box::new(move |f| lk(f) & rk(f)), SlotType::Bool)),
        BinOp::Or => Ok((Box::new(move |f| lk(f) | rk(f)), SlotType::Bool)),
        BinOp::Div | BinOp::Mod => Err(VidaError::Codegen(
            "division stays on the interpreted path".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_lang::parse;

    /// Compile `expr` against a layout derived from `slots`, run on `frame`
    /// values, return the decoded result.
    fn run(src: &str, slots: &[(&str, SlotType)], values: &[Value]) -> Value {
        let mut layout = FrameLayout::new();
        for (p, t) in slots {
            layout.slot(*p, *t);
        }
        let mut interner = StringInterner::new();
        let expr = parse(src).unwrap();
        let kernel = JitCompiler::new()
            .unwrap()
            .compile(&expr, &layout, &mut interner)
            .unwrap();
        // Build the frame with the same interner.
        let mut fb = crate::frame::FrameBuilder::new(layout);
        std::mem::swap(fb.interner_mut(), &mut interner);
        let frame = fb.build(&values.iter().collect::<Vec<_>>()).unwrap();
        kernel.call_value(&frame)
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(
            run(
                "x + y * 2",
                &[("x", SlotType::Int), ("y", SlotType::Int)],
                &[Value::Int(3), Value::Int(4)]
            ),
            Value::Int(11)
        );
        assert_eq!(
            run("-(x - 1)", &[("x", SlotType::Int)], &[Value::Int(5)]),
            Value::Int(-4)
        );
    }

    #[test]
    fn float_arithmetic_and_promotion() {
        assert_eq!(
            run(
                "x + y",
                &[("x", SlotType::Float), ("y", SlotType::Int)],
                &[Value::Float(1.5), Value::Int(2)]
            ),
            Value::Float(3.5)
        );
        assert_eq!(
            run("x * 0.5", &[("x", SlotType::Float)], &[Value::Float(5.0)]),
            Value::Float(2.5)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            run("x > 40", &[("x", SlotType::Int)], &[Value::Int(45)]),
            Value::Bool(true)
        );
        assert_eq!(
            run("x <= 2.5", &[("x", SlotType::Float)], &[Value::Float(2.5)]),
            Value::Bool(true)
        );
        assert_eq!(
            run(
                "x != y",
                &[("x", SlotType::Int), ("y", SlotType::Float)],
                &[Value::Int(2), Value::Float(2.0)]
            ),
            Value::Bool(false)
        );
    }

    #[test]
    fn projection_paths() {
        assert_eq!(
            run(
                "p.age > 60 and g.v < 0.5",
                &[("p.age", SlotType::Int), ("g.v", SlotType::Float)],
                &[Value::Int(70), Value::Float(0.25)]
            ),
            Value::Bool(true)
        );
    }

    #[test]
    fn boolean_connectives_and_not() {
        assert_eq!(
            run(
                "not (a and b) or b",
                &[("a", SlotType::Bool), ("b", SlotType::Bool)],
                &[Value::Bool(true), Value::Bool(false)]
            ),
            Value::Bool(true)
        );
    }

    #[test]
    fn string_equality_via_interning() {
        assert_eq!(
            run("s = \"HR\"", &[("s", SlotType::Str)], &[Value::str("HR")]),
            Value::Bool(true)
        );
        assert_eq!(
            run("s != \"HR\"", &[("s", SlotType::Str)], &[Value::str("Eng")]),
            Value::Bool(true)
        );
    }

    #[test]
    fn if_select() {
        assert_eq!(
            run(
                "if x > 0 then x else -x",
                &[("x", SlotType::Int)],
                &[Value::Int(-7)]
            ),
            Value::Int(7)
        );
        // Mixed branches widen to float.
        assert_eq!(
            run(
                "if x > 0 then 1 else 0.5",
                &[("x", SlotType::Int)],
                &[Value::Int(3)]
            ),
            Value::Float(1.0)
        );
    }

    #[test]
    fn non_compilable_expressions_rejected() {
        let mut layout = FrameLayout::new();
        layout.slot("x", SlotType::Int);
        layout.slot("s", SlotType::Str);
        for src in [
            "x / 2",                       // division semantics
            "x % 2",                       // modulo
            "s < \"a\"",                   // string ordering
            "for { y <- xs } yield sum y", // comprehension
            "y + 1",                       // unknown path
        ] {
            let e = parse(src).unwrap();
            assert!(
                JitCompiler::try_prepare(&e, &layout).is_none(),
                "{src} should not be compilable"
            );
        }
    }

    #[test]
    fn kernel_matches_interpreter_on_sweep() {
        // Differential test against the calculus interpreter.
        use vida_lang::{eval, Bindings};
        let exprs = [
            "x * 3 - y",
            "x > y",
            "x >= y and x - y < 10",
            "if x = y then x + 1 else y - 1",
            "not (x < y) or x = 0",
        ];
        for src in exprs {
            let expr = parse(src).unwrap();
            let mut layout = FrameLayout::new();
            layout.slot("x", SlotType::Int);
            layout.slot("y", SlotType::Int);
            let mut interner = StringInterner::new();
            let kernel = JitCompiler::new()
                .unwrap()
                .compile(&expr, &layout, &mut interner)
                .unwrap();
            for x in [-3i64, 0, 1, 7, 100] {
                for y in [-2i64, 0, 7, 50] {
                    let frame = [x, y];
                    let jit = kernel.call_value(&frame);
                    let mut env = Bindings::new();
                    env.insert("x".into(), Value::Int(x));
                    env.insert("y".into(), Value::Int(y));
                    let interp = eval(&expr, &env).unwrap();
                    assert!(
                        jit.sem_eq(&interp),
                        "{src} at x={x}, y={y}: jit={jit}, interp={interp}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_kernel_fuses_predicate_chain() {
        let mut layout = FrameLayout::new();
        layout.slot("x", SlotType::Int);
        layout.slot("y", SlotType::Int);
        let mut interner = StringInterner::new();
        let compile = |src: &str, interner: &mut StringInterner| {
            JitCompiler::new()
                .unwrap()
                .compile(&parse(src).unwrap(), &layout, interner)
                .unwrap()
        };
        let stage = SelectKernel::new(vec![
            compile("x > 2", &mut interner),
            compile("y < 10", &mut interner),
            compile("x != y", &mut interner),
        ]);
        assert_eq!(stage.len(), 3);
        assert!(!stage.is_empty());
        assert!(stage.admit(&[5, 3]));
        assert!(!stage.admit(&[1, 3])); // fails first predicate
        assert!(!stage.admit(&[5, 11])); // fails second
        assert!(!stage.admit(&[5, 5])); // fails third
                                        // An empty stage admits everything (no selects on the scan).
        assert!(SelectKernel::new(Vec::new()).admit(&[0, 0]));
        // call_bool is the predicate form of call.
        let pred = compile("x > 2", &mut interner);
        assert!(pred.call_bool(&[3, 0]));
        assert!(!pred.call_bool(&[2, 0]));
    }

    #[test]
    fn select_kernel_with_order_admits_identically() {
        let mut layout = FrameLayout::new();
        layout.slot("x", SlotType::Int);
        layout.slot("y", SlotType::Int);
        let mut interner = StringInterner::new();
        let compile = |src: &str, interner: &mut StringInterner| {
            JitCompiler::new()
                .unwrap()
                .compile(&parse(src).unwrap(), &layout, interner)
                .unwrap()
        };
        let preds = vec![
            compile("x > 2", &mut interner),
            compile("y < 10", &mut interner),
            compile("x != y", &mut interner),
        ];
        let syntactic = SelectKernel::new(preds.clone());
        let reordered = SelectKernel::with_order(preds, &[2, 0, 1]);
        assert_eq!(reordered.len(), 3);
        // Evaluation order follows the permutation (observable via ids)...
        let ids: Vec<u32> = syntactic.kernel_ids().collect();
        let got: Vec<u32> = reordered.kernel_ids().collect();
        assert_eq!(got, vec![ids[2], ids[0], ids[1]]);
        // ...but admission is identical on every frame: the kernels are
        // pure and total, so only the short-circuit point moves.
        for x in -2..12 {
            for y in -2..12 {
                assert_eq!(
                    syntactic.admit(&[x, y]),
                    reordered.admit(&[x, y]),
                    "x={x} y={y}"
                );
            }
        }
        // Identity permutation is a no-op.
        let same = SelectKernel::with_order(vec![compile("x > 2", &mut interner)], &[0]);
        assert!(same.admit(&[3, 0]) && !same.admit(&[2, 0]));
    }

    #[test]
    fn kernels_are_send_and_reusable() {
        let mut layout = FrameLayout::new();
        layout.slot("x", SlotType::Int);
        let mut interner = StringInterner::new();
        let kernel = JitCompiler::new()
            .unwrap()
            .compile(&parse("x + 1").unwrap(), &layout, &mut interner)
            .unwrap();
        let k2 = kernel.clone();
        let h = std::thread::spawn(move || k2.call(&[41]));
        assert_eq!(h.join().unwrap(), 42);
        assert_eq!(kernel.call(&[1]), 2);
    }
}
