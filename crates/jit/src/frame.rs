//! Register frames: the flat, typed view of a tuple that compiled kernels
//! read.
//!
//! "Data bindings retrieved from each 'tuple' of a raw file are placed in
//! CPU registers and are kept there for the majority of a query's processing
//! steps" (§4.1). A [`FrameLayout`] assigns one 64-bit slot to each scalar
//! *path* (`p.age`, `g.id`, or a bare variable) the query needs; the
//! executor fills a `[i64]` frame per tuple and the kernel indexes it
//! directly.
//!
//! Slot encodings: `Int` → the value; `Float` → IEEE bits; `Bool` → 0/1;
//! `Str` → an id from the session [`StringInterner`]. A tuple containing
//! `null` (or a non-scalar) in any needed slot does not produce a frame —
//! the caller routes that tuple through the interpreted fallback so
//! null-propagation semantics stay exact.

use std::collections::HashMap;
use vida_types::{Type, Value};

/// Static type of one frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotType {
    Int,
    Float,
    Bool,
    /// Interned string id (supports equality only).
    Str,
}

impl SlotType {
    /// Slot type for a scalar ViDa type, if representable.
    pub fn of_type(t: &Type) -> Option<SlotType> {
        match t {
            Type::Int => Some(SlotType::Int),
            Type::Float => Some(SlotType::Float),
            Type::Bool => Some(SlotType::Bool),
            Type::Str => Some(SlotType::Str),
            _ => None,
        }
    }
}

/// Maps scalar paths to slot indexes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameLayout {
    slots: Vec<(String, SlotType)>,
    index: HashMap<String, usize>,
}

impl FrameLayout {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or find) a slot for `path`. Returns its index. Adding an
    /// existing path with a different type widens Int→Float and otherwise
    /// keeps the first type (callers resolve types beforehand).
    pub fn slot(&mut self, path: impl Into<String>, ty: SlotType) -> usize {
        let path = path.into();
        if let Some(&i) = self.index.get(&path) {
            if self.slots[i].1 == SlotType::Int && ty == SlotType::Float {
                self.slots[i].1 = SlotType::Float;
            }
            return i;
        }
        let i = self.slots.len();
        self.slots.push((path.clone(), ty));
        self.index.insert(path, i);
        i
    }

    pub fn lookup(&self, path: &str) -> Option<(usize, SlotType)> {
        self.index.get(path).map(|&i| (i, self.slots[i].1))
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn slots(&self) -> &[(String, SlotType)] {
        &self.slots
    }
}

/// Session-scoped string interner. Ids are dense and stable for the life of
/// the interner, so equal strings always get equal ids — which is all the
/// compiled `=`/`!=` on strings needs.
#[derive(Debug, Default)]
pub struct StringInterner {
    map: HashMap<String, i64>,
    names: Vec<String>,
}

impl StringInterner {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn intern(&mut self, s: &str) -> i64 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.map.len() as i64;
        self.map.insert(s.to_string(), id);
        self.names.push(s.to_string());
        id
    }

    /// The id of an already-interned string, without interning.
    pub fn lookup(&self, s: &str) -> Option<i64> {
        self.map.get(s).copied()
    }

    /// The string behind an id (the inverse of [`StringInterner::intern`]),
    /// used to decode `Str`-typed kernel outputs back into values.
    pub fn resolve(&self, id: i64) -> Option<&str> {
        usize::try_from(id)
            .ok()
            .and_then(|i| self.names.get(i))
            .map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Engine-scoped string dictionary: a thread-safe [`StringInterner`] that
/// concurrent sessions — and the parallel unnest hot loop encoding `Str`
/// elements — can intern through with `&self`.
///
/// Ids are dense and stable for the life of the dictionary, so equal
/// strings always compare equal by id across every query that shares it.
/// The read-optimistic fast path makes re-interning an already-seen string
/// (the common case once a session pre-interns its columns) a read-lock
/// probe.
#[derive(Debug, Default)]
pub struct SharedInterner {
    inner: vida_types::sync::RwLock<StringInterner>,
}

impl SharedInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its stable dense id.
    pub fn intern(&self, s: &str) -> i64 {
        if let Some(id) = self.inner.read().lookup(s) {
            return id;
        }
        self.inner.write().intern(s)
    }

    /// The string behind an id, cloned out of the dictionary.
    pub fn resolve(&self, id: i64) -> Option<String> {
        self.inner.read().resolve(id).map(str::to_string)
    }

    /// Run `f` with exclusive access to the underlying [`StringInterner`] —
    /// the bridge to `&mut`-shaped consumers like [`crate::JitCompiler`].
    pub fn with_mut<T>(&self, f: impl FnOnce(&mut StringInterner) -> T) -> T {
        f(&mut self.inner.write())
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

/// Fills frames from values according to a layout.
pub struct FrameBuilder {
    layout: FrameLayout,
    interner: StringInterner,
}

impl FrameBuilder {
    pub fn new(layout: FrameLayout) -> Self {
        FrameBuilder {
            layout,
            interner: StringInterner::new(),
        }
    }

    pub fn layout(&self) -> &FrameLayout {
        &self.layout
    }

    pub fn interner_mut(&mut self) -> &mut StringInterner {
        &mut self.interner
    }

    /// Encode one value into slot `i` of `frame`. Returns `false` (frame
    /// unusable) when the value is null, a different scalar than declared,
    /// or not a scalar at all.
    pub fn fill_slot(&mut self, frame: &mut [i64], i: usize, v: &Value) -> bool {
        let (_, ty) = self.layout.slots[i];
        match (ty, v) {
            (SlotType::Int, Value::Int(x)) => {
                frame[i] = *x;
                true
            }
            (SlotType::Float, Value::Float(x)) => {
                frame[i] = x.to_bits() as i64;
                true
            }
            (SlotType::Float, Value::Int(x)) => {
                frame[i] = (*x as f64).to_bits() as i64;
                true
            }
            (SlotType::Bool, Value::Bool(b)) => {
                frame[i] = *b as i64;
                true
            }
            (SlotType::Str, Value::Str(s)) => {
                frame[i] = self.intern(s);
                true
            }
            _ => false,
        }
    }

    pub fn intern(&mut self, s: &str) -> i64 {
        self.interner.intern(s)
    }

    /// Build a full frame from per-slot values (slot order). `None` if any
    /// slot cannot be encoded.
    pub fn build(&mut self, values: &[&Value]) -> Option<Vec<i64>> {
        debug_assert_eq!(values.len(), self.layout.len());
        let mut frame = vec![0i64; self.layout.len()];
        for (i, v) in values.iter().enumerate() {
            if !self.fill_slot(&mut frame, i, v) {
                return None;
            }
        }
        Some(frame)
    }
}

/// Decode a kernel result according to its declared output.
pub fn decode_output(bits: i64, ty: SlotType) -> Value {
    match ty {
        SlotType::Int => Value::Int(bits),
        SlotType::Float => Value::Float(f64::from_bits(bits as u64)),
        SlotType::Bool => Value::Bool(bits != 0),
        SlotType::Str => Value::Int(bits), // interned id; caller resolves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_dedups_paths() {
        let mut l = FrameLayout::new();
        let a = l.slot("p.age", SlotType::Int);
        let b = l.slot("p.age", SlotType::Int);
        let c = l.slot("g.v", SlotType::Float);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(l.len(), 2);
        assert_eq!(l.lookup("p.age"), Some((0, SlotType::Int)));
        assert_eq!(l.lookup("nope"), None);
    }

    #[test]
    fn int_slot_widens_to_float() {
        let mut l = FrameLayout::new();
        l.slot("x", SlotType::Int);
        l.slot("x", SlotType::Float);
        assert_eq!(l.lookup("x"), Some((0, SlotType::Float)));
    }

    #[test]
    fn builder_encodes_scalars() {
        let mut l = FrameLayout::new();
        l.slot("i", SlotType::Int);
        l.slot("f", SlotType::Float);
        l.slot("b", SlotType::Bool);
        l.slot("s", SlotType::Str);
        let mut fb = FrameBuilder::new(l);
        let vals = [
            Value::Int(7),
            Value::Float(2.5),
            Value::Bool(true),
            Value::str("hr"),
        ];
        let frame = fb.build(&vals.iter().collect::<Vec<_>>()).unwrap();
        assert_eq!(frame[0], 7);
        assert_eq!(f64::from_bits(frame[1] as u64), 2.5);
        assert_eq!(frame[2], 1);
        assert_eq!(frame[3], fb.intern("hr"));
    }

    #[test]
    fn int_promotes_into_float_slot() {
        let mut l = FrameLayout::new();
        l.slot("f", SlotType::Float);
        let mut fb = FrameBuilder::new(l);
        let v = Value::Int(3);
        let frame = fb.build(&[&v]).unwrap();
        assert_eq!(f64::from_bits(frame[0] as u64), 3.0);
    }

    #[test]
    fn null_or_mismatched_slot_fails() {
        let mut l = FrameLayout::new();
        l.slot("i", SlotType::Int);
        let mut fb = FrameBuilder::new(l);
        assert!(fb.build(&[&Value::Null]).is_none());
        assert!(fb.build(&[&Value::str("x")]).is_none());
        assert!(fb.build(&[&Value::bag(vec![])]).is_none());
    }

    #[test]
    fn interning_is_stable() {
        let mut i = StringInterner::new();
        let a1 = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.lookup("alpha"), Some(a1));
        assert_eq!(i.lookup("gamma"), None);
    }

    #[test]
    fn shared_interner_agrees_across_threads() {
        let shared = std::sync::Arc::new(SharedInterner::new());
        let ids: Vec<Vec<i64>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let shared = std::sync::Arc::clone(&shared);
                    scope.spawn(move || (0..50).map(|n| shared.intern(&format!("s{n}"))).collect())
                })
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Every thread resolved every string to the same id, and the
        // dictionary holds each string once.
        for thread in &ids[1..] {
            assert_eq!(thread, &ids[0]);
        }
        assert_eq!(shared.len(), 50);
        assert_eq!(shared.resolve(ids[0][7]).as_deref(), Some("s7"));
        shared.with_mut(|si| {
            assert_eq!(si.lookup("s7"), Some(ids[0][7]));
        });
    }

    #[test]
    fn decode_round_trip() {
        assert_eq!(decode_output(42, SlotType::Int), Value::Int(42));
        assert_eq!(
            decode_output(2.5f64.to_bits() as i64, SlotType::Float),
            Value::Float(2.5)
        );
        assert_eq!(decode_output(1, SlotType::Bool), Value::Bool(true));
        assert_eq!(decode_output(0, SlotType::Bool), Value::Bool(false));
    }

    #[test]
    fn slot_type_of_type() {
        assert_eq!(SlotType::of_type(&Type::Int), Some(SlotType::Int));
        assert_eq!(SlotType::of_type(&Type::Str), Some(SlotType::Str));
        assert_eq!(SlotType::of_type(&Type::bag(Type::Int)), None);
    }
}
