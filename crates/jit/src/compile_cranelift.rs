//! **Uncompiled reference source.** This file is not declared as a module:
//! the workspace builds offline and the cranelift crates cannot be fetched.
//! It preserves the Cranelift native-code backend, API-identical to the
//! portable backend in `compile.rs` (`JitCompiler`/`CompiledKernel`); to use
//! it, vendor cranelift-{codegen,frontend,jit,module}, add them as
//! dependencies, and mount this file in `lib.rs` in place of `compile`.

//! Cranelift compilation of scalar expressions.
//!
//! [`JitCompiler::compile`] turns a calculus expression over a
//! [`FrameLayout`] into native code with signature
//! `fn(*const i64) -> i64`. The compilable subset is pure and total
//! (no division, no collection operations), so the generated code can use
//! branch-free `select` for `if` and non-short-circuit boolean arithmetic —
//! the aggressive specialization §4.1 describes. Expressions outside the
//! subset return `None` from [`JitCompiler::try_prepare`] and stay
//! interpreted.

use crate::frame::{FrameLayout, SlotType, StringInterner};
use cranelift_codegen::ir::{types, AbiParam, InstBuilder, MemFlags, Value as ClifValue};
use cranelift_codegen::settings::{self, Configurable};
use cranelift_frontend::{FunctionBuilder, FunctionBuilderContext};
use cranelift_jit::{JITBuilder, JITModule};
use cranelift_module::{Linkage, Module};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vida_lang::{BinOp, Expr, UnOp};
use vida_types::{Result, Value, VidaError};

/// Declared output encoding of a compiled kernel.
pub type KernelOutput = SlotType;

/// A finalized native kernel. The backing executable memory lives as long
/// as any clone of this struct.
#[derive(Clone)]
pub struct CompiledKernel {
    func: extern "C" fn(*const i64) -> i64,
    output: KernelOutput,
    id: u32,
    /// Keeps the JIT module (and thus the code pages) alive.
    _module: Arc<ModuleHolder>,
}

struct ModuleHolder(#[allow(dead_code)] JITModule);

// SAFETY: after `finalize_definitions` the module's code pages are immutable
// and the holder is never used to define more functions; sharing read-only
// executable memory across threads is sound.
unsafe impl Send for ModuleHolder {}
unsafe impl Sync for ModuleHolder {}

impl CompiledKernel {
    /// Id of a kernel that was never tagged with [`CompiledKernel::with_id`].
    pub const UNASSIGNED: u32 = u32::MAX;

    /// Tag this kernel with a query-dense id (API parity with the portable
    /// backend).
    pub fn with_id(mut self, id: u32) -> Self {
        self.id = id;
        self
    }

    /// The kernel's id, or [`CompiledKernel::UNASSIGNED`].
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Run the kernel over a frame. The frame must match the layout the
    /// kernel was compiled against.
    #[inline]
    pub fn call(&self, frame: &[i64]) -> i64 {
        (self.func)(frame.as_ptr())
    }

    /// Run and decode into a [`Value`].
    pub fn call_value(&self, frame: &[i64]) -> Value {
        crate::frame::decode_output(self.call(frame), self.output)
    }

    pub fn output(&self) -> KernelOutput {
        self.output
    }
}

static KERNEL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Per-query compiler: owns a Cranelift JIT module.
pub struct JitCompiler {
    module: JITModule,
    ctx_count: usize,
}

impl JitCompiler {
    pub fn new() -> Result<Self> {
        let mut flags = settings::builder();
        flags
            .set("use_colocated_libcalls", "false")
            .map_err(|e| VidaError::Codegen(e.to_string()))?;
        flags
            .set("is_pic", "false")
            .map_err(|e| VidaError::Codegen(e.to_string()))?;
        flags
            .set("opt_level", "speed")
            .map_err(|e| VidaError::Codegen(e.to_string()))?;
        let isa = cranelift_native::builder()
            .map_err(|e| VidaError::Codegen(e.to_string()))?
            .finish(settings::Flags::new(flags))
            .map_err(|e| VidaError::Codegen(e.to_string()))?;
        let builder = JITBuilder::with_isa(isa, cranelift_module::default_libcall_names());
        Ok(JitCompiler {
            module: JITModule::new(builder),
            ctx_count: 0,
        })
    }

    /// Static check + output type inference: can `expr` compile against
    /// `layout`? Returns the output slot type if yes.
    pub fn try_prepare(expr: &Expr, layout: &FrameLayout) -> Option<SlotType> {
        infer(expr, layout)
    }

    /// Compile `expr`. String constants are interned through `interner` —
    /// the same interner the frame builder uses at runtime.
    pub fn compile(
        mut self,
        expr: &Expr,
        layout: &FrameLayout,
        interner: &mut StringInterner,
    ) -> Result<CompiledKernel> {
        let output = infer(expr, layout)
            .ok_or_else(|| VidaError::Codegen(format!("expression not compilable: {expr}")))?;

        let ptr_ty = self.module.target_config().pointer_type();
        let mut ctx = self.module.make_context();
        ctx.func.signature.params.push(AbiParam::new(ptr_ty));
        ctx.func.signature.returns.push(AbiParam::new(types::I64));

        let mut fbc = FunctionBuilderContext::new();
        {
            let mut b = FunctionBuilder::new(&mut ctx.func, &mut fbc);
            let block = b.create_block();
            b.append_block_params_for_function_params(block);
            b.switch_to_block(block);
            b.seal_block(block);
            let frame_ptr = b.block_params(block)[0];

            let mut cg = Codegen {
                builder: &mut b,
                frame_ptr,
                layout,
                interner,
            };
            let (val, ty) = cg.emit(expr)?;
            let ret = match ty {
                SlotType::Float => cg.builder.ins().bitcast(types::I64, MemFlags::new(), val),
                SlotType::Bool => cg.builder.ins().uextend(types::I64, val),
                _ => val,
            };
            b.ins().return_(&[ret]);
            b.finalize();
        }

        let name = format!(
            "vida_kernel_{}_{}",
            KERNEL_COUNTER.fetch_add(1, Ordering::Relaxed),
            self.ctx_count
        );
        self.ctx_count += 1;
        let id = self
            .module
            .declare_function(&name, Linkage::Export, &ctx.func.signature)
            .map_err(|e| VidaError::Codegen(e.to_string()))?;
        self.module
            .define_function(id, &mut ctx)
            .map_err(|e| VidaError::Codegen(e.to_string()))?;
        self.module.clear_context(&mut ctx);
        self.module
            .finalize_definitions()
            .map_err(|e| VidaError::Codegen(e.to_string()))?;
        let code = self.module.get_finalized_function(id);
        // SAFETY: the signature declared above is exactly
        // `extern "C" fn(*const i64) -> i64`.
        let func =
            unsafe { std::mem::transmute::<*const u8, extern "C" fn(*const i64) -> i64>(code) };
        Ok(CompiledKernel {
            func,
            output,
            id: CompiledKernel::UNASSIGNED,
            _module: Arc::new(ModuleHolder(self.module)),
        })
    }
}

/// Output type inference over the compilable subset; `None` = fallback to
/// the interpreter.
fn infer(expr: &Expr, layout: &FrameLayout) -> Option<SlotType> {
    match expr {
        Expr::Const(Value::Int(_)) => Some(SlotType::Int),
        Expr::Const(Value::Float(_)) => Some(SlotType::Float),
        Expr::Const(Value::Bool(_)) => Some(SlotType::Bool),
        Expr::Const(Value::Str(_)) => Some(SlotType::Str),
        Expr::Var(_) | Expr::Proj(..) => {
            let path = path_of(expr)?;
            layout.lookup(&path).map(|(_, t)| t)
        }
        Expr::BinOp(op, l, r) => {
            let lt = infer(l, layout)?;
            let rt = infer(r, layout)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul => match (lt, rt) {
                    (SlotType::Int, SlotType::Int) => Some(SlotType::Int),
                    (SlotType::Int | SlotType::Float, SlotType::Int | SlotType::Float) => {
                        Some(SlotType::Float)
                    }
                    _ => None,
                },
                // Division/modulo keep interpreter error semantics.
                BinOp::Div | BinOp::Mod => None,
                BinOp::Eq | BinOp::Ne => match (lt, rt) {
                    (SlotType::Str, SlotType::Str) => Some(SlotType::Bool),
                    (SlotType::Bool, SlotType::Bool) => Some(SlotType::Bool),
                    (SlotType::Int | SlotType::Float, SlotType::Int | SlotType::Float) => {
                        Some(SlotType::Bool)
                    }
                    _ => None,
                },
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (lt, rt) {
                    (SlotType::Int | SlotType::Float, SlotType::Int | SlotType::Float) => {
                        Some(SlotType::Bool)
                    }
                    _ => None, // string ordering stays interpreted
                },
                BinOp::And | BinOp::Or => {
                    if lt == SlotType::Bool && rt == SlotType::Bool {
                        Some(SlotType::Bool)
                    } else {
                        None
                    }
                }
            }
        }
        Expr::UnOp(UnOp::Not, e) => (infer(e, layout)? == SlotType::Bool).then_some(SlotType::Bool),
        Expr::UnOp(UnOp::Neg, e) => match infer(e, layout)? {
            SlotType::Int => Some(SlotType::Int),
            SlotType::Float => Some(SlotType::Float),
            _ => None,
        },
        Expr::If(c, t, f) => {
            if infer(c, layout)? != SlotType::Bool {
                return None;
            }
            let tt = infer(t, layout)?;
            let ft = infer(f, layout)?;
            match (tt, ft) {
                (a, b) if a == b => Some(a),
                (SlotType::Int, SlotType::Float) | (SlotType::Float, SlotType::Int) => {
                    Some(SlotType::Float)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Dotted path string of a variable/projection chain (`p.age`).
pub fn path_of(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Var(v) => Some(v.clone()),
        Expr::Proj(e, f) => Some(format!("{}.{f}", path_of(e)?)),
        _ => None,
    }
}

struct Codegen<'a, 'b> {
    builder: &'a mut FunctionBuilder<'b>,
    frame_ptr: ClifValue,
    layout: &'a FrameLayout,
    interner: &'a mut StringInterner,
}

impl Codegen<'_, '_> {
    fn emit(&mut self, expr: &Expr) -> Result<(ClifValue, SlotType)> {
        match expr {
            Expr::Const(Value::Int(i)) => {
                Ok((self.builder.ins().iconst(types::I64, *i), SlotType::Int))
            }
            Expr::Const(Value::Float(f)) => Ok((self.builder.ins().f64const(*f), SlotType::Float)),
            Expr::Const(Value::Bool(b)) => Ok((
                self.builder.ins().iconst(types::I8, *b as i64),
                SlotType::Bool,
            )),
            Expr::Const(Value::Str(s)) => {
                let id = self.interner.intern(s);
                Ok((self.builder.ins().iconst(types::I64, id), SlotType::Str))
            }
            Expr::Var(_) | Expr::Proj(..) => {
                let path =
                    path_of(expr).ok_or_else(|| VidaError::Codegen(format!("bad path {expr}")))?;
                let (slot, ty) = self.layout.lookup(&path).ok_or_else(|| {
                    VidaError::Codegen(format!("path '{path}' not in frame layout"))
                })?;
                let off = (slot * 8) as i32;
                let v = match ty {
                    SlotType::Float => self.builder.ins().load(
                        types::F64,
                        MemFlags::trusted(),
                        self.frame_ptr,
                        off,
                    ),
                    SlotType::Bool => {
                        let w = self.builder.ins().load(
                            types::I64,
                            MemFlags::trusted(),
                            self.frame_ptr,
                            off,
                        );
                        self.builder.ins().ireduce(types::I8, w)
                    }
                    _ => self.builder.ins().load(
                        types::I64,
                        MemFlags::trusted(),
                        self.frame_ptr,
                        off,
                    ),
                };
                Ok((v, ty))
            }
            Expr::BinOp(op, l, r) => {
                let (lv, lt) = self.emit(l)?;
                let (rv, rt) = self.emit(r)?;
                self.emit_binop(*op, lv, lt, rv, rt)
            }
            Expr::UnOp(UnOp::Not, e) => {
                let (v, _) = self.emit(e)?;
                let one = self.builder.ins().iconst(types::I8, 1);
                Ok((self.builder.ins().bxor(v, one), SlotType::Bool))
            }
            Expr::UnOp(UnOp::Neg, e) => {
                let (v, t) = self.emit(e)?;
                Ok(match t {
                    SlotType::Float => (self.builder.ins().fneg(v), SlotType::Float),
                    _ => (self.builder.ins().ineg(v), SlotType::Int),
                })
            }
            Expr::If(c, t, f) => {
                let (cv, _) = self.emit(c)?;
                let (tv, tt) = self.emit(t)?;
                let (fv, ft) = self.emit(f)?;
                // Unify numeric branches.
                let (tv, fv, ty) = match (tt, ft) {
                    (a, b) if a == b => (tv, fv, a),
                    (SlotType::Int, SlotType::Float) => (
                        self.builder.ins().fcvt_from_sint(types::F64, tv),
                        fv,
                        SlotType::Float,
                    ),
                    (SlotType::Float, SlotType::Int) => (
                        tv,
                        self.builder.ins().fcvt_from_sint(types::F64, fv),
                        SlotType::Float,
                    ),
                    _ => {
                        return Err(VidaError::Codegen(
                            "if branches with incompatible slot types".into(),
                        ))
                    }
                };
                Ok((self.builder.ins().select(cv, tv, fv), ty))
            }
            other => Err(VidaError::Codegen(format!("not compilable: {other}"))),
        }
    }

    fn promote(&mut self, v: ClifValue, from: SlotType) -> ClifValue {
        match from {
            SlotType::Int => self.builder.ins().fcvt_from_sint(types::F64, v),
            _ => v,
        }
    }

    fn emit_binop(
        &mut self,
        op: BinOp,
        lv: ClifValue,
        lt: SlotType,
        rv: ClifValue,
        rt: SlotType,
    ) -> Result<(ClifValue, SlotType)> {
        use cranelift_codegen::ir::condcodes::{FloatCC, IntCC};
        let both_int = lt == SlotType::Int && rt == SlotType::Int;
        let numeric = |t: SlotType| matches!(t, SlotType::Int | SlotType::Float);
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                if both_int {
                    let v = match op {
                        BinOp::Add => self.builder.ins().iadd(lv, rv),
                        BinOp::Sub => self.builder.ins().isub(lv, rv),
                        _ => self.builder.ins().imul(lv, rv),
                    };
                    Ok((v, SlotType::Int))
                } else {
                    let a = self.promote(lv, lt);
                    let b = self.promote(rv, rt);
                    let v = match op {
                        BinOp::Add => self.builder.ins().fadd(a, b),
                        BinOp::Sub => self.builder.ins().fsub(a, b),
                        _ => self.builder.ins().fmul(a, b),
                    };
                    Ok((v, SlotType::Float))
                }
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let v = if numeric(lt) && numeric(rt) && !both_int {
                    let a = self.promote(lv, lt);
                    let b = self.promote(rv, rt);
                    let cc = match op {
                        BinOp::Eq => FloatCC::Equal,
                        BinOp::Ne => FloatCC::NotEqual,
                        BinOp::Lt => FloatCC::LessThan,
                        BinOp::Le => FloatCC::LessThanOrEqual,
                        BinOp::Gt => FloatCC::GreaterThan,
                        _ => FloatCC::GreaterThanOrEqual,
                    };
                    self.builder.ins().fcmp(cc, a, b)
                } else {
                    // Ints, interned strings (eq/ne only), bools.
                    let (a, b) = if lt == SlotType::Bool {
                        // widen i8 bools for comparison
                        (
                            self.builder.ins().uextend(types::I64, lv),
                            self.builder.ins().uextend(types::I64, rv),
                        )
                    } else {
                        (lv, rv)
                    };
                    let cc = match op {
                        BinOp::Eq => IntCC::Equal,
                        BinOp::Ne => IntCC::NotEqual,
                        BinOp::Lt => IntCC::SignedLessThan,
                        BinOp::Le => IntCC::SignedLessThanOrEqual,
                        BinOp::Gt => IntCC::SignedGreaterThan,
                        _ => IntCC::SignedGreaterThanOrEqual,
                    };
                    self.builder.ins().icmp(cc, a, b)
                };
                Ok((v, SlotType::Bool))
            }
            BinOp::And => Ok((self.builder.ins().band(lv, rv), SlotType::Bool)),
            BinOp::Or => Ok((self.builder.ins().bor(lv, rv), SlotType::Bool)),
            BinOp::Div | BinOp::Mod => Err(VidaError::Codegen(
                "division stays on the interpreted path".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_lang::parse;

    /// Compile `expr` against a layout derived from `slots`, run on `frame`
    /// values, return the decoded result.
    fn run(src: &str, slots: &[(&str, SlotType)], values: &[Value]) -> Value {
        let mut layout = FrameLayout::new();
        for (p, t) in slots {
            layout.slot(*p, *t);
        }
        let mut interner = StringInterner::new();
        let expr = parse(src).unwrap();
        let kernel = JitCompiler::new()
            .unwrap()
            .compile(&expr, &layout, &mut interner)
            .unwrap();
        // Build the frame with the same interner.
        let mut fb = crate::frame::FrameBuilder::new(layout);
        std::mem::swap(fb.interner_mut(), &mut interner);
        let frame = fb.build(&values.iter().collect::<Vec<_>>()).unwrap();
        kernel.call_value(&frame)
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(
            run(
                "x + y * 2",
                &[("x", SlotType::Int), ("y", SlotType::Int)],
                &[Value::Int(3), Value::Int(4)]
            ),
            Value::Int(11)
        );
        assert_eq!(
            run("-(x - 1)", &[("x", SlotType::Int)], &[Value::Int(5)]),
            Value::Int(-4)
        );
    }

    #[test]
    fn float_arithmetic_and_promotion() {
        assert_eq!(
            run(
                "x + y",
                &[("x", SlotType::Float), ("y", SlotType::Int)],
                &[Value::Float(1.5), Value::Int(2)]
            ),
            Value::Float(3.5)
        );
        assert_eq!(
            run("x * 0.5", &[("x", SlotType::Float)], &[Value::Float(5.0)]),
            Value::Float(2.5)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            run("x > 40", &[("x", SlotType::Int)], &[Value::Int(45)]),
            Value::Bool(true)
        );
        assert_eq!(
            run("x <= 2.5", &[("x", SlotType::Float)], &[Value::Float(2.5)]),
            Value::Bool(true)
        );
        assert_eq!(
            run(
                "x != y",
                &[("x", SlotType::Int), ("y", SlotType::Float)],
                &[Value::Int(2), Value::Float(2.0)]
            ),
            Value::Bool(false)
        );
    }

    #[test]
    fn projection_paths() {
        assert_eq!(
            run(
                "p.age > 60 and g.v < 0.5",
                &[("p.age", SlotType::Int), ("g.v", SlotType::Float)],
                &[Value::Int(70), Value::Float(0.25)]
            ),
            Value::Bool(true)
        );
    }

    #[test]
    fn boolean_connectives_and_not() {
        assert_eq!(
            run(
                "not (a and b) or b",
                &[("a", SlotType::Bool), ("b", SlotType::Bool)],
                &[Value::Bool(true), Value::Bool(false)]
            ),
            Value::Bool(true)
        );
    }

    #[test]
    fn string_equality_via_interning() {
        assert_eq!(
            run("s = \"HR\"", &[("s", SlotType::Str)], &[Value::str("HR")]),
            Value::Bool(true)
        );
        assert_eq!(
            run("s != \"HR\"", &[("s", SlotType::Str)], &[Value::str("Eng")]),
            Value::Bool(true)
        );
    }

    #[test]
    fn if_select() {
        assert_eq!(
            run(
                "if x > 0 then x else -x",
                &[("x", SlotType::Int)],
                &[Value::Int(-7)]
            ),
            Value::Int(7)
        );
        // Mixed branches widen to float.
        assert_eq!(
            run(
                "if x > 0 then 1 else 0.5",
                &[("x", SlotType::Int)],
                &[Value::Int(3)]
            ),
            Value::Float(1.0)
        );
    }

    #[test]
    fn non_compilable_expressions_rejected() {
        let mut layout = FrameLayout::new();
        layout.slot("x", SlotType::Int);
        layout.slot("s", SlotType::Str);
        for src in [
            "x / 2",                       // division semantics
            "x % 2",                       // modulo
            "s < \"a\"",                   // string ordering
            "for { y <- xs } yield sum y", // comprehension
            "y + 1",                       // unknown path
        ] {
            let e = parse(src).unwrap();
            assert!(
                JitCompiler::try_prepare(&e, &layout).is_none(),
                "{src} should not be compilable"
            );
        }
    }

    #[test]
    fn kernel_matches_interpreter_on_sweep() {
        // Differential test against the calculus interpreter.
        use vida_lang::{eval, Bindings};
        let exprs = [
            "x * 3 - y",
            "x > y",
            "x >= y and x - y < 10",
            "if x = y then x + 1 else y - 1",
            "not (x < y) or x = 0",
        ];
        for src in exprs {
            let expr = parse(src).unwrap();
            let mut layout = FrameLayout::new();
            layout.slot("x", SlotType::Int);
            layout.slot("y", SlotType::Int);
            let mut interner = StringInterner::new();
            let kernel = JitCompiler::new()
                .unwrap()
                .compile(&expr, &layout, &mut interner)
                .unwrap();
            for x in [-3i64, 0, 1, 7, 100] {
                for y in [-2i64, 0, 7, 50] {
                    let frame = [x, y];
                    let jit = kernel.call_value(&frame);
                    let mut env = Bindings::new();
                    env.insert("x".into(), Value::Int(x));
                    env.insert("y".into(), Value::Int(y));
                    let interp = eval(&expr, &env).unwrap();
                    assert!(
                        jit.sem_eq(&interp),
                        "{src} at x={x}, y={y}: jit={jit}, interp={interp}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_are_send_and_reusable() {
        let mut layout = FrameLayout::new();
        layout.slot("x", SlotType::Int);
        let mut interner = StringInterner::new();
        let kernel = JitCompiler::new()
            .unwrap()
            .compile(&parse("x + 1").unwrap(), &layout, &mut interner)
            .unwrap();
        let k2 = kernel.clone();
        let h = std::thread::spawn(move || k2.call(&[41]));
        assert_eq!(h.join().unwrap(), 42);
        assert_eq!(kernel.call(&[1]), 2);
    }
}
