//! # vida-jit
//!
//! Just-in-time compilation of scalar query kernels (ViDa §4, §4.1).
//!
//! The paper's executor uses LLVM to generate machine code per query; the
//! calibration note for this reproduction names Cranelift as the Rust-native
//! equivalent. The active backend ([`compile`]) is **portable**: it fuses
//! each expression into a tree of monomorphic closures over the register
//! frame, with all type dispatch resolved at compile time. A Cranelift
//! backend with the identical API is kept as reference source in
//! `src/compile_cranelift.rs`; it is not compiled (this workspace builds
//! offline with no external crates) — mount it in place of [`compile`] once
//! the cranelift-{codegen,frontend,jit,module} crates are vendored.
//!
//! What gets compiled: **scalar kernels** — filter predicates, arithmetic
//! projections, aggregate-head expressions — specialized to a flat register
//! [`frame::FrameLayout`] of the attributes a query actually touches. The
//! generated code contains no type tags, no branches on layout, no hash
//! lookups: exactly the "stripped from general-purpose checks" property §4.1
//! describes. Operator *fusion* (pipelining data in registers across
//! operators) happens one level up, in `vida-exec`, which chains these
//! kernels into per-query pipelines.
//!
//! Strings participate through **interning**: the frame builder maps string
//! values to dense integer ids, so string equality compiles to an integer
//! compare. Expressions outside the compilable subset (string ordering,
//! division with its error semantics, nested-collection work) stay on the
//! interpreted path — the hybrid execution §6 describes for the prototype.

pub mod compile;
pub mod frame;

pub use compile::{CompiledKernel, JitCompiler, KernelOutput, SelectKernel};
pub use frame::{FrameBuilder, FrameLayout, SharedInterner, SlotType, StringInterner};
