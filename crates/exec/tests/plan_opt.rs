//! Plan-snapshot regression tests for the cost-based plan optimizer
//! (PR 8): join reordering must put the small relation on the build
//! side, already-optimal plans must pass through untouched, ordered
//! monoids must never be reordered, and selectivity-ordered conjuncts
//! must kick in once the cost model has observed predicate hit rates.
//!
//! The "snapshot" surface is deliberately behavioral rather than a plan
//! pretty-print: `ExecStats::{joins_reordered, conjuncts_reordered}`
//! pins *that* the optimizer acted, and the counted `BUILD_SIDE` trace
//! span pins *what* it chose (the build-side cardinality), so a future
//! regression that re-derives the same counters from a worse plan still
//! trips the span assertion.

use std::sync::Arc;
use vida_algebra::{lower, rewrite, Plan};
use vida_exec::{run_jit_with_stats, run_volcano, ExecStats, JitOptions, MemoryCatalog};
use vida_lang::parse;
use vida_optimizer::CostModel;
use vida_trace::stage;
use vida_types::{Schema, Type, Value};

/// Dim: 4 rows, Fact: 600 rows (fid = i % 4, every row matches), Fact2:
/// 300 rows (gid = i % 4). A join that builds on Fact instead of Dim is
/// misordered by a factor of 150.
fn catalog() -> MemoryCatalog {
    let cat = MemoryCatalog::new();
    let dims: Vec<Value> = (0..4)
        .map(|i| Value::record([("id", Value::Int(i)), ("kind", Value::Int(i % 2))]))
        .collect();
    cat.register_records(
        "Dim",
        Schema::from_pairs([("id", Type::Int), ("kind", Type::Int)]),
        &dims,
    )
    .unwrap();
    let facts: Vec<Value> = (0..600)
        .map(|i| {
            Value::record([
                ("fid", Value::Int(i % 4)),
                ("v", Value::Int(i)),
                ("tag", Value::Int(7)),
            ])
        })
        .collect();
    cat.register_records(
        "Fact",
        Schema::from_pairs([("fid", Type::Int), ("v", Type::Int), ("tag", Type::Int)]),
        &facts,
    )
    .unwrap();
    let facts2: Vec<Value> = (0..300)
        .map(|i| Value::record([("gid", Value::Int(i % 4)), ("w", Value::Int(i))]))
        .collect();
    cat.register_records(
        "Fact2",
        Schema::from_pairs([("gid", Type::Int), ("w", Type::Int)]),
        &facts2,
    )
    .unwrap();
    cat
}

fn plan_of(q: &str) -> Plan {
    rewrite(&lower(&parse(q).expect("parses")).expect("lowers"))
}

/// Serial traced run so the one counted `BUILD_SIDE` span per join is
/// exactly the build-side materialization (`build_side_tuples`).
fn run(q: &str, cat: &MemoryCatalog, plan_opt: bool) -> (Value, ExecStats) {
    let opts = JitOptions {
        threads: 1,
        plan_opt,
        ..JitOptions::default()
    }
    .with_trace();
    run_jit_with_stats(&plan_of(q), cat, &opts).expect("query runs")
}

/// Total tuples materialized across every build side of the query.
fn build_tuples(stats: &ExecStats) -> u64 {
    stats
        .query_trace()
        .expect("trace recorded")
        .stage_totals()
        .iter()
        .find(|t| t.stage == stage::BUILD_SIDE)
        .map(|t| t.tuples)
        .unwrap_or(0)
}

#[test]
fn misordered_two_way_join_builds_on_the_small_side() {
    // Syntactically the 600-row Fact is the build (right) side.
    let q = "for { d <- Dim, f <- Fact, d.id = f.fid } yield sum f.v";
    let cat = catalog();
    let oracle = run_volcano(&plan_of(q), &cat).unwrap();

    let (off_val, off) = run(q, &cat, false);
    assert_eq!(off_val, oracle, "plan_opt=false diverged from volcano");
    assert_eq!(off.joins_reordered, 0, "--no-plan-opt must never reorder");
    assert_eq!(off.whole_query_fallbacks, 0);
    assert_eq!(build_tuples(&off), 600, "blind plan builds on Fact");

    let (on_val, on) = run(q, &cat, true);
    assert_eq!(on_val, oracle, "plan_opt=true diverged from volcano");
    assert_eq!(on.whole_query_fallbacks, 0);
    assert_eq!(
        on.joins_reordered, 2,
        "both relations move when the pair swaps"
    );
    assert_eq!(build_tuples(&on), 4, "optimized plan builds on Dim");
    assert!(on.estimated_rows > 0, "reordered plans carry an estimate");
}

#[test]
fn misordered_three_way_join_is_reordered() {
    // Worst syntactic order: the blind left-deep plan builds on Fact
    // (600 rows) and then Dim; greedy joins Fact⋈Dim first, shrinking
    // the build footprint to Dim (4) + Fact2 (300).
    let q = "for { g <- Fact2, f <- Fact, d <- Dim, f.fid = g.gid, f.fid = d.id } \
             yield sum f.v";
    let cat = catalog();
    let oracle = run_volcano(&plan_of(q), &cat).unwrap();

    let (off_val, off) = run(q, &cat, false);
    assert_eq!(off_val, oracle);
    assert_eq!(off.joins_reordered, 0);

    let (on_val, on) = run(q, &cat, true);
    assert_eq!(on_val, oracle, "reordered 3-way join diverged from volcano");
    assert_eq!(on.whole_query_fallbacks, 0);
    assert!(
        on.joins_reordered >= 1,
        "3-way misordered join was left alone"
    );
    assert!(
        build_tuples(&on) < build_tuples(&off),
        "reordering must shrink the total build-side footprint \
         (got {} vs blind {})",
        build_tuples(&on),
        build_tuples(&off)
    );
}

#[test]
fn already_optimal_join_is_left_untouched() {
    // Dim is already on the build side: the greedy search arrives at the
    // identity order and the counters must stay zero.
    let q = "for { f <- Fact, d <- Dim, f.fid = d.id } yield sum f.v";
    let cat = catalog();
    let oracle = run_volcano(&plan_of(q), &cat).unwrap();
    for plan_opt in [true, false] {
        let (val, stats) = run(q, &cat, plan_opt);
        assert_eq!(val, oracle, "plan_opt={plan_opt}");
        assert_eq!(stats.joins_reordered, 0, "plan_opt={plan_opt}");
        assert_eq!(stats.whole_query_fallbacks, 0, "plan_opt={plan_opt}");
        assert_eq!(build_tuples(&stats), 4, "plan_opt={plan_opt}");
    }
}

#[test]
fn ordered_monoids_keep_the_syntactic_join_order() {
    // Bag output observes tuple order, so even a badly misordered join
    // must keep Fact on the build side with the optimizer enabled.
    let q = "for { d <- Dim, f <- Fact, d.id = f.fid } \
             yield bag (id := d.id, v := f.v)";
    let cat = catalog();
    let (on_val, on) = run(q, &cat, true);
    let (off_val, off) = run(q, &cat, false);
    assert_eq!(on_val, off_val, "ordered output diverged under plan_opt");
    assert_eq!(on.joins_reordered, 0, "bag monoid must not be reordered");
    assert_eq!(off.joins_reordered, 0);
    assert_eq!(
        build_tuples(&on),
        build_tuples(&off),
        "plan_opt changed the build side of an ordered query"
    );
}

#[test]
fn observed_selectivities_reorder_fused_conjuncts() {
    // Syntactic and heuristic order agree on the first run (the equality
    // defaults to selectivity 0.1 and already sits first), so nothing
    // moves. The sampled counters then reveal that `f.tag = 7` passes
    // every row while `f.v < 8` passes almost none — the second run must
    // flip the chain to test the range first.
    let q = "for { f <- Fact, f.tag = 7, f.v < 8 } yield count f";
    let cat = catalog();
    let oracle = run_volcano(&plan_of(q), &cat).unwrap();
    let model = Arc::new(CostModel::new());
    let opts = JitOptions {
        threads: 1,
        cost_model: Some(Arc::clone(&model)),
        ..JitOptions::default()
    };

    let (first_val, first) = run_jit_with_stats(&plan_of(q), &cat, &opts).unwrap();
    assert_eq!(first_val, oracle);
    assert_eq!(
        first.conjuncts_reordered, 0,
        "no observations yet: syntactic order must hold"
    );
    assert!(
        model.sketch().predicates_tracked() >= 2,
        "the build must have sampled both scan conjuncts"
    );

    let (second_val, second) = run_jit_with_stats(&plan_of(q), &cat, &opts).unwrap();
    assert_eq!(second_val, oracle, "conjunct reorder changed the result");
    assert_eq!(
        second.conjuncts_reordered, 2,
        "observed selectivities must move the range test first"
    );

    // The escape hatch wins over observations.
    let off = JitOptions {
        threads: 1,
        cost_model: Some(Arc::clone(&model)),
        plan_opt: false,
        ..JitOptions::default()
    };
    let (off_val, off_stats) = run_jit_with_stats(&plan_of(q), &cat, &off).unwrap();
    assert_eq!(off_val, oracle);
    assert_eq!(off_stats.conjuncts_reordered, 0);
}
