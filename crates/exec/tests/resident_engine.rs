//! Resident-engine integration tests: concurrent client threads over one
//! shared [`Engine`] — one parked worker pool, one interner, one replica
//! cache — must be **bit-identical** to per-call `run_jit` runs, at every
//! swept worker count (1/2/8) and on both raw-data backings (owned bytes
//! and mmap'd files). On top of value identity, the metrics registry pins
//! the two structural claims of the resident path:
//!
//! - **zero per-query thread spawns** (`pool_thread_spawns` delta is 0
//!   across any number of resident queries — workers were counted once,
//!   at engine construction), and
//! - **morsel-granularity time slicing** (`pool_multiplexed_claims` goes
//!   nonzero when ≥2 sessions' runs are in flight on one pool).
//!
//! The metrics registry is process-global and other tests in this binary
//! also run pool work, so every test that reads a metrics *delta* (or
//! whose spawn-mode baseline would bump one) serializes on a file-local
//! lock.

mod common;

use common::{file_catalog, owned_catalog};
use std::sync::{Arc, Mutex, MutexGuard};
use vida_algebra::{rewrite, Plan};
use vida_cache::CacheManager;
use vida_exec::{global_metrics, run_jit, Engine, JitOptions, MemoryCatalog};
use vida_formats::MapMode;
use vida_lang::{BinOp, Expr};
use vida_types::{CollectionKind, Monoid, PrimitiveMonoid, Value};

/// Serializes the metrics-sensitive tests of this binary (see module doc).
static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn metrics_guard() -> MutexGuard<'static, ()> {
    METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scan(dataset: &str, binding: &str) -> Plan {
    Plan::Scan {
        dataset: dataset.into(),
        binding: binding.into(),
    }
}

fn reduce(input: Plan, monoid: Monoid, head: Expr) -> Plan {
    Plan::Reduce {
        input: Box::new(input),
        monoid,
        head,
    }
}

/// A fixed plan set spanning the pipeline shapes: filtered scans,
/// order-sensitive string collection (hostile CSV/JSON strings), an equi
/// join, a theta join, an unnest chain, and an exact dyadic float sum.
fn plans() -> Vec<Plan> {
    let sum = Monoid::Primitive(PrimitiveMonoid::Sum);
    let count = Monoid::Primitive(PrimitiveMonoid::Count);
    let list = Monoid::Collection(CollectionKind::List);
    let raw = [
        // Filtered scan, nullable column.
        reduce(
            Plan::Select {
                input: Box::new(scan("A", "a")),
                predicate: Expr::bin(BinOp::Gt, Expr::var("a").proj("x"), Expr::int(5)),
            },
            sum,
            Expr::var("a").proj("k"),
        ),
        // Order-sensitive list of escaped CSV strings: any morsel
        // misalignment or interner corruption changes the value.
        reduce(scan("A", "a"), list, Expr::var("a").proj("s")),
        // Same over surrogate-pair JSON strings.
        reduce(scan("B", "b"), list, Expr::var("b").proj("s")),
        // Equi join (hash pipeline).
        reduce(
            Plan::Join {
                left: Box::new(scan("A", "a")),
                right: Box::new(scan("B", "b")),
                predicate: Expr::bin(
                    BinOp::Eq,
                    Expr::var("a").proj("k"),
                    Expr::var("b").proj("k"),
                ),
            },
            sum,
            // `b.k` rather than the nullable `b.y`: sum over null errors.
            Expr::var("b").proj("k"),
        ),
        // Band join (sort-probe theta pipeline).
        reduce(
            Plan::Join {
                left: Box::new(scan("A", "a")),
                right: Box::new(scan("B", "b")),
                predicate: Expr::bin(
                    BinOp::Lt,
                    Expr::var("a").proj("k"),
                    Expr::var("b").proj("k"),
                ),
            },
            count,
            Expr::int(1),
        ),
        // Unnest over the nested table.
        reduce(
            Plan::Unnest {
                input: Box::new(scan("N", "n")),
                binding: "e".into(),
                path: Expr::var("n").proj("xs"),
            },
            sum,
            Expr::var("e"),
        ),
        // Exact dyadic float sum: bit-identity catches merge-order drift.
        reduce(scan("A", "a"), sum, Expr::var("a").proj("f")),
    ];
    raw.iter().map(rewrite).collect()
}

fn opts_for(workers: usize, cache: Option<Arc<CacheManager>>) -> JitOptions {
    JitOptions {
        threads: workers,
        morsel_rows: 4,
        clamp_threads: false,
        cache,
        ..Default::default()
    }
}

/// N client threads over one shared engine (pool + cache + interner),
/// swept at 1/2/8 workers on both backings: every concurrent result must
/// equal the serial per-call `run_jit` baseline bit for bit.
#[test]
fn concurrent_clients_bit_identical_to_serial_across_workers_and_backings() {
    let _guard = metrics_guard();
    let plans = plans();
    let backings: [(&str, Arc<MemoryCatalog>); 2] = [
        ("owned", Arc::new(owned_catalog())),
        (
            "mmap",
            Arc::new(file_catalog("resident_engine", MapMode::Auto)),
        ),
    ];
    for (backing, cat) in &backings {
        for workers in [1usize, 2, 8] {
            // Serial baseline: the per-call path with its own cache.
            let baseline_opts = opts_for(workers, Some(Arc::new(CacheManager::new(1 << 22))));
            let expected: Vec<Value> = plans
                .iter()
                .map(|p| run_jit(p, &**cat, &baseline_opts).unwrap())
                .collect();

            let engine = Engine::new(
                cat.clone(),
                opts_for(workers, Some(Arc::new(CacheManager::new(1 << 22)))),
            );
            std::thread::scope(|scope| {
                for client in 0..4 {
                    let engine = &engine;
                    let plans = &plans;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut session = engine.session();
                        // Three passes: the second and third run against a
                        // warm cache and interner.
                        for pass in 0..3 {
                            for (i, plan) in plans.iter().enumerate() {
                                let v = session.execute(plan).unwrap();
                                assert_eq!(
                                    v, expected[i],
                                    "client {client} pass {pass} plan#{i} \
                                     ({backing}, x{workers}) deviates from serial"
                                );
                            }
                        }
                    });
                }
            });
            assert_eq!(engine.stats().queries as usize, 4 * 3 * plans.len());
        }
    }
}

/// The no-per-query-spawn claim: after engine construction, any number of
/// resident queries adds **zero** to `pool_thread_spawns`, while the
/// parallel ones attach runs to the parked pool instead.
#[test]
fn resident_queries_spawn_zero_threads() {
    let _guard = metrics_guard();
    let plans = plans();
    let cat = Arc::new(owned_catalog());
    let engine = Engine::new(cat, opts_for(2, None));
    let before = global_metrics().snapshot();
    let mut session = engine.session();
    for _ in 0..4 {
        for plan in &plans {
            session.execute(plan).unwrap();
        }
    }
    let delta = global_metrics().snapshot().since(&before);
    assert_eq!(
        delta.pool_thread_spawns, 0,
        "resident queries must not spawn per-query threads"
    );
    assert!(
        delta.pool_attached_runs > 0,
        "2-worker queries should attach runs to the parked pool"
    );
}

/// The time-slicing claim: two sessions driving the same 2-worker pool
/// from different client threads interleave at morsel granularity —
/// `pool_multiplexed_claims` (claims taken while ≥2 runs were attached)
/// goes nonzero. Scheduling noise can serialize any single round, so the
/// probe retries until the counter moves.
#[test]
fn concurrent_sessions_multiplex_one_pool() {
    let _guard = metrics_guard();
    let cat = Arc::new(owned_catalog());
    // 1-row morsels: every query becomes many claim points.
    let engine = Engine::new(
        cat,
        JitOptions {
            threads: 2,
            morsel_rows: 1,
            clamp_threads: false,
            ..Default::default()
        },
    );
    let plan = rewrite(&reduce(
        Plan::Join {
            left: Box::new(scan("A", "a")),
            right: Box::new(scan("B", "b")),
            predicate: Expr::bin(
                BinOp::Ne,
                Expr::var("a").proj("k"),
                Expr::var("b").proj("k"),
            ),
        },
        Monoid::Primitive(PrimitiveMonoid::Count),
        Expr::int(1),
    ));
    let expected = engine.execute(&plan).unwrap();

    let mut multiplexed = 0u64;
    for _round in 0..200 {
        let before = global_metrics().snapshot();
        std::thread::scope(|scope| {
            for _client in 0..2 {
                let engine = &engine;
                let plan = &plan;
                let expected = &expected;
                scope.spawn(move || {
                    let mut session = engine.session();
                    for _ in 0..4 {
                        assert_eq!(&session.execute(plan).unwrap(), expected);
                    }
                });
            }
        });
        multiplexed = global_metrics()
            .snapshot()
            .since(&before)
            .pool_multiplexed_claims;
        if multiplexed > 0 {
            break;
        }
    }
    assert!(
        multiplexed > 0,
        "two concurrent sessions never interleaved morsels on the shared pool"
    );
}
