//! Shared raw fixtures for the exec integration tests: the PR-5 fuzzer's
//! null-riddled CSV/JSON files with hostile strings (RFC 4180 escapes,
//! quoted newlines, surrogate pairs) and one nested JSON table, buildable
//! on either `RawData` backing — owned bytes via `from_bytes`, or real
//! files under `CARGO_TARGET_TMPDIR` opened through the mmap path.
//!
//! Each integration-test binary compiles its own copy of this module and
//! uses a different subset of it, so unused items are expected.
#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::Arc;
use vida_exec::MemoryCatalog;
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_formats::MapMode;
use vida_types::{CollectionKind, Schema, Type};

/// `A.s` values as parsed — each one exercises RFC 4180 quoting: an
/// embedded delimiter, a doubled-quote escape, and a quoted newline.
pub const COLORS: [&str; 3] = ["re,d", "gr\"een", "bl\nue"];
/// `A.s` raw CSV fields encoding [`COLORS`].
pub const COLORS_RAW: [&str; 3] = ["\"re,d\"", "\"gr\"\"een\"", "\"bl\nue\""];

/// `B.s` values as parsed — astral-plane and BMP chars.
pub const EMOJIS: [&str; 3] = ["\u{1F600}!", "snow\u{2603}", "plain"];
/// `B.s` raw JSON string bodies encoding [`EMOJIS`]: the astral char as a
/// `\uXXXX` surrogate pair, the BMP char as a single escape.
pub const EMOJIS_RAW: [&str; 3] = ["\\ud83d\\ude00!", "snow\\u2603", "plain"];

/// `A(k, x, f, s)` raw CSV bytes: x is null (empty field) on every 5th-ish
/// row; f is dyadic; s carries the quoted/escaped strings, so every scan
/// (serial and morsel-aligned parallel) runs through the quote-aware
/// format layer.
pub fn csv_a_bytes() -> Vec<u8> {
    csv_a_rows(0, 16)
}

/// Rows `lo..hi` of the `A` fixture — the suffix is appendable to a file
/// holding rows `0..lo` (the append-mutation fuzzer grows fixtures with
/// the same row formulas the cold oracle regenerates).
pub fn csv_a_rows(lo: i64, hi: i64) -> Vec<u8> {
    let mut csv = if lo == 0 {
        String::from("k,x,f,s\n")
    } else {
        String::new()
    };
    for i in lo..hi {
        let x = if i % 5 == 3 {
            String::new()
        } else {
            ((i * 3) % 20).to_string()
        };
        let f = (i % 16) as f64 / 16.0;
        let s = COLORS_RAW[(i % 3) as usize];
        csv.push_str(&format!("{i},{x},{f},{s}\n"));
    }
    csv.into_bytes()
}

pub fn a_schema() -> Schema {
    Schema::from_pairs([
        ("k", Type::Int),
        ("x", Type::Int),
        ("f", Type::Float),
        ("s", Type::Str),
    ])
}

/// `B(k, y, s)` raw newline-delimited JSON bytes: duplicate keys
/// (k = i % 8), nulls in y, and surrogate-pair-escaped strings in s.
pub fn json_b_bytes() -> Vec<u8> {
    json_b_rows(0, 12)
}

/// Rows `lo..hi` of the `B` fixture (see [`csv_a_rows`]).
pub fn json_b_rows(lo: i64, hi: i64) -> Vec<u8> {
    let mut json = String::new();
    for i in lo..hi {
        let y = if i % 7 == 2 {
            "null".to_string()
        } else {
            ((i * 5) % 30).to_string()
        };
        let s = EMOJIS_RAW[(i % 3) as usize];
        json.push_str(&format!("{{\"k\":{},\"y\":{y},\"s\":\"{s}\"}}\n", i % 8));
    }
    json.into_bytes()
}

pub fn b_schema() -> Schema {
    Schema::from_pairs([("k", Type::Int), ("y", Type::Int), ("s", Type::Str)])
}

/// `N(id, xs, ys, mat)` raw nested JSON bytes: scalar lists, record lists
/// (with an occasional null element field), and lists of lists.
pub fn json_n_bytes() -> Vec<u8> {
    json_n_rows(0, 10)
}

/// Rows `lo..hi` of the nested `N` fixture (see [`csv_a_rows`]).
pub fn json_n_rows(lo: i64, hi: i64) -> Vec<u8> {
    let mut json = String::new();
    for i in lo..hi {
        let xs: Vec<String> = (0..(i % 4)).map(|j| (i + 2 * j).to_string()).collect();
        let ys: Vec<String> = (0..(i % 3))
            .map(|j| {
                let u = if (i + j) % 6 == 4 {
                    "null".to_string()
                } else {
                    (i + j).to_string()
                };
                // Forced decimals keep w a Float at parse time; eighths are
                // exact in both decimal and binary.
                format!("{{\"u\":{u},\"w\":{:.4}}}", ((i + j) % 8) as f64 / 8.0)
            })
            .collect();
        let mat: Vec<String> = (0..(i % 3))
            .map(|j| {
                let inner: Vec<String> = ((i + j) % 3..3).map(|v| v.to_string()).collect();
                format!("[{}]", inner.join(","))
            })
            .collect();
        json.push_str(&format!(
            "{{\"id\":{i},\"xs\":[{}],\"ys\":[{}],\"mat\":[{}]}}\n",
            xs.join(","),
            ys.join(","),
            mat.join(",")
        ));
    }
    json.into_bytes()
}

pub fn n_schema() -> Schema {
    let rec_ty = Type::record([("u", Type::Int), ("w", Type::Float)]);
    Schema::from_pairs([
        ("id", Type::Int),
        (
            "xs",
            Type::Collection(CollectionKind::List, Box::new(Type::Int)),
        ),
        (
            "ys",
            Type::Collection(CollectionKind::List, Box::new(rec_ty)),
        ),
        (
            "mat",
            Type::Collection(
                CollectionKind::List,
                Box::new(Type::Collection(CollectionKind::List, Box::new(Type::Int))),
            ),
        ),
    ])
}

/// The fixture catalog over owned in-memory bytes (`RawData::Owned`).
pub fn owned_catalog() -> MemoryCatalog {
    let cat = MemoryCatalog::new();
    let a = CsvFile::from_bytes("A", csv_a_bytes(), b',', true, a_schema()).unwrap();
    cat.register(Arc::new(CsvPlugin::new(a)));
    let b = JsonFile::from_bytes("B", json_b_bytes(), b_schema()).unwrap();
    cat.register(Arc::new(JsonPlugin::new(b)));
    let n = JsonFile::from_bytes("N", json_n_bytes(), n_schema()).unwrap();
    cat.register(Arc::new(JsonPlugin::new(n)));
    cat
}

/// Write fixture `name` into `CARGO_TARGET_TMPDIR`, namespaced by `tag` so
/// concurrently-running tests never race on a path.
pub fn fixture_path(tag: &str, name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("exec_fixture_{tag}_{name}"))
}

/// The same catalog over real files opened with an explicit backing
/// policy: `MapMode::Auto` maps the files (`RawData::Mapped` on unix),
/// `MapMode::Never` reads them into owned buffers.
pub fn file_catalog(tag: &str, mode: MapMode) -> MemoryCatalog {
    let a_path = fixture_path(tag, "A.csv");
    let b_path = fixture_path(tag, "B.json");
    let n_path = fixture_path(tag, "N.json");
    std::fs::write(&a_path, csv_a_bytes()).unwrap();
    std::fs::write(&b_path, json_b_bytes()).unwrap();
    std::fs::write(&n_path, json_n_bytes()).unwrap();

    let cat = MemoryCatalog::new();
    let a = CsvFile::open_with("A", &a_path, b',', true, a_schema(), mode).unwrap();
    cat.register(Arc::new(CsvPlugin::new(a)));
    let b = JsonFile::open_with("B", &b_path, b_schema(), mode).unwrap();
    cat.register(Arc::new(JsonPlugin::new(b)));
    let n = JsonFile::open_with("N", &n_path, n_schema(), mode).unwrap();
    cat.register(Arc::new(JsonPlugin::new(n)));
    cat
}
