//! Four-engine differential tests over raw CSV and JSON fixtures.
//!
//! The same comprehension is evaluated by:
//! 1. the calculus reference interpreter (`vida_lang::eval`),
//! 2. the naive algebra interpreter (`vida_algebra::execute_plan`),
//! 3. the interpreted Volcano engine (`run_volcano`),
//! 4. the JIT pipeline engine (`run_jit`, with and without a cache),
//!
//! and all five results must agree. The engines share only the input
//! plugins, so agreement is strong evidence that lowering, rewriting,
//! kernel compilation, hash/theta joins, unnest stages, and cache reads all
//! preserve the calculus semantics. (The seeded random-plan sweep lives in
//! `fuzz_differential.rs`; this file holds the curated fixtures.)

use std::sync::Arc;
use vida_algebra::{execute_plan, lower, rewrite};
use vida_cache::CacheManager;
use vida_exec::{run_jit, run_volcano, JitOptions, MemoryCatalog, SourceProvider};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_lang::{eval, parse, Bindings};
use vida_types::{Schema, Type, Value};

/// Catalog over raw bytes: `Patients` parses from CSV text, `Genetics` and
/// the nested `Regions` from newline-delimited JSON — the text formats of
/// the paper's workload, including a genuinely nested array column.
fn catalog() -> MemoryCatalog {
    let cat = MemoryCatalog::new();
    let csv_data = b"id,age,city\n\
                     1,71,geneva\n\
                     2,34,bern\n\
                     3,65,geneva\n\
                     4,52,zurich\n\
                     5,29,bern\n"
        .to_vec();
    let csv = CsvFile::from_bytes(
        "Patients",
        csv_data,
        b',',
        true,
        Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)]),
    )
    .expect("csv fixture parses");
    cat.register(Arc::new(CsvPlugin::new(csv)));

    let json_data = b"{\"id\":1,\"snp\":0.9}\n\
                      {\"id\":2,\"snp\":0.1}\n\
                      {\"id\":3,\"snp\":0.5}\n\
                      {\"id\":4,\"snp\":0.7}\n\
                      {\"id\":5,\"snp\":0.2}\n"
        .to_vec();
    let json = JsonFile::from_bytes(
        "Genetics",
        json_data,
        Schema::from_pairs([("id", Type::Int), ("snp", Type::Float)]),
    )
    .expect("json fixture parses");
    cat.register(Arc::new(JsonPlugin::new(json)));

    let regions_data = b"{\"id\":1,\"voxels\":[3,15,7]}\n\
                         {\"id\":2,\"voxels\":[]}\n\
                         {\"id\":3,\"voxels\":[22,4]}\n\
                         {\"id\":4,\"voxels\":[11]}\n"
        .to_vec();
    let regions = JsonFile::from_bytes(
        "Regions",
        regions_data,
        Schema::from_pairs([
            ("id", Type::Int),
            (
                "voxels",
                Type::Collection(vida_types::CollectionKind::List, Box::new(Type::Int)),
            ),
        ]),
    )
    .expect("regions fixture parses");
    cat.register(Arc::new(JsonPlugin::new(regions)));
    cat
}

/// Run one query through all engines and assert agreement; returns the
/// agreed value for spot checks.
fn differential(q: &str) -> Value {
    let cat = catalog();
    let expr = parse(q).unwrap_or_else(|e| panic!("{q}: {e}"));

    // Oracle 1: direct calculus interpretation over materialized datasets.
    let mut env = Bindings::new();
    for name in cat.dataset_names() {
        env.insert(name.clone(), cat.materialize(&name).expect("materializes"));
    }
    let direct = eval(&expr, &env).unwrap_or_else(|e| panic!("eval {q}: {e}"));

    let plan = rewrite(&lower(&expr).expect("lowers"));

    // Oracle 2: naive algebra interpreter.
    let algebra = execute_plan(&plan, &env).unwrap_or_else(|e| panic!("algebra {q}: {e}"));
    assert_eq!(algebra, direct, "algebra deviates for {q}");

    // Engine 3: interpreted Volcano over the plugins.
    let volcano = run_volcano(&plan, &cat).unwrap_or_else(|e| panic!("volcano {q}: {e}"));
    assert_eq!(volcano, direct, "volcano deviates for {q}");

    // Engine 4: JIT pipelines, cold.
    let jit =
        run_jit(&plan, &cat, &JitOptions::default()).unwrap_or_else(|e| panic!("jit {q}: {e}"));
    assert_eq!(jit, direct, "jit deviates for {q}");

    // Engine 4 again through a cache: first run populates, second is served
    // from cached column replicas — the result must not change.
    let opts = JitOptions::with_cache(Arc::new(CacheManager::new(1 << 20)));
    let warm1 = run_jit(&plan, &cat, &opts).unwrap_or_else(|e| panic!("jit+cache {q}: {e}"));
    let warm2 = run_jit(&plan, &cat, &opts).unwrap_or_else(|e| panic!("jit warm {q}: {e}"));
    assert_eq!(warm1, direct, "jit with cold cache deviates for {q}");
    assert_eq!(warm2, direct, "jit with warm cache deviates for {q}");

    direct
}

// --- CSV source ----------------------------------------------------------

#[test]
fn csv_set_monoid() {
    let v = differential("for { p <- Patients, p.age > 30 } yield set p.city");
    assert_eq!(v.elements().unwrap().len(), 3); // geneva, zurich dedup'd
}

#[test]
fn csv_bag_monoid() {
    let v = differential(
        "for { p <- Patients, p.city = \"geneva\" } yield bag (id := p.id, a := p.age)",
    );
    assert_eq!(v.elements().unwrap().len(), 2);
}

#[test]
fn csv_list_monoid() {
    let v = differential("for { p <- Patients, p.age < 60 } yield list p.id");
    assert_eq!(
        v.elements().unwrap(),
        &[Value::Int(2), Value::Int(4), Value::Int(5)]
    );
}

#[test]
fn csv_aggregates() {
    assert_eq!(
        differential("for { p <- Patients } yield max p.age"),
        Value::Int(71)
    );
    assert_eq!(
        differential("for { p <- Patients, p.city != \"bern\" } yield count p"),
        Value::Int(3)
    );
}

// --- JSON source ---------------------------------------------------------

#[test]
fn json_set_monoid() {
    differential("for { g <- Genetics, g.snp >= 0.5 } yield set g.id");
}

#[test]
fn json_bag_monoid() {
    let v = differential("for { g <- Genetics } yield bag (i := g.id, s := g.snp)");
    assert_eq!(v.elements().unwrap().len(), 5);
}

#[test]
fn json_list_monoid() {
    differential("for { g <- Genetics, g.snp < 0.6 } yield list g.snp");
}

#[test]
fn json_aggregates() {
    assert_eq!(
        differential("for { g <- Genetics } yield sum g.snp"),
        Value::Float(0.9 + 0.1 + 0.5 + 0.7 + 0.2)
    );
    assert_eq!(
        differential("for { g <- Genetics } yield any g.snp > 0.8"),
        Value::Bool(true)
    );
}

// --- Cross-format join (CSV ⋈ JSON) --------------------------------------

#[test]
fn cross_format_join_aggregate() {
    assert_eq!(
        differential(
            "for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 60 } \
             yield sum g.snp"
        ),
        Value::Float(0.9 + 0.5)
    );
}

#[test]
fn cross_format_join_projection() {
    let v = differential(
        "for { p <- Patients, g <- Genetics, p.id = g.id, g.snp > 0.4 } \
         yield bag (city := p.city, snp := g.snp)",
    );
    assert_eq!(v.elements().unwrap().len(), 3);
}

#[test]
fn cross_format_avg_and_quantifier() {
    differential(
        "for { p <- Patients, g <- Genetics, p.id = g.id, p.city = \"geneva\" } \
         yield avg g.snp",
    );
    differential("for { p <- Patients, g <- Genetics, p.id = g.id } yield all g.snp < 1.0");
}

// --- Unnest, theta-join, and product pipelines -----------------------------
//
// These shapes took the whole-query Volcano fallback before the generated
// unnest/theta pipelines landed; they now run through `run_jit`'s compiled
// stages and must still agree with every oracle.

#[test]
fn unnest_over_nested_json_column() {
    assert_eq!(
        differential("for { r <- Regions, v <- r.voxels, v > 10 } yield sum v"),
        Value::Int(15 + 22 + 11)
    );
    let v = differential("for { r <- Regions, v <- r.voxels } yield list v");
    assert_eq!(
        v.elements().unwrap(),
        &[3, 15, 7, 22, 4, 11].map(Value::Int) as &[Value]
    );
}

#[test]
fn unnest_elements_join_flat_table() {
    differential(
        "for { r <- Regions, v <- r.voxels, g <- Genetics, v = g.id } \
         yield bag (v := v, s := g.snp)",
    );
}

#[test]
fn theta_band_join() {
    differential("for { p <- Patients, g <- Genetics, p.id < g.id } yield list g.snp");
    differential("for { p <- Patients, g <- Genetics, p.id >= g.id, p.age > 40 } yield count p");
}

#[test]
fn theta_nested_loop_join_and_product() {
    differential("for { p <- Patients, g <- Genetics, p.id != g.id, p.age > 50 } yield count g");
    differential("for { p <- Patients, g <- Genetics } yield count p");
}

#[test]
fn previously_fallback_shapes_report_zero_whole_query_fallbacks() {
    // Regression for the pipeline-coverage tentpole: the shapes above must
    // compile (no whole-query fallback), and `fallback_tuples` stays
    // reserved for null/type-mismatch tuples — of which these fixtures have
    // none on the touched columns.
    let cat = catalog();
    let cases: [(&str, u32, u32); 4] = [
        (
            "for { r <- Regions, v <- r.voxels, v > 10 } yield sum v",
            1,
            0,
        ),
        (
            "for { r <- Regions, v <- r.voxels, g <- Genetics, v = g.id } yield count v",
            1,
            0,
        ),
        (
            "for { p <- Patients, g <- Genetics, p.id < g.id } yield list g.snp",
            0,
            1,
        ),
        (
            "for { p <- Patients, g <- Genetics, p.id != g.id, p.age > 50 } yield count g",
            0,
            1,
        ),
    ];
    for (q, unnests, thetas) in cases {
        let plan = rewrite(&lower(&parse(q).unwrap()).unwrap());
        let (_, stats) = vida_exec::run_jit_with_stats(&plan, &cat, &JitOptions::default())
            .unwrap_or_else(|e| panic!("{q}: {e}"));
        assert_eq!(stats.whole_query_fallbacks, 0, "{q}: {stats:?}");
        assert_eq!(stats.unnest_pipelines, unnests, "{q}: {stats:?}");
        assert_eq!(stats.theta_pipelines, thetas, "{q}: {stats:?}");
        assert_eq!(stats.fallback_tuples, 0, "{q}: {stats:?}");
    }
}

// --- Shapes that exercise the interpreted fallback ------------------------

#[test]
fn nested_head_comprehension_agrees() {
    differential(
        "for { g <- Genetics, g.snp > 0.4 } yield list \
         (id := g.id, \
          cities := for { p <- Patients, p.id = g.id } yield list p.city)",
    );
}

#[test]
fn division_stays_interpreted_but_agrees() {
    differential("for { p <- Patients, p.age > 30 } yield sum (p.age / 2)");
}

// --- Morsel-driven parallel execution --------------------------------------
//
// The same queries through the JIT engine at 1, 2, and 8 worker threads,
// with morsels shrunk so even these fixtures split into many morsels.
// Results must be identical at every thread count and equal to the Volcano
// oracle. Float columns use dyadic rationals (k/64), whose sums are exact in
// f64 — so these tests catch real parallelism bugs (lost/duplicated tuples,
// misordered list elements, bad partitioning) rather than benign
// floating-point reassociation.

/// A larger raw-data catalog: `Patients` CSV (with some null ages) and
/// `Genetics` JSON, each `n` units.
fn big_catalog(n: usize) -> MemoryCatalog {
    let cat = MemoryCatalog::new();
    let cities = ["geneva", "bern", "zurich", "basel"];
    let mut csv = String::from("id,age,city\n");
    for i in 0..n {
        if i % 17 == 0 {
            csv.push_str(&format!("{i},,{}\n", cities[i % 4])); // null age
        } else {
            csv.push_str(&format!("{i},{},{}\n", 18 + (i * 7) % 70, cities[i % 4]));
        }
    }
    let csv = CsvFile::from_bytes(
        "Patients",
        csv.into_bytes(),
        b',',
        true,
        Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)]),
    )
    .expect("csv fixture parses");
    cat.register(Arc::new(CsvPlugin::new(csv)));

    let mut json = String::new();
    for i in 0..n {
        // Dyadic snp values: exact under any summation order.
        json.push_str(&format!(
            "{{\"id\":{i},\"snp\":{}}}\n",
            (i % 64) as f64 / 64.0
        ));
    }
    let json = JsonFile::from_bytes(
        "Genetics",
        json.into_bytes(),
        Schema::from_pairs([("id", Type::Int), ("snp", Type::Float)]),
    )
    .expect("json fixture parses");
    cat.register(Arc::new(JsonPlugin::new(json)));

    // Nested regions: ragged voxel arrays (some empty).
    let mut regions = String::new();
    for i in 0..n / 2 {
        let voxels: Vec<String> = (0..(i % 5))
            .map(|j| format!("{}", (i + 3 * j) % 40))
            .collect();
        regions.push_str(&format!(
            "{{\"id\":{i},\"voxels\":[{}]}}\n",
            voxels.join(",")
        ));
    }
    let regions = JsonFile::from_bytes(
        "Regions",
        regions.into_bytes(),
        Schema::from_pairs([
            ("id", Type::Int),
            (
                "voxels",
                Type::Collection(vida_types::CollectionKind::List, Box::new(Type::Int)),
            ),
        ]),
    )
    .expect("regions fixture parses");
    cat.register(Arc::new(JsonPlugin::new(regions)));
    cat
}

/// Run `q` at several thread counts over `big_catalog(n)`; every result
/// must equal the Volcano oracle (and hence each other). Returns the value.
fn thread_sweep(q: &str, n: usize) -> Value {
    let cat = big_catalog(n);
    let expr = parse(q).unwrap_or_else(|e| panic!("{q}: {e}"));
    let plan = rewrite(&lower(&expr).expect("lowers"));
    let oracle = run_volcano(&plan, &cat).unwrap_or_else(|e| panic!("volcano {q}: {e}"));
    for threads in [1usize, 2, 8] {
        let opts = JitOptions {
            threads,
            morsel_rows: 16,
            // The sweep must really run 2/8 workers even on a single-core
            // CI machine — these oracles are the parallel-correctness gate.
            clamp_threads: false,
            ..Default::default()
        };
        let v = run_jit(&plan, &cat, &opts).unwrap_or_else(|e| panic!("jit x{threads} {q}: {e}"));
        assert_eq!(v, oracle, "threads={threads} deviates for {q}");
    }
    oracle
}

#[test]
fn parallel_scan_aggregates_across_thread_counts() {
    thread_sweep("for { p <- Patients, p.age > 40 } yield count p", 200);
    thread_sweep("for { p <- Patients } yield max p.age", 200);
    thread_sweep("for { g <- Genetics } yield sum g.snp", 200);
    thread_sweep("for { g <- Genetics, g.snp > 0.5 } yield avg g.snp", 200);
    thread_sweep("for { p <- Patients } yield any p.age > 80", 200);
}

#[test]
fn parallel_collections_preserve_order_across_thread_counts() {
    let v = thread_sweep("for { p <- Patients, p.age < 30 } yield list p.id", 200);
    assert!(!v.elements().unwrap().is_empty());
    thread_sweep("for { p <- Patients } yield set p.city", 200);
    thread_sweep(
        "for { g <- Genetics, g.snp >= 0.75 } yield bag (i := g.id, s := g.snp)",
        200,
    );
}

#[test]
fn parallel_cross_format_hash_join_across_thread_counts() {
    thread_sweep(
        "for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 50 } yield sum g.snp",
        300,
    );
    // Null ages route probe tuples through the interpreted fallback; list
    // output additionally pins the exact pair order.
    thread_sweep(
        "for { p <- Patients, g <- Genetics, p.id = g.id, g.snp > 0.5 } yield list p.id",
        300,
    );
}

#[test]
fn parallel_unnest_and_theta_join_across_thread_counts() {
    // The new pipeline stages under the same determinism contract: raw
    // nested JSON, null-riddled probe sides, list monoids pinning order.
    thread_sweep(
        "for { r <- Regions, v <- r.voxels, v > 5 } yield list v",
        200,
    );
    thread_sweep(
        "for { r <- Regions, v <- r.voxels } yield bag (id := r.id, v := v)",
        200,
    );
    thread_sweep(
        "for { r <- Regions, v <- r.voxels, g <- Genetics, v = g.id } yield sum g.snp",
        200,
    );
    // Band sort-probe with null ages routing probes through the fallback.
    thread_sweep(
        "for { p <- Patients, g <- Genetics, p.age < g.id, g.id > 190 } yield list g.id",
        200,
    );
    // Block-nested-loop inequality join.
    thread_sweep(
        "for { p <- Patients, g <- Genetics, p.id != g.id, g.id < 4, p.id < 30 } yield count p",
        100,
    );
}

#[test]
fn parallel_warm_cache_run_is_identical() {
    let cat = big_catalog(200);
    let plan = rewrite(
        &lower(
            &parse("for { p <- Patients, g <- Genetics, p.id = g.id } yield sum g.snp").unwrap(),
        )
        .expect("lowers"),
    );
    let cache = Arc::new(CacheManager::new(8 << 20));
    let mut results = Vec::new();
    // Cold run at 8 threads populates the cache in parallel; warm runs at
    // every thread count read the same replicas.
    for threads in [8usize, 2, 1] {
        let opts = JitOptions {
            cache: Some(Arc::clone(&cache)),
            threads,
            morsel_rows: 16,
            clamp_threads: false, // force real workers on single-core CI
            ..Default::default()
        };
        let (v, stats) = vida_exec::run_jit_with_stats(&plan, &cat, &opts)
            .unwrap_or_else(|e| panic!("threads={threads}: {e}"));
        if threads != 8 {
            assert!(stats.served_from_cache, "warm run should hit the cache");
        }
        results.push(v);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    assert_eq!(results[0], run_volcano(&plan, &cat).unwrap());
}
