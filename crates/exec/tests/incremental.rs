//! Incremental re-query over growing files: the end-to-end contract.
//!
//! A resident catalog (plugins + cache + fold partials held across
//! queries, as the engine facade holds them) must never serve data the
//! backing file no longer contains, and after a pure append it must pay
//! only for the appended suffix. These tests pin the whole protocol from
//! the executor's side:
//!
//! - **stale-fingerprint regression** — mutating the file between two
//!   queries on one resident plugin yields the *fresh* answer (before the
//!   fix, fingerprints were captured once at `open_with` and never
//!   re-stat'd, so cached replicas were vouched for forever);
//! - **mutation matrix** — append / same-length in-place edit / truncate,
//!   on both raw-data backings (`MapMode::Auto` mmap and `MapMode::Never`
//!   owned buffers), at 1/2/8 worker threads, for CSV and JSON: every
//!   warm incremental result is bit-identical to a cold full re-scan of
//!   the current file (int aggregates only — exact at any merge order);
//! - **O(delta) counters** — after an append, `tail_rows_scanned` equals
//!   the appended row count, a cached fold partial is resumed
//!   (`partials_reused`), and no column is re-read from the prefix
//!   (`raw_columns == 0`);
//! - **shrink safety** — truncating a file while its pages are mmap'd
//!   must not let a later scan touch the defunct mapping (SIGBUS); the
//!   re-stat at query description time reopens before any scan runs, and
//!   the `--no-mmap` backing takes the identical protocol path.

mod common;

use common::fixture_path;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vida_algebra::{rewrite, Plan};
use vida_cache::CacheManager;
use vida_exec::{run_jit_with_stats, run_volcano, JitOptions, MemoryCatalog, SourceProvider};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_formats::MapMode;
use vida_lang::Expr;
use vida_types::{Monoid, PrimitiveMonoid, Schema, Type, Value};

// ---------------------------------------------------------------------------
// Fixture: one table T(id, v) in either format. `v` is always two digits
// so a "same-length in-place edit" is constructible by swapping values.
// ---------------------------------------------------------------------------

fn schema() -> Schema {
    Schema::from_pairs([("id", Type::Int), ("v", Type::Int)])
}

fn v_of(i: i64) -> i64 {
    10 + (i * 7) % 80
}

/// Rows `lo..hi` of the fixture. `bump` replaces row 0's value with 99 —
/// the same byte length, so only the ns-mtime distinguishes the edit.
fn csv_rows(lo: i64, hi: i64, bump: bool) -> Vec<u8> {
    let mut s = if lo == 0 {
        String::from("id,v\n")
    } else {
        String::new()
    };
    for i in lo..hi {
        let v = if bump && i == 0 { 99 } else { v_of(i) };
        s.push_str(&format!("{i},{v}\n"));
    }
    s.into_bytes()
}

fn json_rows(lo: i64, hi: i64, bump: bool) -> Vec<u8> {
    let mut s = String::new();
    for i in lo..hi {
        let v = if bump && i == 0 { 99 } else { v_of(i) };
        s.push_str(&format!("{{\"id\":{i},\"v\":{v}}}\n"));
    }
    s.into_bytes()
}

fn rows_for(format: &str, lo: i64, hi: i64, bump: bool) -> Vec<u8> {
    match format {
        "csv" => csv_rows(lo, hi, bump),
        _ => json_rows(lo, hi, bump),
    }
}

fn open_plugin(format: &str, path: &Path, mode: MapMode) -> Arc<dyn vida_formats::InputPlugin> {
    match format {
        "csv" => Arc::new(CsvPlugin::new(
            CsvFile::open_with("T", path, b',', true, schema(), mode).unwrap(),
        )),
        _ => Arc::new(JsonPlugin::new(
            JsonFile::open_with("T", path, schema(), mode).unwrap(),
        )),
    }
}

/// (len, ns-mtime) as the executor sees it — for the edit deadline loop.
fn fp(path: &Path) -> (u64, u64) {
    let md = std::fs::metadata(path).unwrap();
    let ns = md
        .modified()
        .unwrap()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64;
    (md.len(), ns)
}

/// Rewrite `path` until the fingerprint moves. A same-length rewrite is
/// only visible through the ns-mtime, and the kernel file clock ticks
/// coarsely — so rewrite in a bounded loop instead of sleeping once.
fn rewrite_until_fingerprint_moves(path: &Path, bytes: &[u8]) {
    let before = fp(path);
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        std::fs::write(path, bytes).unwrap();
        if fp(path) != before {
            return;
        }
        assert!(Instant::now() < deadline, "file clock never advanced");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn append(path: &Path, bytes: &[u8]) {
    use std::io::Write;
    let mut fh = std::fs::OpenOptions::new().append(true).open(path).unwrap();
    fh.write_all(bytes).unwrap();
}

/// Aggregates that are exact at every merge order — the matrix demands
/// bit-identity between incremental and cold execution.
fn plans() -> Vec<(&'static str, Plan)> {
    let reduce = |monoid, head| Plan::Reduce {
        input: Box::new(Plan::Scan {
            dataset: "T".into(),
            binding: "t".into(),
        }),
        monoid: Monoid::Primitive(monoid),
        head,
    };
    vec![
        (
            "sum v",
            reduce(PrimitiveMonoid::Sum, Expr::var("t").proj("v")),
        ),
        ("count", reduce(PrimitiveMonoid::Count, Expr::int(1))),
        (
            "max v",
            reduce(PrimitiveMonoid::Max, Expr::var("t").proj("v")),
        ),
    ]
}

/// The cold oracle: a fresh plugin over the file's *current* bytes, no
/// cache, interpreted Volcano engine.
fn cold_rescan(plan: &Plan, format: &str, path: &Path) -> Value {
    let cat = MemoryCatalog::new();
    cat.register(open_plugin(format, path, MapMode::Never));
    run_volcano(plan, &cat).unwrap()
}

// ---------------------------------------------------------------------------
// The mutation matrix
// ---------------------------------------------------------------------------

/// append / edit / truncate × {mmap, no-mmap} × {1, 2, 8} threads × {csv,
/// json}: every warm result on the resident catalog is bit-identical to a
/// cold full re-scan of the file as it stands.
#[test]
fn mutation_matrix_matches_cold_rescan() {
    for (mode, mode_tag) in [(MapMode::Auto, "mmap"), (MapMode::Never, "nommap")] {
        for threads in [1usize, 2, 8] {
            for format in ["csv", "json"] {
                let tag = format!("inc_{mode_tag}_{threads}");
                let name = format!("T.{format}");
                let path = fixture_path(&tag, &name);
                std::fs::write(&path, rows_for(format, 0, 24, false)).unwrap();

                let cat = MemoryCatalog::new();
                cat.register(open_plugin(format, &path, mode));
                let opts = JitOptions {
                    cache: Some(Arc::new(CacheManager::new(1 << 20))),
                    threads,
                    morsel_rows: 4,
                    clamp_threads: false,
                    ..Default::default()
                };
                let ctx = |what: &str, plan: &str| {
                    format!("{format} [{mode_tag} x{threads}] {what}: {plan}")
                };

                // Cold pass warms replicas and fold partials.
                for (what, raw) in plans() {
                    let plan = rewrite(&raw);
                    let (v, _) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
                    assert_eq!(
                        v,
                        cold_rescan(&plan, format, &path),
                        "{}",
                        ctx("cold", what)
                    );
                }

                // Append: grow by 8 rows, results must match a cold
                // re-scan and the engine may only scan the tail.
                append(&path, &rows_for(format, 24, 32, false));
                for (i, (what, raw)) in plans().into_iter().enumerate() {
                    let plan = rewrite(&raw);
                    let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
                    assert_eq!(
                        v,
                        cold_rescan(&plan, format, &path),
                        "{}",
                        ctx("after append", what)
                    );
                    if i == 0 {
                        // Only the first query after the append sees the
                        // Extended verdict (it installs the fresh plugin);
                        // it must pay for exactly the appended suffix.
                        assert_eq!(
                            stats.tail_rows_scanned,
                            8,
                            "{}",
                            ctx("tail scan width", what)
                        );
                        assert_eq!(stats.raw_columns, 0, "{}", ctx("prefix re-read", what));
                    }
                }

                // Same-length in-place edit: only the ns-mtime changes.
                // Serving the cached answer here is the PR's headline bug.
                rewrite_until_fingerprint_moves(&path, &rows_for(format, 0, 32, true));
                for (what, raw) in plans() {
                    let plan = rewrite(&raw);
                    let (v, _) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
                    assert_eq!(
                        v,
                        cold_rescan(&plan, format, &path),
                        "{}",
                        ctx("after edit", what)
                    );
                }

                // Truncate to 6 rows: full invalidation + re-scan, and on
                // the mmap backing the old (longer) mapping must not be
                // touched by the new scans.
                rewrite_until_fingerprint_moves(&path, &rows_for(format, 0, 6, false));
                for (what, raw) in plans() {
                    let plan = rewrite(&raw);
                    let (v, _) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
                    assert_eq!(
                        v,
                        cold_rescan(&plan, format, &path),
                        "{}",
                        ctx("after truncate", what)
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stale-fingerprint regression (the headline bugfix)
// ---------------------------------------------------------------------------

/// Two queries on one resident plugin with the file mutated in between:
/// the second answer must reflect the file, not the cache. On pre-fix
/// code the plugin's open-time fingerprint kept matching the replica's,
/// so the stale sum came back from cache and this test fails.
#[test]
fn resident_catalog_serves_fresh_data_after_disk_edit() {
    let path = fixture_path("stale_fp", "T.csv");
    std::fs::write(&path, b"id,v\n1,10\n2,20\n").unwrap();
    let cat = MemoryCatalog::new();
    cat.register(open_plugin("csv", &path, MapMode::Auto));
    let opened_fp = cat.plugin("T").unwrap().fingerprint();
    let opts = JitOptions::with_cache(Arc::new(CacheManager::new(1 << 20)));

    let plan = rewrite(&plans()[0].1);
    let (v1, _) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
    assert_eq!(v1, Value::Int(30));

    // Same-length edit — only the ns-mtime can betray it.
    rewrite_until_fingerprint_moves(&path, b"id,v\n1,10\n2,99\n");
    let (v2, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
    assert_eq!(v2, Value::Int(109), "stale cached sum served after edit");
    assert!(!stats.served_from_cache, "edit must invalidate the replica");
    // Revalidation installed the reopened plugin: the catalog now vouches
    // for the current file generation, not the open-time one.
    assert_ne!(cat.plugin("T").unwrap().fingerprint(), opened_fp);

    // And a third run serves the refreshed replica from cache again.
    let (v3, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
    assert_eq!(v3, Value::Int(109));
    assert!(stats.served_from_cache);
}

// ---------------------------------------------------------------------------
// O(delta) counters
// ---------------------------------------------------------------------------

/// After an append, the warm re-query resumes the cached fold partial and
/// scans exactly the appended rows; once the replicas are refreshed, the
/// next unchanged run is a plain full cache hit again.
#[test]
fn append_requery_scans_only_the_tail() {
    for threads in [1usize, 8] {
        let path = fixture_path(&format!("odelta_{threads}"), "T.csv");
        std::fs::write(&path, csv_rows(0, 64, false)).unwrap();
        let cat = MemoryCatalog::new();
        cat.register(open_plugin("csv", &path, MapMode::Auto));
        let opts = JitOptions {
            cache: Some(Arc::new(CacheManager::new(1 << 20))),
            threads,
            morsel_rows: 4,
            clamp_threads: false,
            ..Default::default()
        };
        let plan = rewrite(&plans()[0].1);
        let expected_cold: i64 = (0..64).map(v_of).sum();
        let expected_warm: i64 = (0..68).map(v_of).sum();

        // Cold: full raw scan, nothing incremental yet.
        let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v, Value::Int(expected_cold));
        assert_eq!(stats.tail_rows_scanned, 0, "x{threads}");
        assert_eq!(stats.partials_reused, 0, "x{threads}");
        assert!(stats.raw_columns > 0, "x{threads}");

        // Append 4 rows; the warm run pays for 4 rows, not 68.
        append(&path, &csv_rows(64, 68, false));
        let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v, Value::Int(expected_warm), "x{threads}");
        assert_eq!(stats.tail_rows_scanned, 4, "x{threads}: tail width");
        assert_eq!(stats.partials_reused, 1, "x{threads}: fold not resumed");
        assert_eq!(stats.raw_columns, 0, "x{threads}: prefix re-read raw");

        // Unchanged third run: ordinary full cache service.
        let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v, Value::Int(expected_warm), "x{threads}");
        assert!(stats.served_from_cache, "x{threads}");
        assert_eq!(stats.tail_rows_scanned, 0, "x{threads}");
        assert_eq!(stats.partials_reused, 0, "x{threads}");
    }
}

// ---------------------------------------------------------------------------
// Shrink safety
// ---------------------------------------------------------------------------

/// Truncating a file while a resident plugin holds its mmap must not let
/// any later scan touch pages past the new EOF (SIGBUS on unix). The
/// description-time re-stat reopens the file before scans run; the
/// `--no-mmap` backing runs the same protocol over owned buffers.
#[test]
fn truncation_while_resident_is_safe_on_both_backings() {
    for (mode, mode_tag) in [(MapMode::Auto, "mmap"), (MapMode::Never, "nommap")] {
        let path = fixture_path(&format!("shrink_{mode_tag}"), "T.csv");
        std::fs::write(&path, csv_rows(0, 512, false)).unwrap();
        let cat = MemoryCatalog::new();
        cat.register(open_plugin("csv", &path, mode));
        #[cfg(unix)]
        assert_eq!(cat.plugin("T").unwrap().is_mapped(), mode == MapMode::Auto);
        let opts = JitOptions {
            cache: Some(Arc::new(CacheManager::new(1 << 20))),
            threads: 2,
            morsel_rows: 8,
            clamp_threads: false,
            ..Default::default()
        };
        let plan = rewrite(&plans()[0].1);
        let (v, _) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v, Value::Int((0..512).map(v_of).sum()), "{mode_tag}");

        // Shrink far below the mapped length, then query the resident
        // catalog: scans must only see the reopened 3-row file.
        rewrite_until_fingerprint_moves(&path, &csv_rows(0, 3, false));
        let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v, Value::Int((0..3).map(v_of).sum()), "{mode_tag}");
        assert!(
            !stats.served_from_cache,
            "{mode_tag}: shrunk file from cache"
        );
        assert_eq!(cat.plugin("T").unwrap().num_units(), 3, "{mode_tag}");
    }
}
