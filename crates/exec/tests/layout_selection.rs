//! Layout-selection differential tests: the same query must produce the
//! same result whichever cache layout serves its columns.
//!
//! Two angles:
//!
//! 1. **Forced layouts** — replicas of every touched field are pre-seeded
//!    in one specific layout (`Values`, `BinaryJson`, or `Positions`) and
//!    the warm run must agree with the Volcano oracle. This pins the
//!    rehydration paths (in-memory decode, exact-seek span parses)
//!    independently of what the cost model would pick.
//! 2. **Adaptive selection** — a query mix runs repeatedly with the
//!    [`CostModel`] steering replica layouts; results must be identical
//!    run over run, and the acceptance property of the §5 reproduction
//!    holds: after two runs of the same mix the cache contains at least
//!    one non-`Values` replica chosen by the model, and `get_any` in model
//!    preference order serves it.

use std::sync::Arc;
use vida_cache::{CacheKey, CacheManager, CachedData, Layout};
use vida_exec::{run_jit, run_jit_with_stats, run_volcano, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_formats::InputPlugin;
use vida_lang::parse;
use vida_optimizer::{CostModel, STORABLE_LAYOUTS};
use vida_types::{Schema, Type, Value};

fn patients_csv() -> CsvPlugin {
    let mut data = String::from("id,age,city\n");
    let cities = ["geneva", "bern", "zurich", "basel"];
    for i in 0..40 {
        data.push_str(&format!("{i},{},{}\n", 20 + (i * 7) % 60, cities[i % 4]));
    }
    CsvPlugin::new(
        CsvFile::from_bytes(
            "Patients",
            data.into_bytes(),
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)]),
        )
        .expect("csv fixture parses"),
    )
}

fn genetics_json() -> JsonPlugin {
    let mut data = String::new();
    for i in 0..40 {
        data.push_str(&format!(
            "{{\"id\":{i},\"snp\":{:.3}}}\n",
            ((i * 37) % 100) as f64 / 100.0
        ));
    }
    JsonPlugin::new(
        JsonFile::from_bytes(
            "Genetics",
            data.into_bytes(),
            Schema::from_pairs([("id", Type::Int), ("snp", Type::Float)]),
        )
        .expect("json fixture parses"),
    )
}

fn plan_of(q: &str) -> vida_algebra::Plan {
    vida_algebra::rewrite(&vida_algebra::lower(&parse(q).expect("parses")).expect("lowers"))
}

/// Seed `cache` with a replica of every column of `plugin` in `layout`.
/// Positions replicas are built from the plugin's field byte spans.
fn seed_replicas(cache: &CacheManager, plugin: &dyn InputPlugin, layout: Layout) {
    let schema = plugin.schema().clone();
    let nrows = plugin.num_units();
    for (col, field) in schema.fields().iter().enumerate() {
        let data = match layout {
            Layout::Positions => {
                let spans = (0..nrows)
                    .map(|row| {
                        plugin
                            .field_byte_span(row, col)
                            .expect("span lookup")
                            .expect("text formats report spans")
                    })
                    .collect();
                CachedData::Positions(spans)
            }
            layout => {
                let mut vals = Vec::with_capacity(nrows);
                plugin
                    .scan_project(&[col], &mut |_, mut v| {
                        vals.push(v.pop().expect("one value"));
                        Ok(())
                    })
                    .expect("scan");
                CachedData::from_values(&vals, layout).expect("converts")
            }
        };
        cache.put(
            CacheKey::new(plugin.name(), field.name.clone(), layout),
            data,
            plugin.fingerprint(),
        );
    }
}

const QUERIES: &[&str] = &[
    "for { p <- Patients, p.age > 40 } yield count p",
    "for { p <- Patients } yield max p.age",
    "for { p <- Patients, p.age < 50 } yield list p.id",
    "for { p <- Patients, p.age > 30 } yield set p.city",
    "for { g <- Genetics, g.snp > 0.5 } yield avg g.snp",
    "for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 35 } yield sum g.snp",
    "for { p <- Patients, g <- Genetics, p.id = g.id } yield bag (a := p.age, s := g.snp)",
];

#[test]
fn every_forced_layout_agrees_with_the_oracle() {
    for layout in STORABLE_LAYOUTS {
        // Fresh plugins per layout so positional structures never leak
        // state between sub-cases.
        let cat = MemoryCatalog::new();
        let patients = Arc::new(patients_csv());
        let genetics = Arc::new(genetics_json());
        cat.register(Arc::clone(&patients) as Arc<dyn InputPlugin>);
        cat.register(Arc::clone(&genetics) as Arc<dyn InputPlugin>);

        let cache = Arc::new(CacheManager::new(8 << 20));
        seed_replicas(&cache, patients.as_ref(), layout);
        seed_replicas(&cache, genetics.as_ref(), layout);
        // A model whose preference order will find the seeded layout.
        let opts = JitOptions::with_cost_model(Arc::clone(&cache), Arc::new(CostModel::new()));

        for q in QUERIES {
            let plan = plan_of(q);
            let oracle = run_volcano(&plan, &cat).expect("volcano");
            let (v, stats) = run_jit_with_stats(&plan, &cat, &opts)
                .unwrap_or_else(|e| panic!("{layout:?} {q}: {e}"));
            assert_eq!(v, oracle, "layout {layout:?} deviates for {q}");
            assert!(
                stats.cached_columns > 0 && stats.raw_columns == 0,
                "layout {layout:?} not served from cache for {q}: {stats:?}"
            );
        }
    }
}

#[test]
fn forced_layouts_agree_under_parallel_decode() {
    // The morselized warm-cache decode must produce identical columns: run
    // each forced layout at 1 and 4 workers and compare.
    for layout in STORABLE_LAYOUTS {
        let cat = MemoryCatalog::new();
        let patients = Arc::new(patients_csv());
        cat.register(Arc::clone(&patients) as Arc<dyn InputPlugin>);
        let cache = Arc::new(CacheManager::new(8 << 20));
        seed_replicas(&cache, patients.as_ref(), layout);

        let plan = plan_of("for { p <- Patients, p.age > 25 } yield list p.city");
        let mut results = Vec::new();
        for threads in [1usize, 4] {
            let opts = JitOptions {
                cache: Some(Arc::clone(&cache)),
                cost_model: Some(Arc::new(CostModel::new())),
                threads,
                morsel_rows: 8,
                clamp_threads: false, // force multi-worker decode coverage
                ..Default::default()
            };
            results.push(run_jit(&plan, &cat, &opts).expect("runs"));
        }
        assert_eq!(
            results[0], results[1],
            "parallel decode deviates for {layout:?}"
        );
    }
}

#[test]
fn adaptive_selection_is_stable_and_reshapes_at_least_one_field() {
    // The §5 acceptance property: run the same query mix twice with the
    // cost model under a tight budget; results are identical, and the cache
    // ends up holding a model-chosen non-Values replica that get_any
    // serves. A wide text column makes parsed values unaffordable.
    let mut csv = String::from("id,age,notes\n");
    for i in 0..64 {
        csv.push_str(&format!("{i},{},{}\n", 20 + i % 60, "n".repeat(150)));
    }
    let cat = MemoryCatalog::new();
    cat.register(Arc::new(CsvPlugin::new(
        CsvFile::from_bytes(
            "Visits",
            csv.into_bytes(),
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("notes", Type::Str)]),
        )
        .expect("csv fixture parses"),
    )));

    let cache = Arc::new(CacheManager::new(16 << 10));
    let model = Arc::new(CostModel::new());
    let opts = JitOptions::with_cost_model(Arc::clone(&cache), Arc::clone(&model));
    let mix = [
        "for { v <- Visits, v.age > 30 } yield count v.notes",
        "for { v <- Visits } yield max v.age",
        "for { v <- Visits, v.id < 32 } yield count v.notes",
    ];

    let run_mix = || -> Vec<Value> {
        mix.iter()
            .map(|q| run_jit(&plan_of(q), &cat, &opts).expect("runs"))
            .collect()
    };
    let first = run_mix();
    let second = run_mix();
    assert_eq!(first, second, "adaptive layouts changed query results");

    // At least one non-Values replica chosen by the model is in the cache…
    let non_values: usize = cache
        .layout_counts()
        .iter()
        .filter(|(l, _)| *l != Layout::Values)
        .map(|(_, n)| n)
        .sum();
    assert!(
        non_values > 0,
        "expected a non-Values replica, cache holds {:?}",
        cache.layout_counts()
    );
    // …and get_any in model preference order serves it.
    let pref = model.read_preference("Visits", "notes", 0.0);
    let (served, _) = cache
        .get_any("Visits", "notes", &pref)
        .expect("notes replica exists");
    assert_ne!(served, Layout::Values, "model should have re-shaped notes");

    // A third pass still agrees and is served from the cache.
    for q in &mix {
        let plan = plan_of(q);
        let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).expect("runs");
        assert_eq!(v, first[mix.iter().position(|m| m == q).unwrap()]);
        assert!(stats.served_from_cache, "{q}: {stats:?}");
    }
}
