//! Seeded differential query fuzzer.
//!
//! Each fixed seed drives a deterministic xorshift generator through ~200
//! random algebra plans spanning *every* pipeline shape: scans, selects,
//! equi / theta / product joins, left-deep and bushy join trees, single and
//! chained unnests over nested columns (scalar, record, and
//! list-of-list elements), and every monoid — over null-riddled **raw
//! CSV/JSON files** whose strings exercise the format layer's hard cases:
//! RFC 4180 doubled-quote escapes, embedded delimiters, quoted newlines
//! (morsel alignment must be quote-aware), and astral-plane `\uXXXX`
//! surrogate pairs.
//! Every plan runs through three independent evaluators:
//!
//! 1. the interpreted Volcano engine (`run_volcano`) — the oracle,
//! 2. the naive algebra interpreter (`execute_plan`),
//! 3. the JIT pipelines (`run_jit`) at 1, 2, and 8 worker threads with
//!    shrunken morsels,
//!
//! and all results must agree (when the oracle errors — e.g. a plan the
//! generator built over a path that is not a collection — the JIT engine
//! must error too). The JIT sweep runs on **both raw-data backings**: the
//! owned in-memory fixture bytes and the same bytes as mmap'd files — the
//! backing must be unobservable — and with the cost-based plan optimizer
//! **on and off** (`JitOptions::plan_opt`): join reordering, build-side
//! swaps, and conjunct reordering must never change a result, and the
//! matrix asserts the optimizer-on leg actually reorders plans (a sweep
//! that never triggers the optimizer would pin nothing). Because every
//! generated shape is inside the pipeline coverage, the fuzzer also
//! asserts that **no plan takes the whole-query Volcano fallback**
//! (unnests, theta joins, bushy trees, and *reordered* joins all compile)
//! and that **no stage materializes an inter-operator `Vec<Tuple>`**
//! (`ExecStats::operator_materializations == 0`: the streaming push loop
//! fuses every chain end to end).
//!
//! Seeds are fixed in code, so a failure replays exactly: the panic message
//! carries the seed, the plan index, and the plan itself.
//!
//! Float columns hold dyadic rationals (k/16), whose sums are exact in
//! `f64` at any merge order — so thread-count sweeps catch real
//! parallelism bugs rather than benign reassociation ulps.

mod common;

use common::{
    a_schema, b_schema, csv_a_rows, file_catalog, fixture_path, json_b_rows, json_n_rows, n_schema,
    owned_catalog, COLORS, EMOJIS,
};
use std::sync::Arc;
use vida_algebra::{execute_plan, rewrite, Plan};
use vida_cache::CacheManager;
use vida_exec::{
    run_jit_with_stats, run_volcano, Engine, JitOptions, MemoryCatalog, SourceProvider,
};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_formats::MapMode;
use vida_lang::{BinOp, Bindings, Expr};
use vida_types::{CollectionKind, Monoid, PrimitiveMonoid, Value};
use vida_workload::Rng;

/// Seeds for the fuzz matrix; CI runs the same set in release mode.
const SEEDS: [u64; 3] = [0xDEC0DE, 42, 7];
/// Plans generated per seed.
const PLANS_PER_SEED: usize = 200;

// ---------------------------------------------------------------------------
// Fixture catalogs — built in tests/common: raw CSV/JSON files
// (null-riddled, with hostile strings) and one nested JSON table, on the
// owned-bytes backing and as mmap'd files under CARGO_TARGET_TMPDIR.
// ---------------------------------------------------------------------------

fn catalog() -> MemoryCatalog {
    owned_catalog()
}

// ---------------------------------------------------------------------------
// Plan generator
// ---------------------------------------------------------------------------

/// What a generated binding ranges over — determines which predicate and
/// head templates are valid for it.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    FlatA,
    FlatB,
    NestedN,
    /// Unnested scalar element (from `xs` or an inner `mat` list).
    ElemInt,
    /// Unnested record element (from `ys`).
    ElemRec,
    /// Unnested list element (from `mat`): collection-valued, only useful
    /// as the source of a further unnest.
    ElemList,
}

struct Gen {
    rng: Rng,
    bound: Vec<(String, Kind)>,
    next_id: usize,
}

impl Gen {
    fn new(rng: Rng) -> Self {
        Gen {
            rng,
            bound: Vec::new(),
            next_id: 0,
        }
    }

    fn fresh(&mut self, kind: Kind) -> String {
        let name = format!("t{}", self.next_id);
        self.next_id += 1;
        self.bound.push((name.clone(), kind));
        name
    }

    fn scan(&mut self) -> (Plan, Kind) {
        let (dataset, kind) = match self.rng.below(3) {
            0 => ("A", Kind::FlatA),
            1 => ("B", Kind::FlatB),
            _ => ("N", Kind::NestedN),
        };
        let binding = self.fresh(kind);
        (
            Plan::Scan {
                dataset: dataset.into(),
                binding,
            },
            kind,
        )
    }

    /// An int-valued path of a binding (some nullable — that is the point).
    fn int_path(&mut self, name: &str, kind: Kind) -> Expr {
        let var = Expr::var(name);
        match kind {
            Kind::FlatA => {
                if self.rng.below(2) == 0 {
                    var.proj("k")
                } else {
                    var.proj("x")
                }
            }
            Kind::FlatB => {
                if self.rng.below(2) == 0 {
                    var.proj("k")
                } else {
                    var.proj("y")
                }
            }
            Kind::NestedN => var.proj("id"),
            Kind::ElemInt => var,
            Kind::ElemRec => var.proj("u"),
            Kind::ElemList => unreachable!("list elements have no int path"),
        }
    }

    /// A random scalar-bearing binding (anything but `ElemList`).
    fn scalar_binding(&mut self) -> (String, Kind) {
        let scalars: Vec<(String, Kind)> = self
            .bound
            .iter()
            .filter(|(_, k)| *k != Kind::ElemList)
            .cloned()
            .collect();
        scalars[self.rng.below(scalars.len() as u64) as usize].clone()
    }

    /// A one-sided filter predicate over `name`.
    fn filter_pred(&mut self, name: &str, kind: Kind) -> Expr {
        let c = Expr::int(self.rng.below(20) as i64);
        match kind {
            Kind::FlatA => match self.rng.below(4) {
                0 => Expr::bin(BinOp::Gt, Expr::var(name).proj("x"), c),
                1 => Expr::bin(BinOp::Lt, Expr::var(name).proj("k"), c),
                2 => Expr::bin(
                    BinOp::Eq,
                    Expr::var(name).proj("s"),
                    // Escaped-CSV strings: the constant only matches when
                    // the format layer unescaped the raw field correctly.
                    Expr::str(COLORS[self.rng.below(3) as usize]),
                ),
                _ => Expr::bin(
                    BinOp::Le,
                    Expr::var(name).proj("f"),
                    Expr::float(self.rng.below(16) as f64 / 16.0),
                ),
            },
            Kind::FlatB => match self.rng.below(3) {
                // Astral-plane strings: the constant only matches when the
                // \uXXXX surrogate pairs decoded to real chars.
                0 => Expr::bin(
                    BinOp::Eq,
                    Expr::var(name).proj("s"),
                    Expr::str(EMOJIS[self.rng.below(3) as usize]),
                ),
                _ => {
                    let p = self.int_path(name, kind);
                    Expr::bin(
                        if self.rng.below(2) == 0 {
                            BinOp::Gt
                        } else {
                            BinOp::Le
                        },
                        p,
                        c,
                    )
                }
            },
            Kind::NestedN => Expr::bin(BinOp::Gt, Expr::var(name).proj("id"), c),
            Kind::ElemInt => Expr::bin(
                if self.rng.below(2) == 0 {
                    BinOp::Gt
                } else {
                    BinOp::Ne
                },
                Expr::var(name),
                Expr::int(self.rng.below(8) as i64),
            ),
            Kind::ElemRec => {
                if self.rng.below(2) == 0 {
                    Expr::bin(BinOp::Gt, Expr::var(name).proj("u"), c)
                } else {
                    Expr::bin(
                        BinOp::Le,
                        Expr::var(name).proj("w"),
                        Expr::float(self.rng.below(8) as f64 / 8.0),
                    )
                }
            }
            Kind::ElemList => unreachable!("no filters over list elements"),
        }
    }

    /// A join predicate between `left` bindings and the `right` binding.
    fn join_pred(&mut self, left: &[(String, Kind)], right: &(String, Kind)) -> Expr {
        let li = self.rng.below(left.len() as u64) as usize;
        let (ln, lk) = left[li].clone();
        let lp = self.int_path(&ln, lk);
        let (rn, rk) = right.clone();
        let rp = self.int_path(&rn, rk);
        match self.rng.below(6) {
            // Equi join (hash pipeline).
            0 | 1 => Expr::bin(BinOp::Eq, lp, rp),
            // Band (sort-probe theta pipeline).
            2 | 3 => {
                let op = [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge][self.rng.below(4) as usize];
                Expr::bin(op, lp, rp)
            }
            // Inequality (block-nested-loop theta pipeline).
            4 => Expr::bin(BinOp::Ne, lp, rp),
            // Equi + extra conjunct, or the bare product.
            _ => {
                if self.rng.below(3) == 0 {
                    Expr::bool(true)
                } else {
                    let extra = self.filter_pred(&rn, rk);
                    Expr::bin(BinOp::And, Expr::bin(BinOp::Eq, lp, rp), extra)
                }
            }
        }
    }

    /// Unnest a nested binding's collection path on top of `input`.
    /// Occasionally chains: `mat` unnests to a list element which unnests
    /// again to its ints.
    fn unnest_over(&mut self, input: Plan, nested: &str) -> Plan {
        match self.rng.below(4) {
            0 | 1 => {
                let v = self.fresh(Kind::ElemInt);
                Plan::Unnest {
                    input: Box::new(input),
                    binding: v,
                    path: Expr::var(nested).proj("xs"),
                }
            }
            2 => {
                let v = self.fresh(Kind::ElemRec);
                Plan::Unnest {
                    input: Box::new(input),
                    binding: v,
                    path: Expr::var(nested).proj("ys"),
                }
            }
            _ => {
                let row = self.fresh(Kind::ElemList);
                let outer = Plan::Unnest {
                    input: Box::new(input),
                    binding: row.clone(),
                    path: Expr::var(nested).proj("mat"),
                };
                let v = self.fresh(Kind::ElemInt);
                Plan::Unnest {
                    input: Box::new(outer),
                    binding: v,
                    path: Expr::var(&row),
                }
            }
        }
    }

    /// The generator's source tree: scans, joins (left-deep and bushy),
    /// and unnests.
    fn source_tree(&mut self) -> Plan {
        match self.rng.below(8) {
            // Single scan.
            0 => self.scan().0,
            // Two-way join.
            1 | 2 => {
                let (l, lk) = self.scan();
                let lvars = vec![(self.bound.last().unwrap().0.clone(), lk)];
                let (r, rk) = self.scan();
                let rname = self.bound.last().unwrap().0.clone();
                let predicate = self.join_pred(&lvars, &(rname, rk));
                Plan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    predicate,
                }
            }
            // Three-way join, left-deep or bushy.
            3 | 4 => {
                let (s1, k1) = self.scan();
                let n1 = self.bound.last().unwrap().0.clone();
                let (s2, k2) = self.scan();
                let n2 = self.bound.last().unwrap().0.clone();
                let (s3, k3) = self.scan();
                let n3 = self.bound.last().unwrap().0.clone();
                if self.rng.below(2) == 0 {
                    // Left-deep: (s1 ⋈ s2) ⋈ s3.
                    let p12 = self.join_pred(&[(n1.clone(), k1)], &(n2.clone(), k2));
                    let p3 = self.join_pred(&[(n1, k1), (n2, k2)], &(n3, k3));
                    Plan::Join {
                        left: Box::new(Plan::Join {
                            left: Box::new(s1),
                            right: Box::new(s2),
                            predicate: p12,
                        }),
                        right: Box::new(s3),
                        predicate: p3,
                    }
                } else {
                    // Bushy: s1 ⋈ (s2 ⋈ s3) — the shape `left_deepen`
                    // rotates. The outer predicate links s1 to either
                    // binding of the right subtree.
                    let p23 = self.join_pred(&[(n2.clone(), k2)], &(n3.clone(), k3));
                    let right_pick = if self.rng.below(2) == 0 {
                        (n2, k2)
                    } else {
                        (n3, k3)
                    };
                    let p1 = self.join_pred(&[(n1, k1)], &right_pick);
                    Plan::Join {
                        left: Box::new(s1),
                        right: Box::new(Plan::Join {
                            left: Box::new(s2),
                            right: Box::new(s3),
                            predicate: p23,
                        }),
                        predicate: p1,
                    }
                }
            }
            // Unnest chain over a nested scan.
            5 | 6 => {
                let cat_scan = Plan::Scan {
                    dataset: "N".into(),
                    binding: self.fresh(Kind::NestedN),
                };
                let nested = self.bound.last().unwrap().0.clone();
                self.unnest_over(cat_scan, &nested)
            }
            // Unnest, then join the elements against a flat table.
            _ => {
                let scan_n = Plan::Scan {
                    dataset: "N".into(),
                    binding: self.fresh(Kind::NestedN),
                };
                let nested = self.bound.last().unwrap().0.clone();
                let left = self.unnest_over(scan_n, &nested);
                let lvars: Vec<(String, Kind)> = self
                    .bound
                    .iter()
                    .filter(|(_, k)| *k != Kind::ElemList)
                    .cloned()
                    .collect();
                let (r, rk) = self.scan();
                let rname = self.bound.last().unwrap().0.clone();
                let predicate = self.join_pred(&lvars, &(rname, rk));
                Plan::Join {
                    left: Box::new(left),
                    right: Box::new(r),
                    predicate,
                }
            }
        }
    }

    /// A scalar head expression over the bound variables.
    fn head(&mut self) -> Expr {
        let (name, kind) = self.scalar_binding();
        self.int_path(&name, kind)
    }

    fn reduce(&mut self, input: Plan) -> Plan {
        let head_path = self.head();
        let (monoid, head) = match self.rng.below(9) {
            0 => (Monoid::Primitive(PrimitiveMonoid::Count), Expr::int(1)),
            1 => (Monoid::Primitive(PrimitiveMonoid::Sum), head_path),
            2 => (Monoid::Primitive(PrimitiveMonoid::Max), head_path),
            3 => (Monoid::Primitive(PrimitiveMonoid::Min), head_path),
            4 => (
                Monoid::Primitive(PrimitiveMonoid::Any),
                Expr::bin(BinOp::Gt, head_path, Expr::int(5)),
            ),
            5 => (Monoid::Collection(CollectionKind::List), head_path),
            6 => (Monoid::Collection(CollectionKind::Set), head_path),
            7 => {
                let (n2, k2) = self.scalar_binding();
                let second = self.int_path(&n2, k2);
                (
                    Monoid::Collection(CollectionKind::Bag),
                    Expr::Record(vec![("a".into(), head_path), ("b".into(), second)]),
                )
            }
            _ => {
                // Dyadic float sums are exact at every merge order.
                let (name, kind) = self.scalar_binding();
                let float_head = match kind {
                    Kind::FlatA => Expr::var(&name).proj("f"),
                    Kind::ElemRec => Expr::var(&name).proj("w"),
                    _ => self.int_path(&name, kind),
                };
                (Monoid::Primitive(PrimitiveMonoid::Sum), float_head)
            }
        };
        Plan::Reduce {
            input: Box::new(input),
            monoid,
            head,
        }
    }

    fn plan(&mut self) -> Plan {
        self.bound.clear();
        self.next_id = 0;
        let mut tree = self.source_tree();
        // 0–2 extra selects over any scalar binding.
        for _ in 0..self.rng.below(3) {
            let (name, kind) = self.scalar_binding();
            let predicate = self.filter_pred(&name, kind);
            tree = Plan::Select {
                input: Box::new(tree),
                predicate,
            };
        }
        self.reduce(tree)
    }
}

// ---------------------------------------------------------------------------
// The differential harness
// ---------------------------------------------------------------------------

#[test]
fn fuzz_all_shapes_agree_across_engines_and_thread_counts() {
    let cat = Arc::new(catalog());
    // The same fixtures as mmap'd files: the JIT sweep runs on both
    // backings and may not observe the difference.
    let mapped = Arc::new(file_catalog("fuzz_shapes", MapMode::Auto));
    let mut env = Bindings::new();
    for name in cat.dataset_names() {
        env.insert(name.clone(), cat.materialize(&name).unwrap());
    }

    // The resident-engine mode: one `Engine` per (threads × backing) cell,
    // created once and reused for every plan of every seed — parked pools,
    // shared interners, and accumulated caches may never change a result
    // relative to the per-call `run_jit` path.
    let residents: Vec<(String, Engine)> = [1usize, 2, 8]
        .into_iter()
        .flat_map(|threads| {
            let opts = JitOptions {
                threads,
                morsel_rows: 4,
                clamp_threads: false,
                ..Default::default()
            };
            [
                (
                    format!("engine x{threads} owned"),
                    Engine::new(cat.clone(), opts.clone()),
                ),
                (
                    format!("engine x{threads} mmap"),
                    Engine::new(mapped.clone(), opts),
                ),
            ]
        })
        .collect();

    // Across the whole matrix the optimizer-on leg must reorder *some*
    // plans — a sweep where `plan_opt` never fires would pin nothing.
    let mut total_reordered = 0u64;
    for seed in SEEDS {
        let mut g = Gen::new(Rng::new(seed));
        let mut fallbacks = 0u32;
        for i in 0..PLANS_PER_SEED {
            let raw = g.plan();
            let plan = rewrite(&raw);
            let ctx = |engine: &str| format!("seed={seed:#x} plan#{i} [{engine}]\n{plan}");

            let oracle = run_volcano(&plan, &*cat);
            let algebra = execute_plan(&plan, &env);
            match &oracle {
                Ok(expected) => {
                    let got = algebra.unwrap_or_else(|e| panic!("{}: {e}", ctx("algebra")));
                    assert_eq!(&got, expected, "{}", ctx("algebra deviates"));
                    for threads in [1usize, 2, 8] {
                        for plan_opt in [true, false] {
                            let opts = JitOptions {
                                threads,
                                morsel_rows: 4,
                                clamp_threads: false,
                                plan_opt,
                                ..Default::default()
                            };
                            for (backing, provider) in [("owned", &*cat), ("mmap", &*mapped)] {
                                let tag = format!("jit x{threads} {backing} plan_opt={plan_opt}");
                                let (v, stats) = run_jit_with_stats(&plan, provider, &opts)
                                    .unwrap_or_else(|e| panic!("{}: {e}", ctx(&tag)));
                                assert_eq!(&v, expected, "{}", ctx(&format!("{tag} deviates")));
                                fallbacks += stats.whole_query_fallbacks;
                                if plan_opt {
                                    total_reordered += stats.joins_reordered as u64;
                                    // Reordered plans stay inside the
                                    // pipelines: a reorder that forced the
                                    // Volcano fallback would be a shape bug.
                                    if stats.joins_reordered > 0 {
                                        assert_eq!(
                                            stats.whole_query_fallbacks,
                                            0,
                                            "{}",
                                            ctx(&format!("{tag} reordered then fell back"))
                                        );
                                    }
                                } else {
                                    // The escape hatch is a real baseline:
                                    // nothing may be reordered with it off.
                                    assert_eq!(
                                        stats.joins_reordered,
                                        0,
                                        "{}",
                                        ctx(&format!("{tag} reordered joins"))
                                    );
                                    assert_eq!(
                                        stats.conjuncts_reordered,
                                        0,
                                        "{}",
                                        ctx(&format!("{tag} reordered conjuncts"))
                                    );
                                }
                                // Streaming execution: every covered shape fuses
                                // end to end — no inter-operator Vec<Tuple>.
                                assert_eq!(
                                    stats.operator_materializations,
                                    0,
                                    "{}",
                                    ctx(&format!("{tag} materialized a stage"))
                                );
                                assert!(
                                    stats.fused_stage_depth >= 2,
                                    "{}",
                                    ctx(&format!("{tag} reported no fused chain"))
                                );
                            }
                        }
                    }
                    // Resident-engine mode: the same plan through every
                    // long-lived engine must match the per-call runs.
                    for (tag, engine) in &residents {
                        let v = engine
                            .execute(&plan)
                            .unwrap_or_else(|e| panic!("{}: {e}", ctx(tag)));
                        assert_eq!(&v, expected, "{}", ctx(&format!("{tag} deviates")));
                    }
                }
                Err(_) => {
                    // The oracle rejected the plan (e.g. unnesting a path
                    // that is not a collection); every engine must reject
                    // it too — silently succeeding would be a bug.
                    assert!(algebra.is_err(), "{}", ctx("algebra accepted"));
                    for threads in [1usize, 2, 8] {
                        for plan_opt in [true, false] {
                            let opts = JitOptions {
                                threads,
                                morsel_rows: 4,
                                clamp_threads: false,
                                plan_opt,
                                ..Default::default()
                            };
                            for (backing, provider) in [("owned", &*cat), ("mmap", &*mapped)] {
                                assert!(
                                    run_jit_with_stats(&plan, provider, &opts).is_err(),
                                    "{}",
                                    ctx(&format!(
                                        "jit x{threads} {backing} plan_opt={plan_opt} accepted"
                                    ))
                                );
                            }
                        }
                    }
                    for (tag, engine) in &residents {
                        assert!(
                            engine.execute(&plan).is_err(),
                            "{}",
                            ctx(&format!("{tag} accepted"))
                        );
                    }
                }
            }
        }
        // Every generated shape is inside the pipeline coverage: scans of
        // real datasets, joins with scan right sides, unnests over bound
        // paths. Nothing may take the whole-query Volcano fallback.
        assert_eq!(fallbacks, 0, "seed={seed:#x}: whole-query fallbacks");
    }
    assert!(
        total_reordered > 0,
        "the plan_opt=true sweep never reordered a join — the optimizer leg is dead"
    );
}

/// The append-mutation step: a **resident** mmap'd catalog with a shared
/// replica cache survives the fixture files growing on disk between query
/// batches. A fixed generated plan set re-runs after every append and each
/// result must match the interpreted oracle over a *fresh* catalog built
/// from the file's current bytes — incremental extension (positional-map /
/// semi-index growth, prefix-served replicas, resumed fold partials) is
/// never allowed to be observable in a result. The sweep also asserts the
/// incremental machinery actually fired: the post-append probes must scan
/// exactly the appended suffix and resume a cached fold partial.
#[test]
fn fuzz_append_mutations_between_query_batches() {
    let a_path = fixture_path("fuzz_append", "A.csv");
    let b_path = fixture_path("fuzz_append", "B.json");
    let n_path = fixture_path("fuzz_append", "N.json");
    // Row counts per batch: every file grows twice with the same row
    // formulas the cold oracle regenerates from.
    let sizes: [(i64, i64, i64); 3] = [(16, 12, 10), (21, 16, 13), (27, 20, 17)];
    std::fs::write(&a_path, csv_a_rows(0, sizes[0].0)).unwrap();
    std::fs::write(&b_path, json_b_rows(0, sizes[0].1)).unwrap();
    std::fs::write(&n_path, json_n_rows(0, sizes[0].2)).unwrap();

    // The resident catalog: plugins stay registered across batches, so
    // every stale read would come from here.
    let cat = Arc::new(MemoryCatalog::new());
    cat.register(Arc::new(CsvPlugin::new(
        CsvFile::open_with("A", &a_path, b',', true, a_schema(), MapMode::Auto).unwrap(),
    )));
    cat.register(Arc::new(JsonPlugin::new(
        JsonFile::open_with("B", &b_path, b_schema(), MapMode::Auto).unwrap(),
    )));
    cat.register(Arc::new(JsonPlugin::new(
        JsonFile::open_with("N", &n_path, n_schema(), MapMode::Auto).unwrap(),
    )));
    let cache = Arc::new(CacheManager::new(1 << 22));

    // The resident-engine mode of the mutation fuzzer: one `Engine` over
    // the growing files and the same shared cache, created before the
    // first batch and reused after every append — stale-served state
    // inside the engine would deviate from the cold oracle here.
    let engine = Engine::new(
        cat.clone(),
        JitOptions {
            cache: Some(Arc::clone(&cache)),
            threads: 8,
            morsel_rows: 4,
            clamp_threads: false,
            ..Default::default()
        },
    );

    // Fresh interpreted oracle over the bytes currently on disk.
    let oracle_catalog = || {
        let fresh = MemoryCatalog::new();
        fresh.register(Arc::new(CsvPlugin::new(
            CsvFile::from_bytes("A", std::fs::read(&a_path).unwrap(), b',', true, a_schema())
                .unwrap(),
        )));
        fresh.register(Arc::new(JsonPlugin::new(
            JsonFile::from_bytes("B", std::fs::read(&b_path).unwrap(), b_schema()).unwrap(),
        )));
        fresh.register(Arc::new(JsonPlugin::new(
            JsonFile::from_bytes("N", std::fs::read(&n_path).unwrap(), n_schema()).unwrap(),
        )));
        fresh
    };

    // Per-dataset probes: single-scan int sums, re-run as the *first*
    // queries after each append. The first query over a grown dataset is
    // the one whose description sees the `Extended` verdict, so the
    // O(delta) counters are observable on it.
    let probe = |dataset: &str| {
        rewrite(&Plan::Reduce {
            input: Box::new(Plan::Scan {
                dataset: dataset.into(),
                binding: "p".into(),
            }),
            monoid: Monoid::Primitive(PrimitiveMonoid::Sum),
            head: Expr::var("p").proj("k"),
        })
    };
    let probes = [probe("A"), probe("B")];

    // One fixed plan set for the whole run: partial-fold keys repeat
    // across batches only if the identical plan runs again.
    let mut g = Gen::new(Rng::new(0xA99E7D));
    let plans: Vec<Plan> = (0..40).map(|_| rewrite(&g.plan())).collect();

    let mut tail_scanned = 0u64;
    let mut partials_reused = 0u64;
    for (batch, &(na, nb, nn)) in sizes.iter().enumerate() {
        if batch > 0 {
            use std::io::Write;
            let (pa, pb, pn) = sizes[batch - 1];
            for (path, bytes) in [
                (&a_path, csv_a_rows(pa, na)),
                (&b_path, json_b_rows(pb, nb)),
                (&n_path, json_n_rows(pn, nn)),
            ] {
                let mut fh = std::fs::OpenOptions::new().append(true).open(path).unwrap();
                fh.write_all(&bytes).unwrap();
            }
        }
        let oracle_cat = oracle_catalog();

        let serial = JitOptions {
            cache: Some(Arc::clone(&cache)),
            threads: 1,
            morsel_rows: 4,
            clamp_threads: false,
            ..Default::default()
        };
        for (probe_plan, appended) in probes.iter().zip([
            (na - sizes[batch.saturating_sub(1)].0) as u64,
            (nb - sizes[batch.saturating_sub(1)].1) as u64,
        ]) {
            let expected = run_volcano(probe_plan, &oracle_cat).unwrap();
            let (v, stats) = run_jit_with_stats(probe_plan, &*cat, &serial).unwrap();
            assert_eq!(v, expected, "batch {batch} probe deviates\n{probe_plan}");
            assert_eq!(
                stats.tail_rows_scanned, appended,
                "batch {batch} probe must scan exactly the appended suffix"
            );
            if batch > 0 {
                assert_eq!(
                    stats.partials_reused, 1,
                    "batch {batch} probe must resume the cached fold partial"
                );
            }
            tail_scanned += stats.tail_rows_scanned;
            partials_reused += stats.partials_reused;
        }

        for (i, plan) in plans.iter().enumerate() {
            let oracle = run_volcano(plan, &oracle_cat);
            for threads in [1usize, 8] {
                let opts = JitOptions {
                    cache: Some(Arc::clone(&cache)),
                    threads,
                    morsel_rows: 4,
                    clamp_threads: false,
                    ..Default::default()
                };
                let got = run_jit_with_stats(plan, &*cat, &opts);
                match &oracle {
                    Ok(expected) => {
                        let (v, _) = got.unwrap_or_else(|e| {
                            panic!("batch {batch} plan#{i} x{threads}: {e}\n{plan}")
                        });
                        assert_eq!(
                            &v, expected,
                            "batch {batch} plan#{i} x{threads} deviates from a cold \
                             re-scan of the grown file\n{plan}"
                        );
                    }
                    Err(_) => assert!(
                        got.is_err(),
                        "batch {batch} plan#{i} x{threads} accepted a plan the oracle \
                         rejects\n{plan}"
                    ),
                }
            }
            // The engine created before batch 0 re-runs the plan after
            // every append: resident pool + interner + shared cache, and
            // still nothing stale may be observable.
            match &oracle {
                Ok(expected) => {
                    let v = engine.execute(plan).unwrap_or_else(|e| {
                        panic!("batch {batch} plan#{i} [resident engine]: {e}\n{plan}")
                    });
                    assert_eq!(
                        &v, expected,
                        "batch {batch} plan#{i} [resident engine] deviates from a cold \
                         re-scan of the grown file\n{plan}"
                    );
                }
                Err(_) => assert!(
                    engine.execute(plan).is_err(),
                    "batch {batch} plan#{i} [resident engine] accepted a plan the \
                     oracle rejects\n{plan}"
                ),
            }
        }
    }
    // The sweep must have exercised the incremental path, not just the
    // full-rebuild fallback: both appends on both probed datasets.
    assert_eq!(tail_scanned, (21 - 16) + (27 - 21) + (16 - 12) + (20 - 16));
    assert_eq!(partials_reused, 4);
}

/// The differential engines all read through the same plugins, so they
/// would agree even on corrupted decodes. This test pins the raw fixtures
/// to values built from Rust literals: escaped CSV fields must unescape,
/// surrogate pairs must combine, and an 8-worker morsel-aligned scan over
/// the embedded-newline CSV must match the serial scan exactly.
#[test]
fn escaped_fixtures_decode_exactly_serial_and_parallel() {
    let cat = catalog();
    let list_of = |dataset: &str, binding: &str, field: &str| Plan::Reduce {
        input: Box::new(Plan::Scan {
            dataset: dataset.into(),
            binding: binding.into(),
        }),
        monoid: Monoid::Collection(CollectionKind::List),
        head: Expr::var(binding).proj(field),
    };

    // A.s: quoted/escaped CSV strings (embedded comma, doubled quote,
    // quoted newline).
    let plan = list_of("A", "a", "s");
    let expected: Vec<Value> = (0..16)
        .map(|i| Value::str(COLORS[(i % 3) as usize]))
        .collect();
    let serial = run_volcano(&plan, &cat).unwrap();
    assert_eq!(serial.elements().unwrap(), &expected);

    // B.s: surrogate-pair-escaped JSON strings.
    let plan_b = list_of("B", "b", "s");
    let expected_b: Vec<Value> = (0..12)
        .map(|i| Value::str(EMOJIS[(i % 3) as usize]))
        .collect();
    let serial_b = run_volcano(&plan_b, &cat).unwrap();
    assert_eq!(serial_b.elements().unwrap(), &expected_b);

    // Parallel morsel-aligned scans (tiny morsels, 8 oversubscribed
    // workers) must reproduce the serial decode bit for bit — on owned
    // bytes and on shared mmap'd pages alike.
    let mapped = file_catalog("fuzz_escaped", MapMode::Auto);
    for (plan, oracle) in [(&plan, &serial), (&plan_b, &serial_b)] {
        for threads in [2usize, 8] {
            let opts = JitOptions {
                threads,
                morsel_rows: 1,
                clamp_threads: false,
                ..Default::default()
            };
            for provider in [&cat, &mapped] {
                let (v, stats) = run_jit_with_stats(plan, provider, &opts).unwrap();
                assert_eq!(&v, oracle, "threads={threads}");
                assert_eq!(stats.operator_materializations, 0, "{stats:?}");
            }
        }
    }
}
