//! Mmap-vs-owned differential tests over the fuzzer fixtures.
//!
//! The ingest refactor made every raw reader generic over its
//! [`vida_formats::MapMode`] backing: `RawData::Mapped` (shared read-only
//! file mapping) or `RawData::Owned` (a heap buffer, from `from_bytes` or
//! the `--no-mmap` escape hatch). The backing must be *unobservable* above
//! the byte layer. These tests pin that down on the PR-5 fuzzer fixtures —
//! RFC 4180 escapes, quoted newlines, surrogate pairs, nested lists:
//!
//! - CSV positional-map offsets (`field_byte_span`) and the row index
//!   (`unit_offsets`) are identical on all three backings,
//! - JSON semi-index spans (`field_span`) are identical,
//! - query results agree at 1 and 8 worker threads on every backing.

mod common;

use common::{
    a_schema, b_schema, csv_a_bytes, file_catalog, fixture_path, json_b_bytes, json_n_bytes,
    n_schema, owned_catalog,
};
use vida_algebra::{rewrite, Plan};
use vida_exec::{run_jit_with_stats, run_volcano, JitOptions, SourceProvider};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::MapMode;
use vida_lang::{BinOp, Expr};
use vida_types::{CollectionKind, Monoid, PrimitiveMonoid};

#[test]
fn csv_posmap_offsets_identical_across_backings() {
    let path = fixture_path("posmap", "A.csv");
    std::fs::write(&path, csv_a_bytes()).unwrap();
    let owned = CsvFile::from_bytes("A", csv_a_bytes(), b',', true, a_schema()).unwrap();
    let mapped = CsvFile::open_with("A", &path, b',', true, a_schema(), MapMode::Auto).unwrap();
    let unmapped = CsvFile::open_with("A", &path, b',', true, a_schema(), MapMode::Never).unwrap();
    #[cfg(unix)]
    assert!(mapped.is_mapped(), "Auto must map a regular file on unix");
    assert!(!unmapped.is_mapped());
    assert!(!owned.is_mapped());

    // The quote-aware row index (morsel grid) is byte-identical.
    assert_eq!(mapped.unit_offsets(), owned.unit_offsets());
    assert_eq!(unmapped.unit_offsets(), owned.unit_offsets());

    // Every field's positional-map span is byte-identical — locating them
    // also populates each file's posmap through the same SWAR scan path.
    for row in 0..owned.num_rows() {
        for col in 0..a_schema().len() {
            let span = owned.field_byte_span(row, col).unwrap();
            assert_eq!(
                mapped.field_byte_span(row, col).unwrap(),
                span,
                "row {row} col {col}: mapped posmap deviates"
            );
            assert_eq!(
                unmapped.field_byte_span(row, col).unwrap(),
                span,
                "row {row} col {col}: owned-file posmap deviates"
            );
        }
    }
}

#[test]
fn json_semi_index_spans_identical_across_backings() {
    for (name, bytes, schema) in [
        ("B.json", json_b_bytes(), b_schema()),
        ("N.json", json_n_bytes(), n_schema()),
    ] {
        let path = fixture_path("semiindex", name);
        std::fs::write(&path, &bytes).unwrap();
        let owned = JsonFile::from_bytes(name, bytes, schema.clone()).unwrap();
        let mapped = JsonFile::open_with(name, &path, schema.clone(), MapMode::Auto).unwrap();
        let unmapped = JsonFile::open_with(name, &path, schema.clone(), MapMode::Never).unwrap();
        #[cfg(unix)]
        assert!(mapped.is_mapped(), "Auto must map a regular file on unix");
        assert!(!unmapped.is_mapped());

        let fields: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
        for row in 0..owned.num_objects() {
            for field in &fields {
                let span = owned.field_span(row, field).unwrap();
                assert_eq!(
                    mapped.field_span(row, field).unwrap(),
                    span,
                    "{name} row {row} field {field}: mapped semi-index deviates"
                );
                assert_eq!(
                    unmapped.field_span(row, field).unwrap(),
                    span,
                    "{name} row {row} field {field}: owned-file semi-index deviates"
                );
            }
        }
    }
}

/// Representative plans over every fixture: quoted-CSV strings, escaped
/// JSON strings, an unnest, and a cross-format equi join.
fn plans() -> Vec<(&'static str, Plan)> {
    let list_of = |dataset: &str, binding: &str, field: &str| Plan::Reduce {
        input: Box::new(Plan::Scan {
            dataset: dataset.into(),
            binding: binding.into(),
        }),
        monoid: Monoid::Collection(CollectionKind::List),
        head: Expr::var(binding).proj(field),
    };
    let unnest_sum = Plan::Reduce {
        input: Box::new(Plan::Unnest {
            input: Box::new(Plan::Scan {
                dataset: "N".into(),
                binding: "n".into(),
            }),
            binding: "v".into(),
            path: Expr::var("n").proj("xs"),
        }),
        monoid: Monoid::Primitive(PrimitiveMonoid::Sum),
        head: Expr::var("v"),
    };
    let join_count = Plan::Reduce {
        input: Box::new(Plan::Join {
            left: Box::new(Plan::Scan {
                dataset: "A".into(),
                binding: "a".into(),
            }),
            right: Box::new(Plan::Scan {
                dataset: "B".into(),
                binding: "b".into(),
            }),
            predicate: Expr::bin(
                BinOp::Eq,
                Expr::var("a").proj("k"),
                Expr::var("b").proj("k"),
            ),
        }),
        monoid: Monoid::Primitive(PrimitiveMonoid::Count),
        head: Expr::int(1),
    };
    vec![
        ("list A.s", list_of("A", "a", "s")),
        ("list B.s", list_of("B", "b", "s")),
        ("sum unnest N.xs", unnest_sum),
        ("count A join B", join_count),
    ]
}

#[test]
fn query_results_identical_across_backings_at_1_and_8_threads() {
    let owned = owned_catalog();
    let auto = file_catalog("query_auto", MapMode::Auto);
    let never = file_catalog("query_never", MapMode::Never);
    #[cfg(unix)]
    for name in ["A", "B", "N"] {
        assert!(auto.plugin(name).unwrap().is_mapped(), "{name} not mapped");
        assert!(!never.plugin(name).unwrap().is_mapped());
    }

    for (what, raw) in plans() {
        let plan = rewrite(&raw);
        let oracle = run_volcano(&plan, &owned).unwrap();
        for (backing, cat) in [("owned", &owned), ("mapped", &auto), ("no-mmap", &never)] {
            for threads in [1usize, 8] {
                let opts = JitOptions {
                    threads,
                    morsel_rows: 2,
                    clamp_threads: false,
                    ..Default::default()
                };
                let (v, stats) = run_jit_with_stats(&plan, cat, &opts)
                    .unwrap_or_else(|e| panic!("{what} [{backing} x{threads}]: {e}"));
                assert_eq!(v, oracle, "{what} [{backing} x{threads}] deviates");
                assert_eq!(
                    stats.operator_materializations, 0,
                    "{what} [{backing} x{threads}] materialized a stage"
                );
            }
        }
    }
}
