//! Trace-layer integration tests (PR 7): span nesting invariants, the
//! thread-count invariance of aggregated trace counters, consistency of
//! the per-stage tuple counts with `ExecStats`, and a Chrome-trace JSON
//! round-trip through the repo's own JSON reader.
//!
//! Counts attach to whichever span level exists in *both* the serial and
//! parallel paths (serial drive spans report the arithmetic morsel count
//! of their range; parallel per-morsel worker spans report 1 each), so
//! every aggregate asserted here must be identical at any worker count.

mod common;

use std::collections::BTreeMap;
use vida_algebra::{lower, rewrite, Plan};
use vida_exec::{run_jit_with_stats, ExecStats, JitOptions, QueryTrace};
use vida_formats::json::parse_json;
use vida_lang::parse;
use vida_trace::{stage, Span};
use vida_types::Value;

const JOIN_COUNT: &str = "for { a <- A, b <- B, a.k = b.k } yield count a";
const SCAN_BAG: &str = "for { a <- A, a.x != null, a.x < 15 } yield bag (k := a.k, s := a.s)";
const UNNEST_SUM: &str = "for { n <- N, v <- n.xs, v > 1 } yield sum v";

fn plan_of(q: &str) -> Plan {
    rewrite(&lower(&parse(q).expect("parses")).expect("lowers"))
}

/// Run `q` with tracing on and `threads` workers (small morsels so even the
/// 16-row fixtures split into several morsels per stage).
fn traced(q: &str, threads: usize) -> (Value, ExecStats) {
    let cat = common::owned_catalog();
    let opts = JitOptions {
        threads,
        morsel_rows: 4,
        clamp_threads: false,
        ..JitOptions::default()
    }
    .with_trace();
    run_jit_with_stats(&plan_of(q), &cat, &opts).expect("query runs")
}

/// Assert stack discipline per track: two spans on one track are either
/// disjoint or one contains the other — never partially overlapping — and
/// nothing is left open.
fn assert_nesting(trace: &QueryTrace) {
    assert_eq!(trace.open_spans(), 0, "spans left open");
    let spans = trace.spans();
    for track in trace.tracks() {
        let own: Vec<&Span> = spans.iter().filter(|s| s.worker == track).collect();
        for (i, a) in own.iter().enumerate() {
            for b in own.iter().skip(i + 1) {
                let overlap = a.start_ns.max(b.start_ns) < a.end_ns().min(b.end_ns());
                if overlap {
                    let a_holds_b = a.start_ns <= b.start_ns && b.end_ns() <= a.end_ns();
                    let b_holds_a = b.start_ns <= a.start_ns && a.end_ns() <= b.end_ns();
                    assert!(
                        a_holds_b || b_holds_a,
                        "track {track}: {:?} and {:?} partially overlap",
                        a,
                        b
                    );
                }
            }
        }
    }
}

/// The aggregates that must not depend on the worker count: per-stage
/// tuple/morsel sums plus the per-kernel invocation counts.
fn invariants(trace: &QueryTrace) -> (BTreeMap<&'static str, (u64, u64)>, Vec<u64>) {
    let stages = trace
        .stage_totals()
        .into_iter()
        .map(|t| (t.stage, (t.tuples, t.morsels)))
        .collect();
    (stages, trace.kernel_invocations().to_vec())
}

#[test]
fn tracing_is_opt_in() {
    let cat = common::owned_catalog();
    let (_, stats) =
        run_jit_with_stats(&plan_of(JOIN_COUNT), &cat, &JitOptions::default()).unwrap();
    assert!(stats.query_trace().is_none(), "default runs must not trace");
}

#[test]
fn spans_nest_within_every_track() {
    for q in [JOIN_COUNT, SCAN_BAG, UNNEST_SUM] {
        for threads in [1, 4] {
            let (_, stats) = traced(q, threads);
            let trace = stats.query_trace().expect("trace recorded");
            assert_nesting(trace);
            assert!(trace.tracks().contains(&0), "coordinator track missing");
        }
    }
}

#[test]
fn aggregated_counters_are_identical_at_any_worker_count() {
    for q in [JOIN_COUNT, SCAN_BAG, UNNEST_SUM] {
        let (value1, stats1) = traced(q, 1);
        let baseline = invariants(stats1.query_trace().unwrap());
        for threads in [2, 8] {
            let (value, stats) = traced(q, threads);
            assert_eq!(value, value1, "{q}: result diverged at {threads} threads");
            let got = invariants(stats.query_trace().unwrap());
            assert_eq!(
                got, baseline,
                "{q}: trace counters diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn stage_counts_agree_with_exec_stats() {
    // Cold and cacheless, so every touched column is a raw scan: the scan
    // stage must account for exactly `tuples_scanned`, and the probe stage
    // for exactly the join's output cardinality.
    for threads in [1, 4] {
        let (value, stats) = traced(JOIN_COUNT, threads);
        let trace = stats.query_trace().unwrap();
        let totals = trace.stage_totals();
        let scan = totals.iter().find(|t| t.stage == stage::SCAN).unwrap();
        let probe = totals.iter().find(|t| t.stage == stage::PROBE).unwrap();
        assert_eq!(scan.tuples, stats.tuples_scanned, "threads={threads}");
        assert_eq!(Value::Int(probe.tuples as i64), value, "threads={threads}");
        let build = totals
            .iter()
            .find(|t| t.stage == stage::BUILD_SIDE)
            .unwrap();
        assert!(build.tuples > 0, "build side saw no tuples");
        for s in [stage::LOWER, stage::CODEGEN, stage::FOLD] {
            assert!(totals.iter().any(|t| t.stage == s), "missing stage {s}");
        }
    }
}

#[test]
fn kernel_invocations_are_recorded_per_kernel() {
    let (_, stats) = traced(JOIN_COUNT, 1);
    let trace = stats.query_trace().unwrap();
    assert_eq!(
        trace.kernel_invocations().len(),
        stats.kernels_compiled as usize,
        "every compiled kernel gets a dense invocation slot"
    );
    let (id, hits) = trace.hottest_kernel().expect("kernels ran");
    assert!(hits > 0);
    assert!((id as usize) < trace.kernel_invocations().len());
}

#[test]
fn explain_analyze_renders_the_stage_tree() {
    let (_, stats) = traced(JOIN_COUNT, 2);
    let text = stats.query_trace().unwrap().explain_analyze();
    assert!(text.starts_with("EXPLAIN ANALYZE"));
    for s in ["lower", "codegen", "build_side", "probe", "fold"] {
        assert!(text.contains(s), "missing {s} in:\n{text}");
    }
    assert!(text.contains("kernels:"));
}

#[test]
fn chrome_json_round_trips_through_the_json_reader() {
    let (_, stats) = traced(JOIN_COUNT, 4);
    let trace = stats.query_trace().unwrap();
    let json = trace.to_chrome_json();
    let (value, end) = parse_json(json.as_bytes(), 0, "chrome-trace").expect("valid JSON");
    assert!(
        json.as_bytes()[end..]
            .iter()
            .all(|b| b.is_ascii_whitespace()),
        "trailing bytes after the JSON document"
    );
    let Value::Record(fields) = value else {
        panic!("top level must be an object");
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents present");
    let events = events.elements().expect("traceEvents is an array");
    // One complete event per span plus per-track metadata events.
    assert!(events.len() >= trace.spans().len());
    let mut tids = Vec::new();
    for e in events {
        let Value::Record(ef) = e else {
            panic!("every event is an object")
        };
        let ph = ef.iter().find(|(k, _)| k == "ph").map(|(_, v)| v);
        assert!(ph.is_some(), "event without a phase");
        if let Some((_, Value::Int(tid))) = ef.iter().find(|(k, _)| k == "tid") {
            tids.push(*tid);
        }
    }
    tids.sort_unstable();
    tids.dedup();
    for track in trace.tracks() {
        assert!(
            tids.contains(&(track as i64)),
            "track {track} missing from the Chrome export"
        );
    }
}
