//! The nested-heavy workload runs through generated pipelines — not the
//! Volcano fallback — and nested columns participate in the cache/cost
//! machinery.
//!
//! Three proofs:
//! 1. every `generate_nested_heavy` query compiles to a pipeline
//!    (`whole_query_fallbacks == 0`) and the stats counters show which new
//!    stage ran (`unnest_pipelines`, `theta_pipelines`);
//! 2. an unnest is served from a cached `BinaryJson` replica of the nested
//!    column (the ROADMAP's "unnest over cached nested columns first");
//! 3. with a cost model attached, the pipeline records access statistics
//!    for the nested field, so it participates in layout selection.

use std::sync::Arc;
use vida_algebra::{lower, rewrite};
use vida_cache::{bson, CacheKey, CacheManager, CachedData, Layout};
use vida_exec::{run_jit_with_stats, run_volcano, ExecStats, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_lang::parse;
use vida_optimizer::CostModel;
use vida_types::{CollectionKind, Schema, Type, Value};
use vida_workload::{generate_nested_heavy, Template, WorkloadConfig};

/// Raw-data catalog over the nested-heavy workload schema: `Patients` CSV,
/// `Genetics` and `Regions` newline-delimited JSON — `Regions.voxels` is a
/// genuinely nested JSON array column.
fn catalog(n: usize) -> MemoryCatalog {
    let cat = MemoryCatalog::new();
    let cities = ["geneva", "bern", "zurich", "basel"];
    let mut csv = String::from("id,age,city\n");
    for i in 0..n {
        csv.push_str(&format!("{i},{},{}\n", 18 + (i * 7) % 70, cities[i % 4]));
    }
    let csv = CsvFile::from_bytes(
        "Patients",
        csv.into_bytes(),
        b',',
        true,
        Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)]),
    )
    .expect("csv fixture parses");
    cat.register(Arc::new(CsvPlugin::new(csv)));

    let mut json = String::new();
    for i in 0..n {
        json.push_str(&format!(
            "{{\"id\":{i},\"snp\":{}}}\n",
            (i % 64) as f64 / 64.0
        ));
    }
    let json = JsonFile::from_bytes(
        "Genetics",
        json.into_bytes(),
        Schema::from_pairs([("id", Type::Int), ("snp", Type::Float)]),
    )
    .expect("json fixture parses");
    cat.register(Arc::new(JsonPlugin::new(json)));

    cat.register(Arc::new(JsonPlugin::new(regions_json(n / 4))));
    cat
}

fn regions_schema() -> Schema {
    Schema::from_pairs([
        ("id", Type::Int),
        (
            "voxels",
            Type::Collection(CollectionKind::List, Box::new(Type::Int)),
        ),
    ])
}

fn regions_json(n: usize) -> JsonFile {
    let mut json = String::new();
    for i in 0..n.max(1) {
        let voxels: Vec<String> = (0..(i % 5)).map(|j| format!("{}", i + 10 * j)).collect();
        json.push_str(&format!(
            "{{\"id\":{i},\"voxels\":[{}]}}\n",
            voxels.join(",")
        ));
    }
    JsonFile::from_bytes("Regions", json.into_bytes(), regions_schema()).expect("regions parse")
}

#[test]
fn nested_heavy_workload_hits_the_new_pipelines() {
    let cat = catalog(64);
    let queries = generate_nested_heavy(&WorkloadConfig {
        queries: 40,
        ..Default::default()
    });
    let mut total = ExecStats::default();
    for q in &queries {
        let plan = rewrite(&lower(&parse(&q.text).unwrap()).unwrap());
        let oracle = run_volcano(&plan, &cat).unwrap_or_else(|e| panic!("{}: {e}", q.text));
        let (v, stats) = run_jit_with_stats(&plan, &cat, &JitOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", q.text));
        assert_eq!(v, oracle, "jit deviates for {}", q.text);
        assert_eq!(
            stats.whole_query_fallbacks, 0,
            "{} took the fallback: {stats:?}",
            q.text
        );
        // Each template exercises the stage it was built for.
        match q.template {
            Template::UnnestFold | Template::UnnestJoin => {
                assert!(stats.unnest_pipelines >= 1, "{}: {stats:?}", q.text)
            }
            Template::ThetaBand | Template::ThetaLoop => {
                assert!(stats.theta_pipelines >= 1, "{}: {stats:?}", q.text)
            }
            Template::UnnestTheta => assert!(
                stats.unnest_pipelines >= 1 && stats.theta_pipelines >= 1,
                "{}: {stats:?}",
                q.text
            ),
            _ => {}
        }
        total.accumulate(&stats);
    }
    assert_eq!(total.whole_query_fallbacks, 0);
    assert!(total.unnest_pipelines > 0 && total.theta_pipelines > 0);
}

#[test]
fn unnest_is_served_from_cached_binary_json_replica() {
    let cat = catalog(64);
    let cache = Arc::new(CacheManager::new(1 << 20));
    let opts = JitOptions::with_cache(Arc::clone(&cache));
    let plan = rewrite(
        &lower(&parse("for { r <- Regions, v <- r.voxels, v > 10 } yield sum v").unwrap()).unwrap(),
    );
    let oracle = run_volcano(&plan, &cat).unwrap();

    // Cold run populates replicas of both touched Regions columns.
    let (v1, s1) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
    assert_eq!(v1, oracle);
    assert!(s1.raw_columns > 0 && s1.unnest_pipelines == 1, "{s1:?}");

    // Re-shape the nested column's replica to binary JSON by hand (as the
    // cost model does for fat nested fields) and drop the parsed one: the
    // warm unnest must rehydrate through the BinaryJson decode path.
    let plugin = vida_exec::SourceProvider::plugin(&cat, "Regions").unwrap();
    let nested_col: Vec<Value> = (0..plugin.num_units())
        .map(|r| plugin.read_field(r, 1).unwrap())
        .collect();
    let replica = CachedData::from_values(&nested_col, Layout::BinaryJson).unwrap();
    // Nested values round-trip through the binary codec.
    let (decoded, _) = bson::decode_value(&bson::to_bytes(&nested_col[1]), 0).unwrap();
    assert_eq!(decoded, nested_col[1]);
    cache.put(
        CacheKey::new("Regions", "voxels", Layout::BinaryJson),
        replica,
        plugin.fingerprint(),
    );
    cache.remove(&CacheKey::new("Regions", "voxels", Layout::Values));

    let (v2, s2) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
    assert_eq!(v2, oracle);
    assert!(s2.served_from_cache, "{s2:?}");
    assert_eq!(s2.raw_columns, 0, "{s2:?}");
    assert_eq!(s2.unnest_pipelines, 1);
}

#[test]
fn nested_fields_feed_the_cost_model() {
    let cat = catalog(64);
    let cache = Arc::new(CacheManager::new(1 << 20));
    let model = Arc::new(CostModel::new());
    let opts = JitOptions::with_cost_model(Arc::clone(&cache), Arc::clone(&model));
    let plan = rewrite(
        &lower(&parse("for { r <- Regions, v <- r.voxels } yield count v").unwrap()).unwrap(),
    );
    let (_, s1) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
    assert_eq!(s1.whole_query_fallbacks, 0, "{s1:?}");
    // The unnest pipeline observed the nested column: it now participates
    // in layout selection like any scalar field.
    let profile = model
        .profile("Regions", "voxels")
        .expect("nested field tracked by the cost model");
    assert_eq!(profile.touches, 1);
    assert!(profile.avg_value_bytes > 0.0);
    // And warm runs are served from whatever layout the model picked.
    let (v2, s2) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
    assert_eq!(v2, run_volcano(&plan, &cat).unwrap());
    assert!(s2.served_from_cache, "{s2:?}");
}
