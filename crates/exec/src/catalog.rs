//! Data-source resolution for the executors.
//!
//! Executors see datasets through [`SourceProvider`] — the runtime face of
//! the catalog. `vida` (the engine facade) implements it over registered
//! source descriptions; tests and benchmarks use [`MemoryCatalog`].

use std::collections::HashMap;
use std::sync::Arc;
use vida_formats::plugin::MemPlugin;
use vida_formats::InputPlugin;
use vida_types::sync::RwLock;
use vida_types::{Result, Schema, Value, VidaError};

/// Resolves dataset names to bound input plugins.
pub trait SourceProvider: Send + Sync {
    fn plugin(&self, dataset: &str) -> Result<Arc<dyn InputPlugin>>;

    /// All registered dataset names (diagnostics).
    fn dataset_names(&self) -> Vec<String>;

    /// Swap in a replacement plugin for `dataset` — called by the executor
    /// after revalidation notices the backing file changed, so later
    /// queries bind the fresh reader instead of re-running revalidation.
    /// The default is a no-op for catalogs without resident plugin state.
    fn install(&self, _dataset: &str, _plugin: Arc<dyn InputPlugin>) {}

    /// Materialize a whole dataset as a bag value (used for datasets
    /// referenced inside nested head comprehensions).
    fn materialize(&self, dataset: &str) -> Result<Value> {
        let plugin = self.plugin(dataset)?;
        let mut items = Vec::with_capacity(plugin.num_units());
        for row in 0..plugin.num_units() {
            items.push(plugin.read_unit(row)?);
        }
        Ok(Value::bag(items))
    }
}

/// A simple in-memory catalog of plugins.
#[derive(Default)]
pub struct MemoryCatalog {
    plugins: RwLock<HashMap<String, Arc<dyn InputPlugin>>>,
}

impl MemoryCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register any plugin under its own name.
    pub fn register(&self, plugin: Arc<dyn InputPlugin>) {
        self.plugins
            .write()
            .insert(plugin.name().to_string(), plugin);
    }

    /// Convenience: register an in-memory dataset from record values.
    pub fn register_records(
        &self,
        name: impl Into<String>,
        schema: Schema,
        records: &[Value],
    ) -> Result<()> {
        let name = name.into();
        let plugin = MemPlugin::from_records(name, schema, records)?;
        self.register(Arc::new(plugin));
        Ok(())
    }
}

impl SourceProvider for MemoryCatalog {
    fn plugin(&self, dataset: &str) -> Result<Arc<dyn InputPlugin>> {
        self.plugins
            .read()
            .get(dataset)
            .cloned()
            .ok_or_else(|| VidaError::Catalog(format!("unknown dataset '{dataset}'")))
    }

    fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.plugins.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn install(&self, dataset: &str, plugin: Arc<dyn InputPlugin>) {
        self.plugins.write().insert(dataset.to_string(), plugin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_types::Type;

    #[test]
    fn register_and_resolve() {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("id", Type::Int)]),
            &[Value::record([("id", Value::Int(1))])],
        )
        .unwrap();
        let p = cat.plugin("T").unwrap();
        assert_eq!(p.num_units(), 1);
        assert!(cat.plugin("missing").is_err());
        assert_eq!(cat.dataset_names(), vec!["T"]);
    }

    #[test]
    fn install_swaps_the_resident_plugin() {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("id", Type::Int)]),
            &[Value::record([("id", Value::Int(1))])],
        )
        .unwrap();
        let replacement = MemPlugin::from_records(
            "T",
            Schema::from_pairs([("id", Type::Int)]),
            &[
                Value::record([("id", Value::Int(1))]),
                Value::record([("id", Value::Int(2))]),
            ],
        )
        .unwrap();
        cat.install("T", Arc::new(replacement));
        // Later resolutions bind the fresh reader, not the stale one.
        assert_eq!(cat.plugin("T").unwrap().num_units(), 2);
        assert_eq!(cat.dataset_names(), vec!["T"]);
    }

    #[test]
    fn materialize_returns_bag() {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("id", Type::Int)]),
            &[
                Value::record([("id", Value::Int(1))]),
                Value::record([("id", Value::Int(2))]),
            ],
        )
        .unwrap();
        let v = cat.materialize("T").unwrap();
        assert_eq!(v.elements().unwrap().len(), 2);
    }
}
