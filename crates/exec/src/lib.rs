//! # vida-exec
//!
//! ViDa's query executors (§4, §4.1).
//!
//! Two engines over the same algebra plans:
//!
//! 1. **The JIT executor** ([`pipeline`]) — the paper's contribution. At
//!    query time it *generates* a specialized pipeline: input plugins bound
//!    to exactly the attributes the query touches, Cranelift-compiled
//!    predicate/projection kernels over register frames, hash joins when
//!    equi-keys exist, fused monoid accumulators, and layout-aware cache
//!    reads/writes. No general-purpose checks survive into the inner loop.
//!
//! 2. **The interpreted Volcano engine** ([`volcano`]) — the "static,
//!    pre-cooked operators" comparator (§4): generic operators over tagged
//!    values with dynamic dispatch and per-tuple interpretation overhead.
//!    It doubles as a semantic oracle in differential tests.
//!
//! [`output`] implements the output plugins of Figure 3/Figure 4: results
//! materialize as parsed values, text, binary JSON, or CSV rows.

pub mod catalog;
pub mod engine;
pub mod output;
pub mod pipeline;
pub mod stats;
pub mod volcano;

pub use catalog::{MemoryCatalog, SourceProvider};
pub use engine::{Engine, Session};
pub use output::OutputFormat;
pub use pipeline::{run_jit, run_jit_with_stats, JitOptions};
pub use stats::ExecStats;
pub use vida_trace::{chrome_trace_json, global_metrics, stage, QueryTrace};
pub use volcano::run_volcano;
