//! The resident query engine: one long-lived owner of all cross-query
//! execution state.
//!
//! [`run_jit`](crate::run_jit) treats every query as an island — it spawns
//! worker threads, builds a string interner, and throws both away when the
//! call returns. An [`Engine`] keeps that state resident instead:
//!
//! - **one worker pool** (`WorkerPool::resident`): workers spawn once and
//!   park between queries; parallel phases *attach* runs to the pool
//!   instead of spawning threads, and concurrent sessions' morsels
//!   interleave on the same workers (morsel-granularity time slicing);
//! - **the shared catalog, cache, and cost model** (carried inside the
//!   engine's default [`JitOptions`]): replica caches, sketches, and
//!   PR-9-style plugin revalidation all accumulate across queries exactly
//!   as repeated `run_jit` calls with shared `Arc`s would;
//! - **one string interner** ([`SharedInterner`]): kernel string ids are
//!   stable across sessions, and `Str` unnest elements can intern at
//!   runtime from parallel workers;
//! - **accumulated [`ExecStats`]**: every session's per-query stats fold
//!   into an engine-wide tally ([`Engine::stats`]).
//!
//! Per-query state lives in a [`Session`]: its own `JitOptions` overrides
//! (tracing, plan-opt, interpret-only — anything except the worker count,
//! which the pool fixes), its own accumulated stats, and an optional
//! **tenant id** that cache replica writes are billed to
//! (`CacheManager::put_with_cost_for`), so one tenant's working set cannot
//! evict another in-quota tenant's.
//!
//! Results are bit-identical to [`run_jit`](crate::run_jit) at the same
//! worker count: both funnel into the same internal execution path, and
//! morsel boundaries depend only on the data — never on which pool runs
//! them or what else is attached to it.

use crate::catalog::SourceProvider;
use crate::pipeline::{execute_with_context, ExecContext, JitOptions};
use crate::stats::ExecStats;
use std::sync::Arc;
use vida_algebra::Plan;
use vida_cache::CacheManager;
use vida_jit::SharedInterner;
use vida_parallel::WorkerPool;
use vida_types::sync::Mutex;
use vida_types::{Result, Value};

/// A resident query engine: one parked worker pool, one interner, one
/// catalog, and the shared cache/cost-model state, serving any number of
/// concurrent [`Session`]s.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use vida_algebra::{lower, rewrite};
/// use vida_exec::{Engine, JitOptions, MemoryCatalog};
/// use vida_lang::parse;
/// use vida_types::{Schema, Type, Value};
///
/// let cat = MemoryCatalog::new();
/// cat.register_records(
///     "T",
///     Schema::from_pairs([("x", Type::Int)]),
///     &[Value::record([("x", Value::Int(41))])],
/// )
/// .unwrap();
/// let engine = Engine::new(Arc::new(cat), JitOptions::default());
/// let plan = rewrite(&lower(&parse("for { t <- T } yield sum t.x").unwrap()).unwrap());
/// assert_eq!(engine.execute(&plan).unwrap(), Value::Int(41));
/// assert_eq!(engine.stats().queries, 1);
/// ```
pub struct Engine {
    catalog: Arc<dyn SourceProvider>,
    /// Session defaults; also the owner of the shared cache + cost model.
    defaults: JitOptions,
    /// The resident pool — workers spawned once, parked between queries.
    pool: WorkerPool,
    /// Engine-wide string table: ids stable across sessions.
    interner: Arc<SharedInterner>,
    /// Every session's per-query stats, accumulated.
    stats: Mutex<ExecStats>,
}

impl Engine {
    /// Build an engine over `catalog`. `defaults.effective_threads()`
    /// fixes the resident pool's size for the engine's lifetime; the
    /// other options (cache, cost model, tracing, …) become per-session
    /// defaults.
    pub fn new(catalog: Arc<dyn SourceProvider>, defaults: JitOptions) -> Self {
        let pool = WorkerPool::resident(defaults.effective_threads());
        Engine {
            catalog,
            defaults,
            pool,
            interner: Arc::new(SharedInterner::new()),
            stats: Mutex::new(ExecStats::default()),
        }
    }

    /// Open an untenanted session with the engine's default options.
    pub fn session(&self) -> Session<'_> {
        self.session_with(None)
    }

    /// Open a session whose cache replica writes are billed to `tenant`
    /// (see `CacheManager::set_tenant_budget`).
    pub fn session_for(&self, tenant: impl Into<String>) -> Session<'_> {
        self.session_with(Some(tenant.into()))
    }

    fn session_with(&self, tenant: Option<String>) -> Session<'_> {
        Session {
            engine: self,
            opts: self.defaults.clone(),
            tenant,
            stats: ExecStats::default(),
        }
    }

    /// Execute one plan through a throwaway untenanted session — the
    /// resident-engine equivalent of [`run_jit`](crate::run_jit).
    pub fn execute(&self, plan: &Plan) -> Result<Value> {
        self.session().execute(plan)
    }

    /// Execute one plan, returning its [`ExecStats`].
    pub fn execute_with_stats(&self, plan: &Plan) -> Result<(Value, ExecStats)> {
        self.session().execute_with_stats(plan)
    }

    /// The resident pool's worker count (fixed at construction).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The catalog every session scans.
    pub fn catalog(&self) -> &Arc<dyn SourceProvider> {
        &self.catalog
    }

    /// The shared replica cache, when one is attached.
    pub fn cache(&self) -> Option<&Arc<CacheManager>> {
        self.defaults.cache.as_ref()
    }

    /// The engine-wide string interner.
    pub fn interner(&self) -> &Arc<SharedInterner> {
        &self.interner
    }

    /// Accumulated stats across every query any session ran.
    pub fn stats(&self) -> ExecStats {
        self.stats.lock().clone()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.pool.threads())
            .field("cached", &self.defaults.cache.is_some())
            .field("interned", &self.interner.len())
            .finish()
    }
}

/// One query stream's handle on an [`Engine`]: per-session option
/// overrides, a tenant id for cache billing, and accumulated stats.
/// Sessions are cheap — open one per client thread; every session's
/// parallel work shares (and time-slices on) the engine's one pool.
pub struct Session<'e> {
    engine: &'e Engine,
    opts: JitOptions,
    tenant: Option<String>,
    stats: ExecStats,
}

impl Session<'_> {
    /// Per-session option overrides (tracing, plan-opt, morsel size, …).
    /// The worker count is the engine pool's and cannot be changed here —
    /// `threads`/`clamp_threads` edits are ignored at execution.
    pub fn options_mut(&mut self) -> &mut JitOptions {
        &mut self.opts
    }

    /// The tenant this session's cache writes are billed to.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Execute one plan on the engine's resident pool.
    pub fn execute(&mut self, plan: &Plan) -> Result<Value> {
        self.execute_with_stats(plan).map(|(v, _)| v)
    }

    /// Execute one plan, returning its per-query [`ExecStats`] (also
    /// folded into the session's and engine's accumulators).
    pub fn execute_with_stats(&mut self, plan: &Plan) -> Result<(Value, ExecStats)> {
        let ctx = ExecContext {
            pool: self.engine.pool.clone(),
            interner: Arc::clone(&self.engine.interner),
            tenant: self.tenant.clone(),
        };
        let (value, stats) =
            execute_with_context(plan, self.engine.catalog.as_ref(), &self.opts, &ctx)?;
        self.stats.accumulate(&stats);
        self.engine.stats.lock().accumulate(&stats);
        Ok((value, stats))
    }

    /// Accumulated stats across this session's queries.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemoryCatalog;
    use crate::pipeline::{run_jit, run_jit_with_stats};
    use vida_algebra::{lower, rewrite};
    use vida_lang::parse;
    use vida_types::{Schema, Type};

    fn catalog() -> Arc<MemoryCatalog> {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "Patients",
            Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)]),
            &[
                Value::record([
                    ("id", Value::Int(1)),
                    ("age", Value::Int(71)),
                    ("city", Value::str("geneva")),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    ("age", Value::Int(34)),
                    ("city", Value::str("bern")),
                ]),
                Value::record([
                    ("id", Value::Int(3)),
                    ("age", Value::Int(65)),
                    ("city", Value::str("geneva")),
                ]),
            ],
        )
        .unwrap();
        Arc::new(cat)
    }

    fn plan_of(q: &str) -> Plan {
        rewrite(&lower(&parse(q).unwrap()).unwrap())
    }

    #[test]
    fn engine_execute_matches_run_jit() {
        let cat = catalog();
        let engine = Engine::new(cat.clone(), JitOptions::default());
        for q in [
            "for { p <- Patients, p.age > 60 } yield count p",
            "for { p <- Patients } yield avg p.age",
            "for { p <- Patients, p.city = \"geneva\" } yield list p.id",
        ] {
            let plan = plan_of(q);
            let via_shim = run_jit(&plan, cat.as_ref(), &JitOptions::default()).unwrap();
            assert_eq!(engine.execute(&plan).unwrap(), via_shim, "{q}");
        }
        assert_eq!(engine.stats().queries, 3);
    }

    #[test]
    fn sessions_accumulate_stats_independently() {
        let engine = Engine::new(catalog(), JitOptions::default());
        let plan = plan_of("for { p <- Patients } yield sum p.age");
        let mut a = engine.session();
        let mut b = engine.session_for("tenant-b");
        a.execute(&plan).unwrap();
        a.execute(&plan).unwrap();
        b.execute(&plan).unwrap();
        assert_eq!(a.stats().queries, 2);
        assert_eq!(b.stats().queries, 1);
        assert_eq!(b.tenant(), Some("tenant-b"));
        assert_eq!(engine.stats().queries, 3);
    }

    #[test]
    fn engine_interner_is_shared_across_sessions() {
        let engine = Engine::new(catalog(), JitOptions::default());
        let plan = plan_of("for { p <- Patients, p.city = \"geneva\" } yield count p");
        engine.execute(&plan).unwrap();
        let interned_once = engine.interner().len();
        assert!(interned_once > 0, "string constant should intern");
        engine.execute(&plan).unwrap();
        // The second session reuses the resident table instead of
        // rebuilding it.
        assert_eq!(engine.interner().len(), interned_once);
    }

    #[test]
    fn session_options_override_per_query_behaviour() {
        let engine = Engine::new(catalog(), JitOptions::default());
        let plan = plan_of("for { p <- Patients, p.age > 60 } yield sum p.age");
        let mut s = engine.session();
        s.options_mut().interpret_only = true;
        let (v, stats) = s.execute_with_stats(&plan).unwrap();
        assert_eq!(v, Value::Int(136));
        assert_eq!(stats.kernels_compiled, 0);
    }

    #[test]
    fn shim_and_engine_share_one_execution_path() {
        // The shim's per-call context reproduces pre-resident behaviour:
        // fresh interner, spawn-mode pool, identical stats shape.
        let cat = catalog();
        let plan = plan_of("for { p <- Patients, p.age > 60 } yield count p");
        let (v, stats) = run_jit_with_stats(&plan, cat.as_ref(), &JitOptions::default()).unwrap();
        let engine = Engine::new(cat, JitOptions::default());
        let (ev, estats) = engine.execute_with_stats(&plan).unwrap();
        assert_eq!(v, ev);
        assert_eq!(stats.kernels_compiled, estats.kernels_compiled);
        assert_eq!(stats.tuples_scanned, estats.tuples_scanned);
    }
}
