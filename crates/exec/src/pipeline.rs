//! The JIT executor — per-query generated pipelines (ViDa §4.1).
//!
//! [`run_jit`] turns a `Reduce`-rooted algebra plan into a specialized
//! pipeline at query time:
//!
//! - **input plugins bound to exactly the touched attributes**: the analysis
//!   pass collects every `binding.field` path the query references and the
//!   generated scans read only those columns — no "database page" of unused
//!   attributes is ever built;
//! - **register frames**: each touched scalar attribute gets one 64-bit slot
//!   in a query-wide [`FrameLayout`]; columns are pre-encoded to their slot
//!   representation at pipeline-generation time, so per-tuple work in the
//!   hot loop is a flat `i64` copy plus kernel calls;
//! - **compiled kernels**: filter predicates, join keys, and head
//!   expressions inside the compilable subset become fused
//!   [`CompiledKernel`]s (type dispatch resolved at generation time);
//!   everything else — and every tuple whose frame cannot encode (nulls,
//!   non-scalars) — takes the interpreted fallback path, the hybrid
//!   execution §6 describes;
//! - **hash joins when equi-keys exist**: `Plan::equi_join_keys` supplies
//!   the build/probe key expressions, compiled against the shared frame;
//! - **theta-join pipelines otherwise**: a range predicate
//!   (`Plan::band_join_keys`) compiles into band key kernels and probes a
//!   sorted key index; any other predicate (including the constant-`true`
//!   product) runs block-nested-loop with the predicate compiled into one
//!   fused kernel;
//! - **unnest stages**: `Plan::Unnest` flattens collection-valued paths
//!   (nested JSON columns, including cached `BinaryJson` replicas) into the
//!   flat register frames — scalar elements get their own slots (strings
//!   intern through the shared lock-guarded interner) so inner predicates
//!   compile to kernels, and everything else takes the per-tuple
//!   interpreted fallback;
//! - **bushy joins lowered**: `vida_algebra::lower::left_deepen` rotates
//!   bushy join trees into the left-deep chains the pipelines execute
//!   before shape analysis, so directly-constructed bushy plans compile
//!   too;
//! - **cost-model-driven cache replicas**: with a [`CacheManager`] attached,
//!   touched columns are served from cached replicas and raw-file reads
//!   populate the cache for the next query. With a
//!   [`CostModel`] attached too, the pipeline
//!   records per-field access statistics after every query and the model
//!   decides each replica's layout — parsed `Values`, compact `BinaryJson`,
//!   or `Positions` (raw byte spans rehydrated by exact-seek parses) — plus
//!   the `get_any` probe order and a rebuild-cost eviction bonus (§5);
//! - **monoid folding**: results fold with the output monoid; collection
//!   monoids accumulate and canonicalize once at the end, and `count` with a
//!   total head skips head evaluation entirely.
//!
//! Only genuinely degenerate plans fall back to the interpreted Volcano
//! engine wholesale — constant queries over the unit dataset, unnests whose
//! input is the unit row (literal collections), joins whose right side is
//! not a scan, and every join under `interpret_only` — so `run_jit` is
//! total over all valid plans and `ExecStats::whole_query_fallbacks`
//! records when the fallback engine ran.
//!
//! Execution is a **streaming push loop** (HyPer-style data-centric
//! pipelines): each compiled stage consumes one tuple at a time and pushes
//! it into the next stage's consumer closure, so
//! select→project→unnest→probe→fold chains fuse end to end with **no
//! intermediate `Vec<Tuple>`** between operators. The only pipeline
//! breakers are join build sides (hash tables / band indexes), which
//! materialize once per join before the loop starts.
//! `ExecStats::operator_materializations` stays 0 on every pipeline-covered
//! shape (and `fused_stage_depth` reports the fused chain length); the
//! legacy pull-and-materialize executor survives behind
//! `JitOptions::materialize_stages` as the ablation baseline the
//! `streaming_fusion` bench measures against.
//!
//! With `JitOptions::threads > 1` the same fused pipeline runs
//! **morsel-driven parallel** (`vida-parallel`): raw scans split into
//! aligned byte ranges parsed by concurrent workers, join builds
//! materialize morsel-parallel (radix-partitioned), and the leftmost scan's
//! rows split into morsels that each worker drives through the whole stage
//! chain into a private partial fold; partials merge in morsel order.
//! Morsel boundaries depend only on the data — never the worker count — so
//! every parallel thread count produces the same result (float folds
//! reassociate at morsel boundaries, so serial vs parallel can differ in
//! the last ulp for `sum`/`prod`/`avg` over floats; everything else is
//! bit-identical), and `threads <= 1` takes the serial push loop.

use crate::catalog::SourceProvider;
use crate::stats::ExecStats;
use crate::volcano::run_volcano;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use vida_algebra::lower::{left_deepen, split_conjuncts, UNIT_DATASET};
use vida_algebra::Plan;
use vida_cache::{bson, CacheKey, CacheManager, CachedData, FoldPartial, Layout};
use vida_formats::Revalidation;
use vida_jit::compile::path_of;
use vida_jit::frame::{decode_output, StringInterner};
use vida_jit::{CompiledKernel, FrameLayout, JitCompiler, SelectKernel, SharedInterner, SlotType};
use vida_lang::{eval, BinOp, Bindings, Expr, Qualifier};
use vida_optimizer::{CostModel, FieldObservation};
use vida_parallel::{
    partition_of, plan_scan, plan_scan_tail, radix, MorselPlan, WorkerPool, DEFAULT_MORSEL_UNITS,
};
use vida_trace::{stage, QueryTrace};
use vida_types::{CollectionKind, Monoid, PrimitiveMonoid, Result, Type, Value, VidaError};

/// Options controlling pipeline generation.
///
/// # Example
///
/// Attach a cache and the optimizer's cost model, then run the same query
/// twice: the second run is served from adaptively-chosen column replicas.
///
/// ```
/// use std::sync::Arc;
/// use vida_algebra::{lower, rewrite};
/// use vida_cache::CacheManager;
/// use vida_exec::{run_jit_with_stats, JitOptions, MemoryCatalog};
/// use vida_lang::parse;
/// use vida_optimizer::CostModel;
/// use vida_types::{Schema, Type, Value};
///
/// let cat = MemoryCatalog::new();
/// cat.register_records(
///     "T",
///     Schema::from_pairs([("x", Type::Int)]),
///     &[Value::record([("x", Value::Int(41))])],
/// )
/// .unwrap();
/// let opts = JitOptions::with_cost_model(
///     Arc::new(CacheManager::new(1 << 20)),
///     Arc::new(CostModel::new()),
/// );
/// let plan = rewrite(&lower(&parse("for { t <- T } yield sum t.x").unwrap()).unwrap());
/// let (_, cold) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
/// let (v, warm) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
/// assert_eq!(v, Value::Int(41));
/// assert!(!cold.served_from_cache && warm.served_from_cache);
/// ```
#[derive(Clone)]
pub struct JitOptions {
    /// Cache consulted for column replicas and populated on raw reads.
    pub cache: Option<Arc<CacheManager>>,
    /// Cost model deciding replica layouts (§5). With a model attached the
    /// pipeline records per-field access statistics after every query,
    /// writes replicas in the layout the model chooses (`Values`,
    /// `BinaryJson`, or `Positions`), probes `get_any` in model order, and
    /// weighs eviction by rebuild cost. Without one, raw reads always write
    /// `Values` replicas (the pre-model behaviour). Ignored unless `cache`
    /// is also set.
    pub cost_model: Option<Arc<CostModel>>,
    /// Disable kernel compilation: single-source pipelines still bind
    /// plugins to touched attributes but evaluate every expression through
    /// the interpreter (isolates codegen wins in benchmarks); joins need
    /// compiled key kernels and fall back to the Volcano engine wholesale.
    pub interpret_only: bool,
    /// Worker threads for morsel-driven execution. `0` or `1` runs the
    /// original serial path (bit-identical to the pre-parallel engine);
    /// higher counts split scans, joins, and folds across workers. Every
    /// parallel thread count produces the same result: morsel boundaries
    /// depend only on the data, and partial folds merge in morsel order.
    /// The parallel result also equals the serial one, except that float
    /// `sum`/`prod`/`avg` reassociate addition at morsel boundaries and may
    /// differ from serial in the last ulp (tuple sets, element order, and
    /// every exact monoid match bit for bit).
    pub threads: usize,
    /// Units per morsel for unit-count morsel plans (`0` = the
    /// `vida-parallel` default). Mainly for tests, which shrink it to force
    /// multi-morsel coverage on small fixtures.
    pub morsel_rows: usize,
    /// Clamp `threads` to `std::thread::available_parallelism()` (default
    /// `true`): oversubscribing a core costs ~15% on scan+fold with zero
    /// upside. Set `false` to force oversubscription (tests and scheduling
    /// benchmarks deliberately run many workers on few cores).
    pub clamp_threads: bool,
    /// Ablation baseline: run the legacy **materializing** executor — every
    /// operator stage produces a full `Vec<Tuple>` handed to the next stage
    /// — instead of the streaming push loop. Serial only (`threads` is
    /// ignored). `ExecStats::operator_materializations` counts the buffers
    /// it pays for; the `streaming_fusion` bench uses it to measure what
    /// fusion buys.
    pub materialize_stages: bool,
    /// Record a per-query span trace (opt-in observability): nested stage
    /// spans on the coordinator track, per-morsel spans on worker tracks,
    /// and per-kernel invocation counts, all collected into
    /// `ExecStats::trace`. Export with [`vida_trace::chrome_trace_json`] or
    /// render with `QueryTrace::explain_analyze`. Off (the default) the
    /// tracing hooks compile to single `Option` checks.
    pub trace: bool,
    /// Cost-based plan optimization (default `true`; `--no-plan-opt` is the
    /// escape hatch): join reordering + build-side choice by estimated
    /// cardinality via `vida_optimizer::reorder_joins`, and selectivity-
    /// ordered conjunct evaluation inside fused select kernels. Applied
    /// only where provably result-invariant (order-insensitive monoids,
    /// total-safe conjuncts — see the optimizer's `plan` module docs);
    /// estimates come from catalog row counts plus the cost model's
    /// distinct/selectivity sketches when one is attached.
    pub plan_opt: bool,
}

impl Default for JitOptions {
    fn default() -> Self {
        JitOptions {
            cache: None,
            cost_model: None,
            interpret_only: false,
            threads: 0,
            morsel_rows: 0,
            clamp_threads: true,
            materialize_stages: false,
            trace: false,
            plan_opt: true,
        }
    }
}

impl JitOptions {
    /// Options with a cache attached.
    pub fn with_cache(cache: Arc<CacheManager>) -> Self {
        JitOptions {
            cache: Some(cache),
            ..JitOptions::default()
        }
    }

    /// Options with a cache and the cost model steering its replica
    /// layouts.
    pub fn with_cost_model(cache: Arc<CacheManager>, model: Arc<CostModel>) -> Self {
        JitOptions {
            cache: Some(cache),
            cost_model: Some(model),
            ..JitOptions::default()
        }
    }

    /// Options running `threads` morsel-driven workers.
    pub fn with_threads(threads: usize) -> Self {
        JitOptions {
            threads,
            ..JitOptions::default()
        }
    }

    /// Enable per-query span tracing on these options.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Effective worker count: `0` normalizes to 1, and (unless
    /// `clamp_threads` is off) the count is capped at the machine's
    /// available parallelism — extra workers on a saturated core only add
    /// scheduling overhead.
    pub fn effective_threads(&self) -> usize {
        let t = self.threads.max(1);
        if self.clamp_threads {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            t.min(cores)
        } else {
            t
        }
    }
}

/// Execute a plan with the JIT engine.
///
/// The plan must be `Reduce`-rooted (every lowered comprehension is); plan
/// shapes outside the generated pipelines transparently fall back to the
/// interpreted Volcano engine, so `run_jit` is total over valid plans.
///
/// # Example
///
/// ```
/// use vida_algebra::{lower, rewrite};
/// use vida_exec::{run_jit, JitOptions, MemoryCatalog};
/// use vida_lang::parse;
/// use vida_types::{Schema, Type, Value};
///
/// let cat = MemoryCatalog::new();
/// cat.register_records(
///     "Patients",
///     Schema::from_pairs([("id", Type::Int), ("age", Type::Int)]),
///     &[
///         Value::record([("id", Value::Int(1)), ("age", Value::Int(71))]),
///         Value::record([("id", Value::Int(2)), ("age", Value::Int(34))]),
///     ],
/// )
/// .unwrap();
/// let expr = parse("for { p <- Patients, p.age > 60 } yield count p").unwrap();
/// let plan = rewrite(&lower(&expr).unwrap());
/// assert_eq!(run_jit(&plan, &cat, &JitOptions::default()).unwrap(), Value::Int(1));
/// ```
pub fn run_jit(plan: &Plan, catalog: &dyn SourceProvider, opts: &JitOptions) -> Result<Value> {
    run_jit_with_stats(plan, catalog, opts).map(|(v, _)| v)
}

/// Execute a plan with the JIT engine, returning execution statistics.
///
/// This is the compatibility shim over the resident-engine execution path:
/// it synthesizes a per-call spawn-mode pool and a private interner, so
/// behaviour matches the pre-resident engine exactly (worker threads spawn
/// per parallel phase and string ids start at zero every call). Long-lived
/// callers should hold an [`Engine`](crate::engine::Engine) instead and let
/// its sessions share one parked worker pool, cache, and interner.
pub fn run_jit_with_stats(
    plan: &Plan,
    catalog: &dyn SourceProvider,
    opts: &JitOptions,
) -> Result<(Value, ExecStats)> {
    let ctx = ExecContext {
        pool: WorkerPool::new(opts.effective_threads()),
        interner: Arc::new(SharedInterner::new()),
        tenant: None,
    };
    execute_with_context(plan, catalog, opts, &ctx)
}

/// Cross-query execution state threaded from the resident engine (or
/// synthesized per call by the [`run_jit`] shim): the worker pool every
/// parallel phase submits to, the interner string slots resolve through,
/// and the tenant that cache replica writes are billed to.
pub(crate) struct ExecContext {
    pub(crate) pool: WorkerPool,
    pub(crate) interner: Arc<SharedInterner>,
    pub(crate) tenant: Option<String>,
}

/// The one execution path both [`run_jit_with_stats`] and
/// `Engine::execute` funnel into.
pub(crate) fn execute_with_context(
    plan: &Plan,
    catalog: &dyn SourceProvider,
    opts: &JitOptions,
    ctx: &ExecContext,
) -> Result<(Value, ExecStats)> {
    let mut stats = ExecStats {
        queries: 1,
        trace: opts.trace.then(|| Box::new(QueryTrace::start())),
        ..Default::default()
    };
    let t0 = Instant::now();
    let pipeline = match PipelineBuilder::new(catalog, opts, ctx, &mut stats).build(plan)? {
        Some(p) => p,
        None => {
            // Whole-query fallback: shape outside the generated pipelines.
            stats.whole_query_fallbacks = 1;
            let v = run_volcano(plan, catalog)?;
            return Ok((v, stats));
        }
    };
    stats.codegen = t0.elapsed();
    let t1 = Instant::now();
    let value = pipeline.execute(&mut stats)?;
    stats.execution = t1.elapsed();
    // Pair the optimizer's estimate with the observed pipeline output so
    // `cardinality_error` compares like with like after accumulation.
    if stats.estimated_rows > 0 {
        stats.estimated_rows_actual = stats.actual_rows;
    }
    stats.served_from_cache = stats.raw_columns == 0 && stats.cached_columns > 0;
    stats.queries_served_from_cache = stats.served_from_cache as u32;
    if let Some(trace) = stats.query_trace() {
        let hits: u64 = trace.kernel_invocations().iter().sum();
        vida_trace::global_metrics().kernel_invocations.add(hits);
    }
    Ok((value, stats))
}

/// One boolean evaluation step: a compiled kernel (with its source
/// expression for null-tuple fallback) or an interpreted expression.
enum Step {
    Kernel(CompiledKernel, Expr),
    Interp(Expr),
}

/// How the reduce head is evaluated per surviving tuple. Compiled variants
/// carry the source expression for tuples on the fallback path.
enum HeadPlan {
    /// `count` with a total head: no evaluation needed at all.
    CountOnly,
    /// Scalar head compiled to one kernel.
    Kernel(CompiledKernel, Expr),
    /// Record head with every field compiled.
    RecordKernels(Vec<(String, CompiledKernel)>, Expr),
    /// Everything else: the reference interpreter.
    Interp(Expr),
}

impl HeadPlan {
    fn source_expr(&self) -> Option<&Expr> {
        match self {
            HeadPlan::CountOnly => None,
            HeadPlan::Kernel(_, e) | HeadPlan::RecordKernels(_, e) | HeadPlan::Interp(e) => Some(e),
        }
    }
}

/// A bound input: one scanned dataset with its materialized touched columns.
struct Source {
    binding: String,
    nrows: usize,
    /// Fields materialized for binding-record reconstruction, schema order.
    env_fields: Vec<(String, Arc<Vec<Value>>)>,
    /// `(global slot, encoded column)`; `None` cells mark tuples that must
    /// take the interpreted fallback (nulls, type mismatches).
    slot_cols: Vec<(usize, Vec<Option<i64>>)>,
    /// All global slot indexes owned by this source (for frame merging).
    slots: Vec<usize>,
    /// Selection steps applied as tuples leave the scan.
    selects: Vec<Step>,
    /// Fast path: when every select compiled, the chain is fused into one
    /// [`SelectKernel`] evaluated short-circuit per valid frame (invalid
    /// frames still walk `selects` through the interpreter).
    fused_selects: Option<SelectKernel>,
}

/// Pipeline tree: left-deep joins and unnest stages over bound sources.
///
/// The tree's left spine is one fused push pipeline: tuples stream from the
/// leftmost scan through every stage's sink without intermediate buffers.
/// Join right sides are the pipeline breakers — each is materialized once
/// into [`JoinBuild`] slot `build` before the push loop starts.
enum Node {
    Source(usize),
    HashJoin {
        left: Box<Node>,
        right: usize,
        /// Index into the prepared [`JoinBuild`] list (DFS order).
        build: usize,
        left_key: CompiledKernel,
        right_key: CompiledKernel,
        left_key_ty: SlotType,
        right_key_ty: SlotType,
        /// Promote int keys to float bits so `p.id = g.fid` hashes
        /// consistently across the numeric tower.
        float_keys: bool,
        /// Full join predicate, checked per candidate pair.
        predicate: Step,
        /// Selects sitting above this join.
        selects: Vec<Step>,
    },
    /// Non-equi join: band sort-probe when the predicate contains a range
    /// comparison between the two sides, block-nested-loop (with the
    /// predicate compiled into one fused kernel) otherwise.
    ThetaJoin {
        left: Box<Node>,
        right: usize,
        /// Index into the prepared [`JoinBuild`] list (DFS order).
        build: usize,
        band: Option<Band>,
        /// Full join predicate, checked per candidate pair.
        predicate: Step,
        /// Selects sitting above this join.
        selects: Vec<Step>,
    },
    /// Flatten a collection-valued path of earlier bindings; one output
    /// tuple per element, frame extended with the element's slots.
    Unnest {
        input: Box<Node>,
        /// Index into [`Pipeline::unnests`].
        stage: usize,
        /// Selects sitting above this unnest (may reference the element).
        selects: Vec<Step>,
    },
}

/// Sort-probe strategy for a range theta join: both band keys compile to
/// kernels; the right side sorts by key once and each probe narrows its
/// candidates to the half-open range satisfying `left_key op right_key`.
struct Band {
    left_key: CompiledKernel,
    right_key: CompiledKernel,
    /// Comparison with the left key on the left: `Lt`, `Le`, `Gt`, or `Ge`.
    op: BinOp,
    /// Compare keys in the float domain (the numeric tower mixed).
    float_keys: bool,
    left_key_ty: SlotType,
    right_key_ty: SlotType,
}

/// One compiled unnest stage: where the collection comes from and which
/// frame slots its elements fill.
struct UnnestStage {
    binding: String,
    path: Expr,
    /// Fast path: `(source index, touched-column position)` when the path
    /// is a single projection off a scanned source — the collection is read
    /// straight from the materialized column, no interpreter environment.
    src_col: Option<(usize, usize)>,
    /// Element slots: `None` = the element itself (scalar collections),
    /// `Some(field)` = a record element's field. `Str` slots intern their
    /// elements through the pipeline's shared interner at runtime.
    slots: Vec<(Option<String>, usize, SlotType)>,
}

/// One in-flight tuple: its register frame, whether every slot encoded, and
/// the provenance used to rebuild bindings on the fallback path — `(source,
/// row)` pairs for scans plus `(unnest stage, element)` values for unnests.
struct Tuple {
    frame: Vec<i64>,
    valid: bool,
    rows: Vec<(usize, usize)>,
    unnest_vals: Vec<(usize, Value)>,
}

struct Pipeline {
    sources: Vec<Source>,
    /// Unnest stages in plan DFS order (indexed by `Node::Unnest::stage`).
    unnests: Vec<UnnestStage>,
    root: Node,
    monoid: Monoid,
    head: HeadPlan,
    frame_width: usize,
    /// String table kernel constants were interned into and string frame
    /// slots resolve through. Shared with the engine on the resident path
    /// (so ids are stable across sessions) and lock-guarded, which is what
    /// lets `Str` unnest elements intern from parallel workers.
    interner: Arc<SharedInterner>,
    /// Datasets referenced inside nested head/predicate comprehensions,
    /// materialized up front (mirrors the Volcano engine).
    base_env: Bindings,
    /// Morsel-driven worker count; 1 = the serial path.
    threads: usize,
    /// The pool parallel phases submit to: the engine's resident pool
    /// (workers parked between queries, runs attached) or a per-query
    /// spawn-mode pool under the `run_jit` shim.
    pool: WorkerPool,
    /// Units per morsel (0 = `vida-parallel` default).
    morsel_rows: usize,
    /// Run the legacy materializing executor instead of the push loop.
    materialize_stages: bool,
    /// Fold-partial cache seam for single-source primitive folds (`None`
    /// for every other shape — they always run the plain full fold).
    fold_seam: Option<FoldSeam>,
}

/// Where cached pre-finalize fold partials are looked up and refreshed,
/// for queries that qualify: one scanned source (selects allowed), no
/// joins/unnests, a primitive output monoid, no free datasets, and not the
/// materializing ablation. When revalidation proved the source grew in
/// place and the cached partial covers exactly the unchanged prefix,
/// `reuse` carries it — the executor then drives only rows
/// `reuse.rows..nrows` and merges the partial in front (ViDa's O(delta)
/// warm re-query). After every qualifying fold the refreshed accumulator
/// is stored back under the current fingerprint.
struct FoldSeam {
    cache: Arc<CacheManager>,
    dataset: String,
    /// FNV-1a over the plan's debug rendering — the query half of the
    /// fold-cache key.
    query_hash: u64,
    /// Current source fingerprint, stamped on the refreshed partial.
    fingerprint: (u64, u64),
    /// Rows the refreshed partial will cover (the whole source).
    nrows: usize,
    reuse: Option<FoldPartial>,
}

/// Per-dataset revalidation verdict for one query, recorded when the
/// builder binds the scan and consumed by the cache protocol in
/// `materialize_columns`. Unchanged datasets have no entry.
#[derive(Clone, Copy)]
enum Freshness {
    /// The file grew in place: replicas and fold partials written under
    /// `prev_fingerprint` are still valid for the unchanged prefix.
    Extended {
        prev_fingerprint: (u64, u64),
        /// Unit count of the previous generation (validates that a retained
        /// replica really is the old column, not some other length).
        prev_units: usize,
        /// Leading units of the previous index the re-scan reproduced
        /// verbatim (one less than the old count when the old file ended
        /// mid-record and the append glued onto its last unit).
        prefix_units: usize,
    },
    /// Shrunk or edited in place: full invalidation, full re-scan.
    Rebuilt,
}

// ---------------------------------------------------------------------------
// Analysis + pipeline generation
// ---------------------------------------------------------------------------

/// Plan shape accepted by the generated pipelines.
enum Shape {
    Scan {
        binding: String,
        dataset: String,
        selects: Vec<Expr>,
    },
    Join {
        left: Box<Shape>,
        right: Box<Shape>, // always a Scan (Shape::of enforces it)
        predicate: Expr,
        selects: Vec<Expr>,
    },
    Unnest {
        input: Box<Shape>,
        binding: String,
        path: Expr,
        selects: Vec<Expr>,
    },
}

impl Shape {
    fn of(plan: &Plan) -> Option<Shape> {
        match plan {
            Plan::Scan { dataset, binding } => {
                if dataset == UNIT_DATASET {
                    return None;
                }
                Some(Shape::Scan {
                    dataset: dataset.clone(),
                    binding: binding.clone(),
                    selects: Vec::new(),
                })
            }
            Plan::Select { input, predicate } => {
                let mut inner = Shape::of(input)?;
                // Split `p1 and p2` into separate select steps: kernels
                // compile per conjunct (so the plan optimizer can rank
                // them) and the step chain short-circuits left-to-right
                // exactly like the interpreter's `and`.
                let mut conjuncts = Vec::new();
                split_conjuncts(predicate, &mut conjuncts);
                match &mut inner {
                    Shape::Scan { selects, .. }
                    | Shape::Join { selects, .. }
                    | Shape::Unnest { selects, .. } => selects.extend(conjuncts),
                }
                Some(inner)
            }
            Plan::Join {
                left,
                right,
                predicate,
            } => {
                let l = Shape::of(left)?;
                let r = Shape::of(right)?;
                if !matches!(r, Shape::Scan { .. }) {
                    // Bushy trees were already rotated left-deep by
                    // `left_deepen`; what remains here is a right side that
                    // is itself an unnest — stay interpreted.
                    return None;
                }
                Some(Shape::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    predicate: predicate.clone(),
                    selects: Vec::new(),
                })
            }
            Plan::Unnest {
                input,
                binding,
                path,
            } => {
                let inner = Shape::of(input)?;
                Some(Shape::Unnest {
                    input: Box::new(inner),
                    binding: binding.clone(),
                    path: path.clone(),
                    selects: Vec::new(),
                })
            }
            Plan::Reduce { .. } => None,
        }
    }

    fn exprs<'s>(&'s self, out: &mut Vec<&'s Expr>) {
        match self {
            Shape::Scan { selects, .. } => out.extend(selects.iter()),
            Shape::Join {
                left,
                right,
                predicate,
                selects,
            } => {
                left.exprs(out);
                right.exprs(out);
                out.push(predicate);
                out.extend(selects.iter());
            }
            Shape::Unnest {
                input,
                path,
                selects,
                ..
            } => {
                input.exprs(out);
                out.push(path);
                out.extend(selects.iter());
            }
        }
    }

    fn bound_vars(&self) -> Vec<String> {
        match self {
            Shape::Scan { binding, .. } => vec![binding.clone()],
            Shape::Join { left, right, .. } => {
                let mut v = left.bound_vars();
                v.extend(right.bound_vars());
                v
            }
            Shape::Unnest { input, binding, .. } => {
                let mut v = input.bound_vars();
                v.push(binding.clone());
                v
            }
        }
    }
}

/// Collect every maximal variable/projection path in an expression
/// (including inside nested comprehensions).
fn collect_paths(e: &Expr, out: &mut Vec<String>) {
    if let Some(p) = path_of(e) {
        out.push(p);
        return;
    }
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Zero(_) => {}
        Expr::Proj(inner, _) | Expr::UnOp(_, inner) | Expr::Singleton(_, inner) => {
            collect_paths(inner, out)
        }
        Expr::Lambda(_, body) => collect_paths(body, out),
        Expr::Record(fields) => {
            for (_, f) in fields {
                collect_paths(f, out);
            }
        }
        Expr::If(a, b, c) => {
            collect_paths(a, out);
            collect_paths(b, out);
            collect_paths(c, out);
        }
        Expr::BinOp(_, l, r) | Expr::Merge(_, l, r) | Expr::App(l, r) => {
            collect_paths(l, out);
            collect_paths(r, out);
        }
        Expr::Comprehension {
            head, qualifiers, ..
        } => {
            collect_paths(head, out);
            for q in qualifiers {
                match q {
                    Qualifier::Generator(_, src) => collect_paths(src, out),
                    Qualifier::Filter(f) => collect_paths(f, out),
                }
            }
        }
        Expr::ListLit(items) => {
            for i in items {
                collect_paths(i, out);
            }
        }
    }
}

/// Encode one value into its slot representation (the runtime half of
/// `FrameBuilder::fill_slot`, applied column-wise at generation time).
fn encode_cell(ty: SlotType, v: &Value, interner: &mut StringInterner) -> Option<i64> {
    match (ty, v) {
        (SlotType::Int, Value::Int(x)) => Some(*x),
        (SlotType::Float, Value::Float(x)) => Some(x.to_bits() as i64),
        (SlotType::Float, Value::Int(x)) => Some((*x as f64).to_bits() as i64),
        (SlotType::Bool, Value::Bool(b)) => Some(*b as i64),
        (SlotType::Str, Value::Str(s)) => Some(interner.intern(s)),
        _ => None,
    }
}

/// Encode one unnest element (or element field) into a non-string slot —
/// the interner-free half of [`encode_elem`], shared by every non-`Str`
/// element type.
fn encode_scalar(ty: SlotType, v: &Value) -> Option<i64> {
    match (ty, v) {
        (SlotType::Int, Value::Int(x)) => Some(*x),
        (SlotType::Float, Value::Float(x)) => Some(x.to_bits() as i64),
        (SlotType::Float, Value::Int(x)) => Some((*x as f64).to_bits() as i64),
        (SlotType::Bool, Value::Bool(b)) => Some(*b as i64),
        _ => None,
    }
}

/// Encode one unnest element (or element field) into a slot at runtime.
/// `Str` elements intern through the shared interner — safe from parallel
/// workers because the table is lock-guarded, and cheap because the build
/// pre-interned every string reachable through the direct-column path.
fn encode_elem(ty: SlotType, v: &Value, interner: &SharedInterner) -> Option<i64> {
    match (ty, v) {
        (SlotType::Str, Value::Str(s)) => Some(interner.intern(s)),
        _ => encode_scalar(ty, v),
    }
}

/// Static element type of an unnest path, plus the direct-column fast path
/// when the path is a single projection off a scanned source. Paths the
/// type walk cannot resolve (literal collections, nested comprehensions)
/// come back `Unknown` — the stage still runs, with every element-typed
/// expression interpreted.
fn unnest_elem_type(
    path: &Expr,
    specs: &[SourceSpec],
    unnests: &[UnnestSpec],
) -> (Type, Option<(usize, usize)>) {
    let Some(p) = path_of(path) else {
        return (Type::Unknown, None);
    };
    let mut segs = p.split('.');
    let root = segs.next().expect("paths are non-empty");
    let segs: Vec<&str> = segs.collect();
    let (mut ty, src) =
        if let Some((i, spec)) = specs.iter().enumerate().find(|(_, s)| s.binding == root) {
            let schema = spec.plugin.schema();
            let record = Type::record(
                schema
                    .fields()
                    .iter()
                    .map(|f| (f.name.clone(), f.ty.clone())),
            );
            (record, Some(i))
        } else if let Some(u) = unnests.iter().find(|u| u.binding == root) {
            (u.elem_ty.clone(), None)
        } else {
            return (Type::Unknown, None);
        };
    for s in &segs {
        match ty.field(s) {
            Some(t) => ty = t.clone(),
            None => return (Type::Unknown, None),
        }
    }
    let elem = ty.elem().cloned().unwrap_or(Type::Unknown);
    let src_col = match (src, segs.as_slice()) {
        (Some(i), [field]) => {
            let schema = specs[i].plugin.schema();
            specs[i]
                .touched
                .iter()
                .position(|&c| schema.fields()[c].name == *field)
                .map(|pos| (i, pos))
        }
        _ => None,
    };
    (elem, src_col)
}

/// One unnest stage bound during analysis: the element type steers slot
/// claiming, and later stages resolve paths rooted at this binding.
struct UnnestSpec {
    binding: String,
    path: Expr,
    elem_ty: Type,
    src_col: Option<(usize, usize)>,
    slots: Vec<(Option<String>, usize, SlotType)>,
}

/// One scan bound during analysis: plugin, touched columns, and claimed
/// slots. No column data is read until the whole plan is known to be
/// JIT-able — fallback queries must not pay for a scan the Volcano engine
/// will redo.
struct SourceSpec {
    binding: String,
    dataset: String,
    nrows: usize,
    plugin: Arc<dyn vida_formats::InputPlugin>,
    /// Touched schema column indexes, schema order.
    touched: Vec<usize>,
    /// `(position into touched, global slot, slot type)` for scalar fields.
    slot_meta: Vec<(usize, usize, SlotType)>,
}

/// Adapts the catalog + cost-model sketches to the optimizer's `PlanStats`:
/// base cardinalities come from plugin unit counts (known without scanning
/// — positional maps / semi-indexes are built at description time), and
/// distinct counts / predicate selectivities from the sketches the pipeline
/// feeds after each query. Without a cost model only base cardinalities are
/// available, which still orders joins by relation size.
struct CatalogEstimates<'a> {
    catalog: &'a dyn SourceProvider,
    model: Option<&'a CostModel>,
}

impl vida_optimizer::PlanStats for CatalogEstimates<'_> {
    fn base_rows(&self, dataset: &str) -> Option<f64> {
        let plugin = self.catalog.plugin(dataset).ok()?;
        Some(plugin.num_units() as f64)
    }

    fn distinct(&self, dataset: &str, field: &str) -> Option<f64> {
        self.model?.sketch().distinct(dataset, field)
    }

    fn predicate_selectivity(&self, predicate: &str) -> Option<f64> {
        self.model?.sketch().predicate_selectivity(predicate)
    }
}

struct PipelineBuilder<'a> {
    catalog: &'a dyn SourceProvider,
    opts: &'a JitOptions,
    ctx: &'a ExecContext,
    stats: &'a mut ExecStats,
    /// Revalidation verdicts of the datasets this query binds (absent =
    /// unchanged on disk, serve caches as usual).
    freshness: HashMap<String, Freshness>,
}

impl<'a> PipelineBuilder<'a> {
    fn new(
        catalog: &'a dyn SourceProvider,
        opts: &'a JitOptions,
        ctx: &'a ExecContext,
        stats: &'a mut ExecStats,
    ) -> Self {
        PipelineBuilder {
            catalog,
            opts,
            ctx,
            stats,
            freshness: HashMap::new(),
        }
    }

    /// Worker count execution actually uses: the resident pool's size when
    /// one is attached (sessions share the engine's parked workers — a
    /// per-query `threads` request cannot grow the pool), the clamped
    /// option count otherwise.
    fn exec_threads(&self) -> usize {
        if self.ctx.pool.is_resident() {
            self.ctx.pool.threads()
        } else {
            self.opts.effective_threads()
        }
    }

    /// `Ok(None)` = shape outside the generated pipelines (use the fallback
    /// engine); errors are real (catalog failures, kernel bugs).
    fn build(mut self, plan: &Plan) -> Result<Option<Pipeline>> {
        let Plan::Reduce {
            input,
            monoid,
            head,
        } = plan
        else {
            return Err(VidaError::Plan(
                "jit executor expects a Reduce-rooted plan".into(),
            ));
        };
        // Bushy join trees rotate into left-deep chains before shape
        // analysis (inner join predicates fuse into the outer join, result
        // and tuple order preserved).
        self.stats.span_begin(stage::LOWER);
        let (mut input, rotations) = left_deepen(input);
        // Cost-based join reordering (build-side choice rides along: the
        // pipelines always build the right side of each join). Gated to
        // order-insensitive monoids — `List`/`Bag`/`Array` results observe
        // tuple order, so those plans keep their syntactic order. The
        // optimizer itself declines anything it cannot prove
        // result-invariant (see `vida_optimizer::plan`).
        let mut reorder_report = None;
        if self.opts.plan_opt
            && !self.opts.interpret_only
            && matches!(
                monoid,
                Monoid::Primitive(_) | Monoid::Collection(CollectionKind::Set)
            )
        {
            let est = CatalogEstimates {
                catalog: self.catalog,
                model: self.opts.cost_model.as_deref(),
            };
            let (reordered, report) = vida_optimizer::reorder_joins(&input, &est);
            if report.eligible {
                input = reordered;
                reorder_report = Some(report);
            }
        }
        let shape = Shape::of(&input);
        self.stats.span_end();
        let Some(shape) = shape else {
            return Ok(None);
        };

        // Touched paths, grouped per scanned binding.
        self.stats.span_begin(stage::CODEGEN);
        let mut exprs: Vec<&Expr> = Vec::new();
        shape.exprs(&mut exprs);
        exprs.push(head);
        let mut paths: Vec<String> = Vec::new();
        for e in &exprs {
            collect_paths(e, &mut paths);
        }
        let bindings = shape.bound_vars();
        let mut fields_of: HashMap<String, Vec<String>> = HashMap::new();
        let mut whole_record: HashMap<String, bool> = HashMap::new();
        for p in &paths {
            let (first, rest) = match p.split_once('.') {
                Some((f, r)) => (f, Some(r)),
                None => (p.as_str(), None),
            };
            if !bindings.iter().any(|b| b == first) {
                continue; // dataset reference or nested-comprehension local
            }
            match rest {
                None => {
                    whole_record.insert(first.to_string(), true);
                }
                Some(rest) => {
                    let field = rest.split('.').next().expect("non-empty rest");
                    let fs = fields_of.entry(first.to_string()).or_default();
                    if !fs.iter().any(|f| f == field) {
                        fs.push(field.to_string());
                    }
                }
            }
        }

        // Bind plugins and claim frame slots (no column reads yet). Unnest
        // stages claim element slots in the same walk, typed from the
        // source schemas.
        let mut layout = FrameLayout::new();
        let mut specs: Vec<SourceSpec> = Vec::new();
        let mut unnests: Vec<UnnestSpec> = Vec::new();
        self.bind_layout(
            &shape,
            &fields_of,
            &whole_record,
            &mut layout,
            &mut specs,
            &mut unnests,
        )?;
        let order: Vec<String> = specs.iter().map(|s| s.binding.clone()).collect();

        // Compile the operator tree (keys, predicates, selects). Bails
        // before any column is materialized, so fallback queries are not
        // scanned twice. String constants intern into the context's shared
        // table — per-call and private under `run_jit`, engine-wide (ids
        // stable across sessions) on the resident path.
        let interner = Arc::clone(&self.ctx.interner);
        let mut unnest_cursor = 0usize;
        let mut join_cursor = 0usize;
        let Some(root) = self.assemble(
            &shape,
            &order,
            &layout,
            &interner,
            &mut unnest_cursor,
            &mut join_cursor,
        )?
        else {
            self.stats.span_end();
            return Ok(None);
        };
        self.stats.span_end();
        // Stage counters only after the whole tree assembled: a parent join
        // can still bail (interpret_only), and a counted stage that never
        // executes would break the "counter > 0 == stage ran" contract the
        // coverage tests rely on.
        self.stats.bushy_lowered += rotations;
        if let Some(r) = reorder_report {
            self.stats.joins_reordered += r.joins_reordered;
            self.stats.estimated_rows += r.estimated_rows.round().max(1.0) as u64;
        }
        count_stages(&root, self.stats);

        // The plan is JIT-able: materialize touched columns (cache-first)
        // and encode them into slot representation.
        //
        // Fold-partial cache identity of a single-source plan, captured
        // before the specs are consumed below.
        let seam_src = (specs.len() == 1).then(|| {
            (
                specs[0].dataset.clone(),
                specs[0].plugin.fingerprint(),
                specs[0].nrows,
            )
        });
        let mut sources: Vec<Source> = Vec::with_capacity(specs.len());
        for spec in specs {
            self.stats.tuples_scanned += spec.nrows as u64;
            let columns =
                self.materialize_columns(&spec.dataset, &spec.plugin, &spec.touched, spec.nrows)?;
            let schema = spec.plugin.schema();
            let env_fields = spec
                .touched
                .iter()
                .zip(&columns)
                .map(|(&c, data)| (schema.fields()[c].name.clone(), Arc::clone(data)))
                .collect();
            let slot_cols = interner.with_mut(|int| {
                spec.slot_meta
                    .iter()
                    .map(|&(ti, slot, ty)| {
                        (
                            slot,
                            columns[ti]
                                .iter()
                                .map(|v| encode_cell(ty, v, int))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect()
            });
            let slots = spec.slot_meta.iter().map(|&(_, s, _)| s).collect();
            sources.push(Source {
                binding: spec.binding,
                nrows: spec.nrows,
                env_fields,
                slot_cols,
                slots,
                selects: Vec::new(),
                fused_selects: None,
            });
        }
        // Pre-intern string unnest elements reachable through the
        // direct-column fast path: the per-element intern in the (possibly
        // parallel) hot loop then almost always hits the read-locked
        // lookup instead of contending on the write lock.
        for u in &unnests {
            if u.src_col.is_none() || !u.slots.iter().any(|&(_, _, t)| t == SlotType::Str) {
                continue;
            }
            let (src, col) = u.src_col.expect("checked above");
            interner.with_mut(|int| {
                for coll in sources[src].env_fields[col].1.iter() {
                    let Some(items) = coll.elements() else {
                        continue;
                    };
                    for item in items {
                        for (field, _, ty) in &u.slots {
                            if *ty != SlotType::Str {
                                continue;
                            }
                            let v = match field {
                                None => Some(item),
                                Some(f) => item.field(f),
                            };
                            if let Some(Value::Str(s)) = v {
                                int.intern(s);
                            }
                        }
                    }
                }
            });
        }
        self.stats.span_begin(stage::CODEGEN);
        self.attach_selects(&mut sources, &shape, &layout, &interner)?;
        self.observe_select_stats(&sources, &shape);

        let head_plan = self.plan_head(*monoid, head, &layout, &interner);
        self.stats.span_end();

        // Base environment: datasets referenced by nested comprehensions
        // (shared helper with the Volcano engine).
        let base_env = crate::volcano::materialize_free_datasets(&exprs, &bindings, self.catalog)?;

        let unnests: Vec<UnnestStage> = unnests
            .into_iter()
            .map(|u| UnnestStage {
                binding: u.binding,
                path: u.path,
                src_col: u.src_col,
                slots: u.slots,
            })
            .collect();

        // Aggregate partial reuse (the warm half of O(delta) re-query):
        // qualifying folds cache their pre-finalize accumulator, and when
        // revalidation proved the source grew in place with the cached
        // partial covering exactly the unchanged prefix, this run seeds
        // from it and folds only the appended rows.
        let fold_seam = match (&self.opts.cache, seam_src) {
            (Some(cache), Some((dataset, fingerprint, nrows)))
                if matches!(*monoid, Monoid::Primitive(_))
                    && matches!(root, Node::Source(_))
                    && unnests.is_empty()
                    && base_env.is_empty()
                    && !self.opts.materialize_stages =>
            {
                let query_hash = fnv1a(&format!("{plan:?}"));
                let reuse = match self.freshness.get(&dataset) {
                    Some(&Freshness::Extended {
                        prev_fingerprint,
                        prefix_units,
                        ..
                    }) => cache.folds().get(&dataset, query_hash).filter(|p| {
                        p.fingerprint == prev_fingerprint
                            && p.rows == prefix_units
                            && p.rows <= nrows
                    }),
                    _ => None,
                };
                Some(FoldSeam {
                    cache: Arc::clone(cache),
                    dataset,
                    query_hash,
                    fingerprint,
                    nrows,
                    reuse,
                })
            }
            _ => None,
        };

        Ok(Some(Pipeline {
            sources,
            unnests,
            root,
            monoid: *monoid,
            head: head_plan,
            frame_width: layout.len(),
            interner,
            base_env,
            threads: self.exec_threads(),
            pool: self.ctx.pool.clone(),
            morsel_rows: self.opts.morsel_rows,
            materialize_stages: self.opts.materialize_stages,
            fold_seam,
        }))
    }

    /// Walk the shape and bind one source per scan: resolve the plugin,
    /// work out the touched columns, and claim frame slots. Unnest stages
    /// claim element slots in the same walk (typed from the schemas of the
    /// bindings their paths root at). Column data is deliberately not read
    /// here — see [`SourceSpec`].
    fn bind_layout(
        &mut self,
        shape: &Shape,
        fields_of: &HashMap<String, Vec<String>>,
        whole_record: &HashMap<String, bool>,
        layout: &mut FrameLayout,
        specs: &mut Vec<SourceSpec>,
        unnests: &mut Vec<UnnestSpec>,
    ) -> Result<()> {
        match shape {
            Shape::Scan {
                dataset, binding, ..
            } => {
                // Re-stat the backing file before trusting the resident
                // plugin (fingerprints used to be captured once at open and
                // never checked again, so a mutated file served stale
                // replicas forever). A changed file swaps a fresh reader
                // into the catalog; the verdict steers the cache protocol
                // in `materialize_columns`.
                let mut plugin = self.catalog.plugin(dataset)?;
                if !self.freshness.contains_key(dataset) {
                    match plugin.revalidate()? {
                        Revalidation::Unchanged => {}
                        Revalidation::Extended {
                            plugin: fresh,
                            prev_fingerprint,
                            prev_units,
                            prefix_units,
                        } => {
                            let fresh: Arc<dyn vida_formats::InputPlugin> = Arc::from(fresh);
                            self.catalog.install(dataset, Arc::clone(&fresh));
                            plugin = fresh;
                            self.freshness.insert(
                                dataset.clone(),
                                Freshness::Extended {
                                    prev_fingerprint,
                                    prev_units,
                                    prefix_units,
                                },
                            );
                        }
                        Revalidation::Rebuilt { plugin: fresh } => {
                            let fresh: Arc<dyn vida_formats::InputPlugin> = Arc::from(fresh);
                            self.catalog.install(dataset, Arc::clone(&fresh));
                            plugin = fresh;
                            self.freshness.insert(dataset.clone(), Freshness::Rebuilt);
                        }
                    }
                }
                let schema = plugin.schema().clone();
                let nrows = plugin.num_units();

                // Touched fields in schema order; whole-record usage touches
                // everything.
                let touched: Vec<usize> = schema
                    .fields()
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| {
                        whole_record.get(binding).copied().unwrap_or(false)
                            || fields_of
                                .get(binding)
                                .is_some_and(|fs| fs.contains(&f.name))
                    })
                    .map(|(i, _)| i)
                    .collect();

                let mut slot_meta = Vec::new();
                for (ti, &col) in touched.iter().enumerate() {
                    let field = &schema.fields()[col];
                    if let Some(st) = SlotType::of_type(&field.ty) {
                        let slot = layout.slot(format!("{binding}.{}", field.name), st);
                        slot_meta.push((ti, slot, st));
                    }
                }
                specs.push(SourceSpec {
                    binding: binding.clone(),
                    dataset: dataset.clone(),
                    nrows,
                    plugin,
                    touched,
                    slot_meta,
                });
                Ok(())
            }
            Shape::Join { left, right, .. } => {
                self.bind_layout(left, fields_of, whole_record, layout, specs, unnests)?;
                self.bind_layout(right, fields_of, whole_record, layout, specs, unnests)
            }
            Shape::Unnest {
                input,
                binding,
                path,
                ..
            } => {
                self.bind_layout(input, fields_of, whole_record, layout, specs, unnests)?;
                let (elem_ty, src_col) = unnest_elem_type(path, specs, unnests);
                // Every slot type frames — including `Str`, whose elements
                // intern at runtime through the lock-guarded shared
                // interner (pre-populated at build time, so the hot loop
                // mostly takes the read-locked lookup).
                let frameable = |t: &Type| SlotType::of_type(t).is_some();
                let mut slots = Vec::new();
                match &elem_ty {
                    t if frameable(t) && whole_record.get(binding).copied().unwrap_or(false) => {
                        let st = SlotType::of_type(t).expect("frameable");
                        slots.push((None, layout.slot(binding.clone(), st), st));
                    }
                    Type::Record(fields) => {
                        if let Some(fs) = fields_of.get(binding) {
                            for (name, fty) in fields {
                                if fs.contains(name) && frameable(fty) {
                                    let st = SlotType::of_type(fty).expect("frameable");
                                    let slot = layout.slot(format!("{binding}.{name}"), st);
                                    slots.push((Some(name.clone()), slot, st));
                                }
                            }
                        }
                    }
                    _ => {}
                }
                unnests.push(UnnestSpec {
                    binding: binding.clone(),
                    path: path.clone(),
                    elem_ty,
                    src_col,
                    slots,
                });
                Ok(())
            }
        }
    }

    /// Touched columns, cache-first: replicas in any storable layout are
    /// rehydrated (parsed values directly, binary JSON by decoding,
    /// positions by exact-seek raw parses), anything missing is read from
    /// the raw file in one projected scan. With a cost model attached, the
    /// probe order comes from [`CostModel::read_preference`] and the
    /// post-query [`PipelineBuilder::sync_replicas`] step decides which
    /// replicas to (re-)write; without one, raw reads write `Values`
    /// replicas as before.
    fn materialize_columns(
        &mut self,
        dataset: &str,
        plugin: &Arc<dyn vida_formats::InputPlugin>,
        touched: &[usize],
        nrows: usize,
    ) -> Result<Vec<Arc<Vec<Value>>>> {
        let schema = plugin.schema();
        let fingerprint = plugin.fingerprint();
        let freshness = self.freshness.get(dataset).copied();
        // Prefix-validity window when the file grew in place: replicas of
        // `prev_fingerprint` with exactly `prev_units` rows still serve
        // their first `prefix_units` rows.
        let grown_info = match freshness {
            Some(Freshness::Extended {
                prev_fingerprint,
                prev_units,
                prefix_units,
            }) if prefix_units > 0 => Some((prev_fingerprint, prev_units, prefix_units)),
            _ => None,
        };
        let mut out: Vec<Option<Arc<Vec<Value>>>> = vec![None; touched.len()];
        // Positions into `touched` that need a full raw scan.
        let mut missing: Vec<usize> = Vec::new();
        // Prefix-served columns awaiting the appended rows from one shared
        // tail scan: `(position into touched, decoded prefix)`, where the
        // prefix is `None` for `Values` replicas — those splice the tail
        // into the resident vector instead of decoding row by row.
        let mut grown: Vec<(usize, Option<Vec<Value>>)> = Vec::new();

        if let Some(cache) = &self.opts.cache {
            // Probe span counts replica-served work: one "tuple" per
            // rehydrated row, one "morsel" per served column. The same
            // counts at every thread count — the parallel decode's worker
            // sub-spans are timing-only.
            self.stats.span_begin(stage::CACHE_PROBE);
            let mut served = 0u64;
            let mut served_rows = 0u64;
            // Revalidation verdict → invalidation protocol. Unchanged
            // files drop stale strangers as before; grown files retain the
            // previous generation (its prefix still serves); shrunk or
            // edited files lose everything, fold partials included.
            match freshness {
                None => {
                    cache.invalidate_stale(dataset, fingerprint);
                }
                Some(Freshness::Extended {
                    prev_fingerprint, ..
                }) => {
                    cache.retain_fingerprints(dataset, &[prev_fingerprint, fingerprint]);
                }
                Some(Freshness::Rebuilt) => {
                    cache.invalidate_dataset(dataset);
                }
            }
            let pressure = cache_pressure(cache);
            for (i, &col) in touched.iter().enumerate() {
                let field = &schema.fields()[col].name;
                // Without a model, probe every storable layout cheapest
                // decode first; the model reorders by its chosen layout.
                let preference = match &self.opts.cost_model {
                    Some(model) => model.read_preference(dataset, field, pressure),
                    None => vec![Layout::Values, Layout::BinaryJson, Layout::Positions],
                };
                match cache.get_any_versioned(dataset, field, &preference) {
                    Some((_, data, fp)) if fp == fingerprint && data.len() == nrows => {
                        let vals = match &*data {
                            // Parsed replicas serve by pointer share — no
                            // per-row decode, no copy.
                            CachedData::Values(v) => Arc::clone(v),
                            _ => Arc::new(self.decode_replica(plugin, col, &data, nrows)?),
                        };
                        out[i] = Some(vals);
                        self.stats.cached_columns += 1;
                        served += 1;
                        served_rows += nrows as u64;
                    }
                    Some((_, data, fp))
                        if grown_info.is_some_and(|(pf, pu, _)| fp == pf && data.len() == pu) =>
                    {
                        // Old-generation replica over a grown file: the
                        // appended rows come from one shared tail scan
                        // below. A `Values` replica needs no prefix work at
                        // all (the tail splices into the resident vector);
                        // other layouts decode only the proven prefix (byte
                        // spans of `Positions` replicas still point at
                        // unchanged bytes).
                        let (_, _, prefix_units) = grown_info.expect("guard");
                        let prefix = match &*data {
                            CachedData::Values(_) => None,
                            _ => Some(self.decode_replica(plugin, col, &data, prefix_units)?),
                        };
                        grown.push((i, prefix));
                        self.stats.cached_columns += 1;
                        served += 1;
                        served_rows += prefix_units as u64;
                    }
                    _ => missing.push(i),
                }
            }
            self.stats.span_end_counted(served_rows, served);
        } else {
            missing = (0..touched.len()).collect();
        }

        if !grown.is_empty() {
            let (_, _, prefix_units) = grown_info.expect("grown implies Extended");
            let from = prefix_units;
            self.stats.span_begin(stage::SCAN);
            let tail_morsels = if self.stats.trace.is_some() {
                plan_scan_tail(plugin.as_ref(), self.opts.morsel_rows, from).len() as u64
            } else {
                0
            };
            let cols: Vec<usize> = grown.iter().map(|&(i, _)| touched[i]).collect();
            let tails = if self.exec_threads() > 1 {
                self.scan_columns_parallel(plugin, &cols, from)?
            } else {
                let mut read: Vec<Vec<Value>> = vec![Vec::new(); cols.len()];
                plugin.scan_project_range(&cols, from..nrows, &mut |_, vals| {
                    for (c, v) in read.iter_mut().zip(vals) {
                        c.push(v);
                    }
                    Ok(())
                })?;
                read
            };
            self.stats.tail_rows_scanned += (nrows - from) as u64;
            self.stats
                .span_end_counted((nrows - from) as u64, tail_morsels);
            let (prev_fingerprint, _, _) = grown_info.expect("grown implies Extended");
            for ((i, prefix), tail) in grown.into_iter().zip(tails) {
                let cache = self.opts.cache.as_ref().expect("grown implies cache");
                let field = &schema.fields()[touched[i]].name;
                let key = CacheKey::new(dataset, field.clone(), Layout::Values);
                let full = match prefix {
                    // `Values` replica: splice the tail into the resident
                    // vector under the cache lock — O(delta), and the entry
                    // is promoted to the current generation in the same
                    // step, so the next query is a plain full hit.
                    None => {
                        match cache.extend_values(&key, prev_fingerprint, from, tail, fingerprint) {
                            Some(full) => full,
                            None => {
                                // The replica vanished between probe and splice
                                // (concurrent eviction): re-read the whole
                                // column from raw — correctness over speed on
                                // this rare race.
                                let mut vals: Vec<Value> = Vec::with_capacity(nrows);
                                plugin.scan_project_range(
                                    &[touched[i]],
                                    0..nrows,
                                    &mut |_, row| {
                                        vals.extend(row);
                                        Ok(())
                                    },
                                )?;
                                let full = Arc::new(vals);
                                if self.opts.cost_model.is_none() {
                                    cache.put(
                                        key,
                                        CachedData::Values(Arc::clone(&full)),
                                        fingerprint,
                                    );
                                }
                                full
                            }
                        }
                    }
                    // Other layouts: stitch decoded prefix + scanned tail
                    // and refresh the replica to the current generation
                    // (with a cost model the refresh happens in
                    // `sync_replicas` instead, in its chosen layout).
                    Some(mut vals) => {
                        vals.extend(tail);
                        let full = Arc::new(vals);
                        if self.opts.cost_model.is_none() {
                            cache.put(key, CachedData::Values(Arc::clone(&full)), fingerprint);
                        }
                        full
                    }
                };
                out[i] = Some(full);
            }
        }

        if !missing.is_empty() {
            self.stats.span_begin(stage::SCAN);
            // Morsel count mirrors what the parallel scan dispatches, so the
            // scan span aggregates identically at every thread count (the
            // plan depends only on the data). Computed only when tracing.
            let scan_morsels = if self.stats.trace.is_some() {
                plan_scan(plugin.as_ref(), self.opts.morsel_rows).len() as u64
            } else {
                0
            };
            let cols: Vec<usize> = missing.iter().map(|&i| touched[i]).collect();
            let read = if self.exec_threads() > 1 {
                self.scan_columns_parallel(plugin, &cols, 0)?
            } else {
                let mut read: Vec<Vec<Value>> = vec![Vec::new(); cols.len()];
                plugin.scan_project(&cols, &mut |_, vals| {
                    for (c, v) in read.iter_mut().zip(vals) {
                        c.push(v);
                    }
                    Ok(())
                })?;
                read
            };
            self.stats.span_end_counted(nrows as u64, scan_morsels);
            for (&i, col_vals) in missing.iter().zip(read) {
                let field = &schema.fields()[touched[i]].name;
                let full = Arc::new(col_vals);
                // Without a model, keep the legacy eager-Values put — the
                // replica shares storage with the served column. With a
                // model, sync_replicas below writes the chosen layout.
                if self.opts.cost_model.is_none() {
                    if let Some(cache) = &self.opts.cache {
                        cache.put(
                            CacheKey::new(dataset, field.clone(), Layout::Values),
                            CachedData::Values(Arc::clone(&full)),
                            fingerprint,
                        );
                    }
                }
                out[i] = Some(full);
                self.stats.raw_columns += 1;
            }
        }

        let columns: Vec<Arc<Vec<Value>>> = out
            .into_iter()
            .map(|c| c.expect("all columns filled"))
            .collect();
        self.sync_replicas(dataset, plugin, touched, &columns, fingerprint)?;
        Ok(columns)
    }

    /// Rehydrate one cached replica into a parsed column. `Positions`
    /// replicas seek straight into the raw file via the plugin's span
    /// parser; everything else decodes in memory. With multiple workers the
    /// decode is morsel-driven (the warm-cache half of parallel execution),
    /// and chunks concatenate in morsel order so the column is identical to
    /// a serial decode.
    fn decode_replica(
        &mut self,
        plugin: &Arc<dyn vida_formats::InputPlugin>,
        col: usize,
        data: &CachedData,
        nrows: usize,
    ) -> Result<Vec<Value>> {
        let decode_row = |r: usize| -> Result<Value> {
            match data {
                CachedData::Positions(spans) => plugin.parse_field_span(col, spans[r]),
                other => other.get(r),
            }
        };
        let threads = self.exec_threads();
        if threads > 1 && nrows > 1 {
            let plan = MorselPlan::fixed(nrows, self.opts.morsel_rows);
            self.stats.morsels += plan.len() as u64;
            let epoch = self.stats.trace_epoch();
            let chunks = self.ctx.pool.run_morsels(
                plan.len(),
                |w| w,
                |w, m| {
                    // Timing-only worker sub-spans: the coordinator's probe
                    // span carries the counts, so aggregates stay identical
                    // to a serial decode.
                    let mut wt = epoch.map(|e| {
                        let mut t = QueryTrace::with_epoch(*w as u32 + 1, e);
                        t.begin(stage::CACHE_PROBE);
                        t
                    });
                    let range = plan.range(m);
                    let mut chunk = Vec::with_capacity(range.len());
                    for r in range {
                        chunk.push(decode_row(r)?);
                    }
                    if let Some(t) = wt.as_mut() {
                        t.end_counted(0, 0);
                    }
                    Ok::<_, VidaError>((chunk, wt))
                },
            )?;
            let mut out = Vec::with_capacity(nrows);
            for (chunk, wt) in chunks {
                if let (Some(mine), Some(wt)) = (self.stats.trace.as_deref_mut(), wt) {
                    mine.absorb(wt);
                }
                out.extend(chunk);
            }
            Ok(out)
        } else {
            (0..nrows).map(decode_row).collect()
        }
    }

    /// The post-query cost-model step (§5): fold this query's access
    /// evidence into the model, then make the cache hold each touched
    /// field's replica in the layout the model now prefers — building it
    /// from the materialized column (or from raw-file field spans for
    /// `Positions`) and retiring a superseded `Values` replica. No-op
    /// without both a cache and a model.
    fn sync_replicas(
        &mut self,
        dataset: &str,
        plugin: &Arc<dyn vida_formats::InputPlugin>,
        touched: &[usize],
        columns: &[Arc<Vec<Value>>],
        fingerprint: (u64, u64),
    ) -> Result<()> {
        let (Some(cache), Some(model)) = (&self.opts.cache, &self.opts.cost_model) else {
            return Ok(());
        };
        self.stats.span_begin(stage::REPLICA_SYNC);
        let written_before = self.stats.replicas_written;
        model.set_budget_bytes(cache.budget_bytes() as u64);
        let schema = plugin.schema();
        for (i, &col) in touched.iter().enumerate() {
            let field = &schema.fields()[col].name;
            model.observe(dataset, field, observe_column(plugin, col, &columns[i]));
            // Same hook feeds the plan optimizer's distinct sketch (inserts
            // are idempotent, so re-scans don't drift the estimate).
            model.sketch().observe_values(dataset, field, &columns[i]);
            let pressure = cache_pressure(cache);
            let mut chosen = model.choose_layout(dataset, field, pressure);
            let mut key = CacheKey::new(dataset, field.clone(), chosen);
            // Fingerprint-aware guard: a retained prior-generation replica
            // (kept for prefix serving over a grown file) counts as
            // missing, so the stitched column replaces it under the
            // current generation instead of being invalidated next query.
            if !cache.contains_fresh(&key, fingerprint) {
                let mut replica = self.build_replica(plugin, col, &columns[i], chosen)?;
                if replica.is_none() && chosen == Layout::Positions {
                    // Some rows have no byte span (optional JSON fields):
                    // positions are infeasible for this field. Tell the
                    // model — the flag is sticky, so it never retries the
                    // doomed build — and fall back to its next choice so
                    // the field still gets cached.
                    model.mark_spans_infeasible(dataset, field);
                    chosen = model.choose_layout(dataset, field, pressure);
                    key = CacheKey::new(dataset, field.clone(), chosen);
                    replica = if cache.contains_fresh(&key, fingerprint) {
                        None
                    } else {
                        self.build_replica(plugin, col, &columns[i], chosen)?
                    };
                }
                if let Some(replica) = replica {
                    let bonus = model
                        .profile(dataset, field)
                        .map(|p| model.eviction_bonus(&p, chosen))
                        .unwrap_or(0.0);
                    // Replica storage is billed to the session's tenant:
                    // its budget sheds its own coldest entries first, and
                    // in-quota strangers are never victimized.
                    if cache.put_with_cost_for(
                        self.ctx.tenant.as_deref(),
                        key.clone(),
                        replica,
                        fingerprint,
                        bonus,
                    ) {
                        self.stats.replicas_written += 1;
                    }
                }
            }
            // Once the chosen layout is in place, replicas of the field in
            // every other storable layout are superseded dead weight: drop
            // them to free budget (the re-shaping half of "re-using and
            // re-shaping results").
            if cache.contains(&key) {
                for layout in vida_optimizer::STORABLE_LAYOUTS {
                    if layout != chosen
                        && cache.remove(&CacheKey::new(dataset, field.clone(), layout))
                    {
                        self.stats.replicas_dropped += 1;
                    }
                }
            }
        }
        let written = (self.stats.replicas_written - written_before) as u64;
        self.stats.span_end_counted(written, 0);
        Ok(())
    }

    /// Build one replica of a column in `layout`. Returns `None` when the
    /// layout cannot represent the column (`Positions` needs a byte span
    /// for every row; JSON objects missing the field have none).
    fn build_replica(
        &mut self,
        plugin: &Arc<dyn vida_formats::InputPlugin>,
        col: usize,
        vals: &Arc<Vec<Value>>,
        layout: Layout,
    ) -> Result<Option<CachedData>> {
        match layout {
            Layout::Positions => {
                let mut spans = Vec::with_capacity(vals.len());
                for row in 0..vals.len() {
                    match plugin.field_byte_span(row, col)? {
                        Some(span) => spans.push(span),
                        None => return Ok(None),
                    }
                }
                Ok(Some(CachedData::Positions(spans)))
            }
            // The values replica shares storage with the materialized
            // column instead of copying it.
            Layout::Values => Ok(Some(CachedData::Values(Arc::clone(vals)))),
            layout => Ok(CachedData::from_values(vals, layout).ok()),
        }
    }

    /// The parallel raw scan: the dispatcher splits the file into aligned
    /// morsels (newline-aligned CSV byte ranges, record-aligned JSON spans)
    /// and workers parse disjoint ranges concurrently, sharing only the
    /// atomic positional structures. Chunks concatenate in morsel order, so
    /// the materialized columns are identical to a serial scan's. `from`
    /// restricts the scan to units `from..num_units()` — the appended tail
    /// of a grown file (`0` scans everything).
    fn scan_columns_parallel(
        &mut self,
        plugin: &Arc<dyn vida_formats::InputPlugin>,
        cols: &[usize],
        from: usize,
    ) -> Result<Vec<Vec<Value>>> {
        let plan = plan_scan_tail(plugin.as_ref(), self.opts.morsel_rows, from);
        let epoch = self.stats.trace_epoch();
        let chunks = self.ctx.pool.run_morsels(
            plan.len(),
            |w| w,
            |w, m| {
                // Timing-only worker sub-spans (counts live on the
                // coordinator's scan span — see materialize_columns).
                let mut wt = epoch.map(|e| {
                    let mut t = QueryTrace::with_epoch(*w as u32 + 1, e);
                    t.begin(stage::SCAN);
                    t
                });
                let range = plan.range(m);
                let mut chunk: Vec<Vec<Value>> = vec![Vec::with_capacity(range.len()); cols.len()];
                plugin.scan_project_range(cols, range, &mut |_, vals| {
                    for (c, v) in chunk.iter_mut().zip(vals) {
                        c.push(v);
                    }
                    Ok(())
                })?;
                if let Some(t) = wt.as_mut() {
                    t.end_counted(0, 0);
                }
                Ok::<_, VidaError>((chunk, wt))
            },
        )?;
        self.stats.morsels += plan.len() as u64;
        let mut out: Vec<Vec<Value>> = vec![Vec::with_capacity(plan.units()); cols.len()];
        for (chunk, wt) in chunks {
            if let (Some(mine), Some(wt)) = (self.stats.trace.as_deref_mut(), wt) {
                mine.absorb(wt);
            }
            for (o, c) in out.iter_mut().zip(chunk) {
                o.extend(c);
            }
        }
        Ok(out)
    }

    /// Compile a boolean step (kernel when possible).
    fn step(
        &mut self,
        predicate: &Expr,
        layout: &FrameLayout,
        interner: &SharedInterner,
    ) -> Result<Step> {
        if !self.opts.interpret_only
            && JitCompiler::try_prepare(predicate, layout) == Some(SlotType::Bool)
        {
            // Kernel ids are the query's dense compile order — the trace
            // layer's per-kernel invocation index.
            let k = interner
                .with_mut(|i| JitCompiler::new().and_then(|c| c.compile(predicate, layout, i)))?
                .with_id(self.stats.kernels_compiled);
            self.stats.kernels_compiled += 1;
            return Ok(Step::Kernel(k, predicate.clone()));
        }
        Ok(Step::Interp(predicate.clone()))
    }

    /// Build the operator tree. Joins pick their strategy here: hash join
    /// on compilable equi-keys, band sort-probe on a compilable range
    /// predicate, block-nested-loop otherwise (with the predicate compiled
    /// into one fused kernel when possible). `None` only under
    /// `interpret_only`, whose joins need key kernels.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &mut self,
        shape: &Shape,
        order: &[String],
        layout: &FrameLayout,
        interner: &SharedInterner,
        unnest_cursor: &mut usize,
        join_cursor: &mut usize,
    ) -> Result<Option<Node>> {
        match shape {
            Shape::Scan { binding, .. } => {
                let idx = order.iter().position(|b| b == binding).expect("bound");
                Ok(Some(Node::Source(idx)))
            }
            Shape::Unnest { input, selects, .. } => {
                let Some(inner) =
                    self.assemble(input, order, layout, interner, unnest_cursor, join_cursor)?
                else {
                    return Ok(None);
                };
                // Specs were pushed in the same DFS order bind_layout used.
                let stage = *unnest_cursor;
                *unnest_cursor += 1;
                let selects = selects
                    .iter()
                    .map(|s| self.step(s, layout, interner))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(Node::Unnest {
                    input: Box::new(inner),
                    stage,
                    selects,
                }))
            }
            Shape::Join {
                left,
                right,
                predicate,
                selects,
            } => {
                let Some(lnode) =
                    self.assemble(left, order, layout, interner, unnest_cursor, join_cursor)?
                else {
                    return Ok(None);
                };
                let Shape::Scan {
                    binding: rbinding, ..
                } = right.as_ref()
                else {
                    unreachable!("Shape::of enforces scan right sides");
                };
                let ridx = order.iter().position(|b| b == rbinding).expect("bound");

                if self.opts.interpret_only {
                    return Ok(None);
                }
                // Claim this join's build slot (same DFS order
                // `Pipeline::prepare_builds` walks).
                let build = *join_cursor;
                *join_cursor += 1;
                let lvars = left.bound_vars();
                let rvars = vec![rbinding.clone()];
                let numeric = |t: SlotType| matches!(t, SlotType::Int | SlotType::Float);

                let predicate_step = self.step(predicate, layout, interner)?;
                let selects = selects
                    .iter()
                    .map(|s| self.step(s, layout, interner))
                    .collect::<Result<Vec<_>>>()?;

                // Strategy 1: hash join on compilable equi-keys.
                if let Some((lk_expr, rk_expr)) = Plan::equi_join_keys(predicate, &lvars, &rvars) {
                    if let (Some(lt), Some(rt)) = (
                        JitCompiler::try_prepare(&lk_expr, layout),
                        JitCompiler::try_prepare(&rk_expr, layout),
                    ) {
                        let float_keys = match (lt, rt) {
                            (a, b) if a == b => Some(a == SlotType::Float),
                            (a, b) if numeric(a) && numeric(b) => Some(true),
                            _ => None, // incomparable key types
                        };
                        if let Some(float_keys) = float_keys {
                            let left_key = interner
                                .with_mut(|i| {
                                    JitCompiler::new().and_then(|c| c.compile(&lk_expr, layout, i))
                                })?
                                .with_id(self.stats.kernels_compiled);
                            let right_key = interner
                                .with_mut(|i| {
                                    JitCompiler::new().and_then(|c| c.compile(&rk_expr, layout, i))
                                })?
                                .with_id(self.stats.kernels_compiled + 1);
                            self.stats.kernels_compiled += 2;
                            return Ok(Some(Node::HashJoin {
                                left: Box::new(lnode),
                                right: ridx,
                                build,
                                left_key,
                                right_key,
                                left_key_ty: lt,
                                right_key_ty: rt,
                                float_keys,
                                predicate: predicate_step,
                                selects,
                            }));
                        }
                    }
                }

                // Strategy 2: band sort-probe on a compilable numeric range
                // comparison between the sides.
                let mut band = None;
                if let Some((lk_expr, rk_expr, op)) =
                    Plan::band_join_keys(predicate, &lvars, &rvars)
                {
                    if let (Some(lt), Some(rt)) = (
                        JitCompiler::try_prepare(&lk_expr, layout),
                        JitCompiler::try_prepare(&rk_expr, layout),
                    ) {
                        if numeric(lt) && numeric(rt) {
                            let float_keys = lt == SlotType::Float || rt == SlotType::Float;
                            let left_key = interner
                                .with_mut(|i| {
                                    JitCompiler::new().and_then(|c| c.compile(&lk_expr, layout, i))
                                })?
                                .with_id(self.stats.kernels_compiled);
                            let right_key = interner
                                .with_mut(|i| {
                                    JitCompiler::new().and_then(|c| c.compile(&rk_expr, layout, i))
                                })?
                                .with_id(self.stats.kernels_compiled + 1);
                            self.stats.kernels_compiled += 2;
                            band = Some(Band {
                                left_key,
                                right_key,
                                op,
                                float_keys,
                                left_key_ty: lt,
                                right_key_ty: rt,
                            });
                        }
                    }
                }

                // Strategy 3 (band = None): block-nested-loop over morsels
                // with the fused predicate kernel.
                Ok(Some(Node::ThetaJoin {
                    left: Box::new(lnode),
                    right: ridx,
                    build,
                    band,
                    predicate: predicate_step,
                    selects,
                }))
            }
        }
    }

    /// Attach per-scan selection steps to their sources.
    fn attach_selects(
        &mut self,
        sources: &mut [Source],
        shape: &Shape,
        layout: &FrameLayout,
        interner: &SharedInterner,
    ) -> Result<()> {
        match shape {
            Shape::Scan {
                binding,
                dataset,
                selects,
            } => {
                let src = sources
                    .iter_mut()
                    .find(|s| &s.binding == binding)
                    .expect("source bound");
                for sel in selects {
                    let step = self.step(sel, layout, interner)?;
                    src.selects.push(step);
                }
                // When the whole chain compiled, fuse it into one
                // short-circuit select stage for valid frames; tuples whose
                // frame could not encode still walk `selects` through the
                // interpreter.
                if !src.selects.is_empty() {
                    let kernels: Vec<CompiledKernel> = src
                        .selects
                        .iter()
                        .filter_map(|s| match s {
                            Step::Kernel(k, _) => Some(k.clone()),
                            Step::Interp(_) => None,
                        })
                        .collect();
                    if kernels.len() == src.selects.len() {
                        // Compiled kernels are pure and total, so any
                        // evaluation order admits the same frames — rank
                        // cheapest-and-most-selective first when the plan
                        // optimizer is on. The interpreted `src.selects`
                        // path keeps syntactic order: interpreted conjuncts
                        // can error, and error order is observable.
                        let order = if self.opts.plan_opt && kernels.len() > 1 {
                            let order =
                                rank_conjuncts(selects, dataset, self.opts.cost_model.as_deref());
                            self.stats.conjuncts_reordered += order
                                .iter()
                                .enumerate()
                                .filter(|&(pos, &i)| pos != i)
                                .count()
                                as u32;
                            order
                        } else {
                            (0..kernels.len()).collect()
                        };
                        src.fused_selects = Some(SelectKernel::with_order(kernels, &order));
                    }
                }
                Ok(())
            }
            Shape::Join { left, right, .. } => {
                self.attach_selects(sources, left, layout, interner)?;
                self.attach_selects(sources, right, layout, interner)
            }
            // Unnest selects were compiled onto the node in `assemble`
            // (they may reference the element binding).
            Shape::Unnest { input, .. } => self.attach_selects(sources, input, layout, interner),
        }
    }

    /// Replay each scan-level conjunct over a small row sample and fold the
    /// outcomes into the cost model's predicate counters — the selectivity
    /// evidence behind conjunct ordering and join-order search on later
    /// queries. Uses the reference interpreter, so the counters reflect the
    /// engine's real predicate semantics (including null behavior); errors
    /// and non-boolean results count as evaluations that did not pass.
    fn observe_select_stats(&mut self, sources: &[Source], shape: &Shape) {
        /// Sampled rows per scan — matches `observe_column`'s budget.
        const SAMPLE_ROWS: usize = 64;
        if !self.opts.plan_opt {
            return;
        }
        let Some(model) = &self.opts.cost_model else {
            return;
        };
        let mut scans: Vec<(&String, &Vec<Expr>)> = Vec::new();
        fn collect<'s>(shape: &'s Shape, out: &mut Vec<(&'s String, &'s Vec<Expr>)>) {
            match shape {
                Shape::Scan {
                    binding, selects, ..
                } => {
                    if !selects.is_empty() {
                        out.push((binding, selects));
                    }
                }
                Shape::Join { left, right, .. } => {
                    collect(left, out);
                    collect(right, out);
                }
                Shape::Unnest { input, .. } => collect(input, out),
            }
        }
        collect(shape, &mut scans);
        for (binding, selects) in scans {
            let Some(src) = sources.iter().find(|s| &s.binding == binding) else {
                continue;
            };
            let sample = src.nrows.min(SAMPLE_ROWS);
            if sample == 0 {
                continue;
            }
            let mut hits = vec![0u64; selects.len()];
            let mut env = Bindings::new();
            for row in 0..sample {
                let rec: Vec<(String, Value)> = src
                    .env_fields
                    .iter()
                    .map(|(name, col)| (name.clone(), col[row].clone()))
                    .collect();
                env.insert(binding.clone(), Value::Record(rec));
                for (i, sel) in selects.iter().enumerate() {
                    if matches!(eval(sel, &env), Ok(Value::Bool(true))) {
                        hits[i] += 1;
                    }
                }
            }
            for (sel, &h) in selects.iter().zip(&hits) {
                model
                    .sketch()
                    .record_predicate(&sel.to_string(), h, sample as u64);
            }
        }
    }

    fn plan_head(
        &mut self,
        monoid: Monoid,
        head: &Expr,
        layout: &FrameLayout,
        interner: &SharedInterner,
    ) -> HeadPlan {
        // `count` ignores head values entirely when the head is total.
        if monoid == Monoid::Primitive(PrimitiveMonoid::Count)
            && (matches!(head, Expr::Const(_)) || path_of(head).is_some())
        {
            return HeadPlan::CountOnly;
        }
        if !self.opts.interpret_only {
            if JitCompiler::try_prepare(head, layout).is_some() {
                if let Ok(k) = interner
                    .with_mut(|i| JitCompiler::new().and_then(|c| c.compile(head, layout, i)))
                {
                    let k = k.with_id(self.stats.kernels_compiled);
                    self.stats.kernels_compiled += 1;
                    return HeadPlan::Kernel(k, head.clone());
                }
            }
            if let Expr::Record(fields) = head {
                if matches!(monoid, Monoid::Collection(_))
                    && fields
                        .iter()
                        .all(|(_, e)| JitCompiler::try_prepare(e, layout).is_some())
                {
                    let mut ks = Vec::with_capacity(fields.len());
                    let mut ok = true;
                    for (n, e) in fields {
                        match interner
                            .with_mut(|i| JitCompiler::new().and_then(|c| c.compile(e, layout, i)))
                        {
                            Ok(k) => {
                                let id = self.stats.kernels_compiled + ks.len() as u32;
                                ks.push((n.clone(), k.with_id(id)));
                            }
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        self.stats.kernels_compiled += ks.len() as u32;
                        return HeadPlan::RecordKernels(ks, head.clone());
                    }
                }
            }
        }
        HeadPlan::Interp(head.clone())
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl Pipeline {
    fn execute(self, stats: &mut ExecStats) -> Result<Value> {
        stats.threads = self.threads as u32;
        if self.materialize_stages {
            // Ablation baseline: the pre-streaming pull-and-materialize
            // executor (serial; `operator_materializations` counts its
            // inter-operator buffers).
            return self.execute_materialized(stats);
        }
        stats.fused_stage_depth = fused_depth(&self.root) + 1; // + the fold
        if self.threads > 1 {
            return self.execute_parallel(stats);
        }

        // Serial push loop: prepare the pipeline breakers (join build
        // sides), then drive every leftmost-scan row through the fused
        // stage chain straight into the fold — no intermediate Vec<Tuple>.
        let joins = has_join(&self.root);
        if joins {
            stats.span_begin(stage::BUILD_SIDE);
        }
        let builds = self.prepare_builds(None, stats)?;
        if joins {
            stats.span_end();
        }
        let nrows = self.sources[leftmost_source(&self.root)].nrows;
        // A reusable cached prefix partial shrinks the drive to the
        // appended rows; the fold arms merge the partial in front.
        let from = self.fold_reuse_rows();
        let dstage = drive_stage(&self.root);
        stats.span_begin(stage::FOLD);
        let value = self.fold_stream(stats, |stats, sink| {
            if stats.trace.is_none() {
                return self.drive(&self.root, from..nrows, &builds, stats, sink);
            }
            // Traced drive: count pushed tuples through a wrapping sink and
            // report the morsel count the parallel grid would dispatch, so
            // the span aggregates identically at every thread count.
            stats.span_begin(dstage);
            let mut pushed = 0u64;
            let r = self.drive(&self.root, from..nrows, &builds, stats, &mut |stats, t| {
                pushed += 1;
                sink(stats, t)
            });
            stats.span_end_counted(pushed, morsel_count(nrows - from, self.morsel_rows));
            r
        })?;
        stats.span_end();
        Ok(value)
    }

    /// The serial fold: `produce` pushes every surviving tuple into the
    /// sink this function provides, and the sink folds straight into the
    /// output monoid. Collection monoids accumulate and canonicalize once;
    /// primitives merge incrementally (preserving overflow and type-error
    /// semantics); `count` with a total head just counts. Shared by the
    /// streaming drive and the materializing ablation, so the two engines
    /// cannot diverge on fold semantics.
    fn fold_stream(
        &self,
        stats: &mut ExecStats,
        produce: impl FnOnce(&mut ExecStats, TupleSink<'_>) -> Result<()>,
    ) -> Result<Value> {
        match self.monoid {
            Monoid::Collection(kind) => {
                let mut items = Vec::new();
                produce(stats, &mut |stats, t| {
                    stats.actual_rows += 1;
                    items.push(self.head_value(&t, stats)?);
                    Ok(())
                })?;
                Ok(match kind {
                    CollectionKind::Set => Value::set(items),
                    k => Value::Collection(k, items),
                })
            }
            Monoid::Primitive(PrimitiveMonoid::Count)
                if matches!(self.head, HeadPlan::CountOnly) =>
            {
                // A reused partial in this arm is always the plain count
                // (the same plan hash always lands in the same arm).
                let mut n = match self.fold_reuse_partial(stats) {
                    Some(Value::Int(k)) => k,
                    _ => 0,
                };
                produce(stats, &mut |stats, _| {
                    stats.actual_rows += 1;
                    n += 1;
                    Ok(())
                })?;
                self.store_fold_partial(&Value::Int(n));
                Ok(Value::Int(n))
            }
            m => {
                // Seed from the cached prefix partial when one is valid:
                // `merge(prefix, unit(v))` is exactly the in-order merge a
                // full serial fold would have reached after the prefix rows.
                let mut acc = match self.fold_reuse_partial(stats) {
                    Some(prefix) => prefix,
                    None => m.zero(),
                };
                produce(stats, &mut |stats, t| {
                    stats.actual_rows += 1;
                    let v = self.head_value(&t, stats)?;
                    acc = m.merge(std::mem::replace(&mut acc, Value::Null), m.unit(v))?;
                    Ok(())
                })?;
                self.store_fold_partial(&acc);
                m.finalize(acc)
            }
        }
    }

    /// Rows covered by a reusable cached prefix partial — the drive starts
    /// there (0 = no reuse, fold everything).
    fn fold_reuse_rows(&self) -> usize {
        self.fold_seam
            .as_ref()
            .and_then(|s| s.reuse.as_ref())
            .map(|p| p.rows)
            .unwrap_or(0)
    }

    /// The cached prefix partial for this run, counting the reuse.
    fn fold_reuse_partial(&self, stats: &mut ExecStats) -> Option<Value> {
        let p = self.fold_seam.as_ref()?.reuse.as_ref()?;
        stats.partials_reused += 1;
        Some(p.partial.clone())
    }

    /// Refresh the cached partial: the pre-finalize accumulator now covers
    /// the whole source at its current fingerprint.
    fn store_fold_partial(&self, partial: &Value) {
        if let Some(seam) = &self.fold_seam {
            seam.cache.folds().put(
                &seam.dataset,
                seam.query_hash,
                FoldPartial {
                    partial: partial.clone(),
                    rows: seam.nrows,
                    fingerprint: seam.fingerprint,
                },
            );
        }
    }

    fn head_value(&self, t: &Tuple, stats: &mut ExecStats) -> Result<Value> {
        match &self.head {
            HeadPlan::CountOnly => Ok(Value::Int(1)),
            HeadPlan::Kernel(k, _) if t.valid => {
                stats.kernel_hit(k.id());
                Ok(self.decode(k, &t.frame))
            }
            HeadPlan::RecordKernels(ks, _) if t.valid => {
                if stats.trace.is_some() {
                    for (_, k) in ks {
                        stats.kernel_hit(k.id());
                    }
                }
                Ok(Value::Record(
                    ks.iter()
                        .map(|(n, k)| (n.clone(), self.decode(k, &t.frame)))
                        .collect(),
                ))
            }
            other => {
                // Interpreted head, or a compiled head over a tuple whose
                // frame could not encode (nulls): exact interpreter
                // semantics over rebuilt bindings.
                stats.fallback_tuples += 1;
                let e = other.source_expr().expect("CountOnly handled above");
                eval(e, &self.env_for(t))
            }
        }
    }

    /// Decode a kernel result, resolving interned string ids.
    fn decode(&self, k: &CompiledKernel, frame: &[i64]) -> Value {
        let bits = k.call(frame);
        match k.output() {
            SlotType::Str => self
                .interner
                .resolve(bits)
                .map(Value::str)
                .unwrap_or(Value::Null),
            ty => decode_output(bits, ty),
        }
    }

    /// Rebuild interpreter bindings for a tuple from its provenance: source
    /// rows first, then unnest element values.
    fn env_for(&self, t: &Tuple) -> Bindings {
        let mut env = self.base_env.clone();
        for &(src, row) in &t.rows {
            let s = &self.sources[src];
            env.insert(
                s.binding.clone(),
                Value::Record(
                    s.env_fields
                        .iter()
                        .map(|(n, col)| (n.clone(), col[row].clone()))
                        .collect(),
                ),
            );
        }
        for (stage, v) in &t.unnest_vals {
            env.insert(self.unnests[*stage].binding.clone(), v.clone());
        }
        env
    }

    /// Evaluate a boolean step: the kernel on valid frames, the interpreter
    /// otherwise (nulls route through exact null semantics).
    fn apply_step(
        &self,
        step: &Step,
        t: &Tuple,
        stats: &mut ExecStats,
        context: &str,
    ) -> Result<bool> {
        if let Step::Kernel(k, _) = step {
            if t.valid {
                stats.kernel_hit(k.id());
                return Ok(k.call_bool(&t.frame));
            }
        }
        let expr = match step {
            Step::Kernel(_, e) | Step::Interp(e) => e,
        };
        stats.fallback_tuples += 1;
        match eval(expr, &self.env_for(t))? {
            Value::Bool(b) => Ok(b),
            other => Err(VidaError::Exec(format!(
                "{context} predicate not boolean: {other}"
            ))),
        }
    }

    /// Scan-side tuple production over a contiguous row range, pushed one
    /// tuple at a time into `sink` — the head of every fused pipeline.
    /// Valid frames run the fused [`SelectKernel`] chain; frames that could
    /// not encode (nulls) walk the selects through the interpreter.
    fn push_source(
        &self,
        idx: usize,
        rows: std::ops::Range<usize>,
        stats: &mut ExecStats,
        sink: TupleSink<'_>,
    ) -> Result<()> {
        let s = &self.sources[idx];
        'rows: for row in rows {
            let mut frame = vec![0i64; self.frame_width];
            let mut valid = true;
            for (slot, col) in &s.slot_cols {
                match col[row] {
                    Some(bits) => frame[*slot] = bits,
                    None => valid = false,
                }
            }
            let t = Tuple {
                frame,
                valid,
                rows: vec![(idx, row)],
                unnest_vals: Vec::new(),
            };
            if valid {
                if let Some(fused) = &s.fused_selects {
                    if stats.trace.is_some() {
                        // Attribute one hit per chained kernel — admit()
                        // short-circuits, so this over-counts rejected
                        // tails slightly; close enough for a hotness rank.
                        for id in fused.kernel_ids() {
                            stats.kernel_hit(id);
                        }
                    }
                    if fused.admit(&t.frame) {
                        sink(stats, t)?;
                    }
                    continue;
                }
            }
            for sel in &s.selects {
                if !self.apply_step(sel, &t, stats, "selection")? {
                    continue 'rows;
                }
            }
            sink(stats, t)?;
        }
        Ok(())
    }

    /// Materialize a source's tuples over a row range — used only where a
    /// buffer is genuinely required: join build sides (pipeline breakers)
    /// and the legacy materializing executor.
    fn source_tuples_range(
        &self,
        idx: usize,
        rows: std::ops::Range<usize>,
        stats: &mut ExecStats,
    ) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        self.push_source(idx, rows, stats, &mut |_, t| {
            out.push(t);
            Ok(())
        })?;
        Ok(out)
    }

    /// Drive the push loop: stream `range` rows of the pipeline's leftmost
    /// scan through every fused stage, handing each surviving tuple to
    /// `sink`. Each operator arm wraps `sink` in its own consumer closure,
    /// so a select→unnest→probe→fold chain executes as one loop nest with
    /// **no intermediate `Vec<Tuple>`**; the join build sides arrive
    /// pre-materialized in `builds` (the only pipeline breakers).
    fn drive(
        &self,
        node: &Node,
        range: std::ops::Range<usize>,
        builds: &[JoinBuild],
        stats: &mut ExecStats,
        sink: TupleSink<'_>,
    ) -> Result<()> {
        match node {
            Node::Source(idx) => self.push_source(*idx, range, stats, sink),
            Node::Unnest {
                input,
                stage,
                selects,
            } => self.drive(input, range, builds, stats, &mut |stats, t| {
                self.unnest_tuple(*stage, selects, &t, stats, sink)
            }),
            Node::HashJoin {
                left,
                right,
                build,
                left_key,
                left_key_ty,
                float_keys,
                predicate,
                selects,
                ..
            } => {
                let jb = &builds[*build];
                let rslots = &self.sources[*right].slots;
                self.drive(left, range, builds, stats, &mut |stats, lt| {
                    if lt.valid {
                        stats.kernel_hit(left_key.id());
                    }
                    let candidates = jb.hash_candidates(&lt, left_key, *left_key_ty, *float_keys);
                    self.probe_pairs(
                        &lt,
                        &candidates,
                        &jb.right_tuples,
                        rslots,
                        predicate,
                        selects,
                        stats,
                        sink,
                    )
                })
            }
            Node::ThetaJoin {
                left,
                right,
                build,
                band,
                predicate,
                selects,
            } => {
                let jb = &builds[*build];
                let rslots = &self.sources[*right].slots;
                self.drive(left, range, builds, stats, &mut |stats, lt| {
                    if let Some(b) = band {
                        if lt.valid && jb.index.is_some() {
                            stats.kernel_hit(b.left_key.id());
                        }
                    }
                    let candidates = theta_candidates(&lt, band.as_ref(), jb.index.as_ref());
                    self.probe_pairs(
                        &lt,
                        candidates.as_deref().unwrap_or(&jb.all),
                        &jb.right_tuples,
                        rslots,
                        predicate,
                        selects,
                        stats,
                        sink,
                    )
                })
            }
        }
    }

    /// Materialize the build side of every join in the tree, in the DFS
    /// order `assemble` assigned build slots. These are the pipeline
    /// breakers of push execution: each right side scans into a tuple
    /// buffer once (morsel-parallel when a pool is given), then hashes into
    /// radix-partitioned tables or sorts into a band index. Partition
    /// counts and bucket order depend only on the data, so every thread
    /// count probes identical candidate sets.
    fn prepare_builds(
        &self,
        pool: Option<&WorkerPool>,
        stats: &mut ExecStats,
    ) -> Result<Vec<JoinBuild>> {
        let mut builds = Vec::new();
        self.prepare_builds_node(&self.root, pool, stats, &mut builds)?;
        Ok(builds)
    }

    fn prepare_builds_node(
        &self,
        node: &Node,
        pool: Option<&WorkerPool>,
        stats: &mut ExecStats,
        builds: &mut Vec<JoinBuild>,
    ) -> Result<()> {
        match node {
            Node::Source(_) => Ok(()),
            Node::Unnest { input, .. } => self.prepare_builds_node(input, pool, stats, builds),
            Node::HashJoin {
                left,
                right,
                build,
                right_key,
                right_key_ty,
                float_keys,
                ..
            } => {
                self.prepare_builds_node(left, pool, stats, builds)?;
                let right_tuples = self.build_side_tuples(*right, pool, stats)?;
                let jb = JoinBuild::hash(
                    right_tuples,
                    right_key,
                    *right_key_ty,
                    *float_keys,
                    pool,
                    self.morsel_rows,
                    stats,
                )?;
                debug_assert_eq!(builds.len(), *build);
                builds.push(jb);
                Ok(())
            }
            Node::ThetaJoin {
                left,
                right,
                build,
                band,
                ..
            } => {
                self.prepare_builds_node(left, pool, stats, builds)?;
                let right_tuples = self.build_side_tuples(*right, pool, stats)?;
                if let Some(b) = band {
                    if stats.trace.is_some() {
                        // BandIndex::build invokes the band key kernel once
                        // per valid build tuple.
                        let n = right_tuples.iter().filter(|t| t.valid).count() as u64;
                        stats.kernel_hits(b.right_key.id(), n);
                    }
                }
                let index = band.as_ref().map(|b| BandIndex::build(b, &right_tuples));
                debug_assert_eq!(builds.len(), *build);
                builds.push(JoinBuild::theta(right_tuples, index));
                Ok(())
            }
        }
    }

    /// Build-side scan: the whole source serially, morsel-parallel with a
    /// pool.
    fn build_side_tuples(
        &self,
        idx: usize,
        pool: Option<&WorkerPool>,
        stats: &mut ExecStats,
    ) -> Result<Vec<Tuple>> {
        match pool {
            Some(pool) => self.source_tuples_parallel(idx, pool, stats),
            None => {
                // The serial build scan carries the same counts the
                // parallel per-morsel worker spans sum to.
                let nrows = self.sources[idx].nrows;
                stats.span_begin(stage::BUILD_SIDE);
                let out = self.source_tuples_range(idx, 0..nrows, stats)?;
                stats.span_end_counted(out.len() as u64, morsel_count(nrows, self.morsel_rows));
                Ok(out)
            }
        }
    }

    /// Emit the surviving join pairs of one probe tuple against its
    /// candidate build tuples, pushing each straight into `sink` (shared by
    /// the streaming drive and the legacy materializing executor).
    #[allow(clippy::too_many_arguments)]
    fn probe_pairs(
        &self,
        lt: &Tuple,
        candidates: &[usize],
        right_tuples: &[Tuple],
        rslots: &[usize],
        predicate: &Step,
        selects: &[Step],
        stats: &mut ExecStats,
        sink: TupleSink<'_>,
    ) -> Result<()> {
        'pairs: for &ri in candidates {
            let rt = &right_tuples[ri];
            let mut frame = lt.frame.clone();
            for &slot in rslots {
                frame[slot] = rt.frame[slot];
            }
            let merged = Tuple {
                frame,
                valid: lt.valid && rt.valid,
                rows: lt.rows.iter().chain(rt.rows.iter()).copied().collect(),
                unnest_vals: lt
                    .unnest_vals
                    .iter()
                    .chain(rt.unnest_vals.iter())
                    .cloned()
                    .collect(),
            };
            if !self.apply_step(predicate, &merged, stats, "join")? {
                continue;
            }
            for sel in selects {
                if !self.apply_step(sel, &merged, stats, "selection")? {
                    continue 'pairs;
                }
            }
            sink(stats, merged)?;
        }
        Ok(())
    }

    /// Flatten one input tuple through an unnest stage: one output tuple
    /// per collection element, frames extended with the element slots,
    /// stage selects applied, survivors pushed into `sink` (shared by the
    /// streaming drive and the legacy materializing executor).
    fn unnest_tuple(
        &self,
        stage: usize,
        selects: &[Step],
        t: &Tuple,
        stats: &mut ExecStats,
        sink: TupleSink<'_>,
    ) -> Result<()> {
        let u = &self.unnests[stage];
        let evaluated;
        let coll: &Value = match u.src_col {
            Some((src, col)) => {
                let (_, row) = t
                    .rows
                    .iter()
                    .find(|(s, _)| *s == src)
                    .copied()
                    .expect("unnest source bound upstream");
                &self.sources[src].env_fields[col].1[row]
            }
            None => {
                evaluated = eval(&u.path, &self.env_for(t))?;
                &evaluated
            }
        };
        let items = coll.elements().ok_or_else(|| {
            VidaError::Exec(format!("unnest path {} produced non-collection", u.path))
        })?;
        'items: for item in items {
            let mut frame = t.frame.clone();
            let mut valid = t.valid;
            for (field, slot, ty) in &u.slots {
                let v = match field {
                    None => Some(item),
                    Some(f) => item.field(f),
                };
                match v.and_then(|v| encode_elem(*ty, v, &self.interner)) {
                    Some(bits) => frame[*slot] = bits,
                    None => valid = false,
                }
            }
            let mut unnest_vals = t.unnest_vals.clone();
            unnest_vals.push((stage, item.clone()));
            let nt = Tuple {
                frame,
                valid,
                rows: t.rows.clone(),
                unnest_vals,
            };
            for sel in selects {
                if !self.apply_step(sel, &nt, stats, "selection")? {
                    continue 'items;
                }
            }
            sink(stats, nt)?;
        }
        Ok(())
    }

    /// The legacy pull-and-materialize executor (ablation baseline behind
    /// [`JitOptions::materialize_stages`]): every operator stage produces a
    /// full `Vec<Tuple>` handed to the next stage, and
    /// `ExecStats::operator_materializations` counts each buffer. Serial
    /// only — it exists so the `streaming_fusion` bench can measure what
    /// the push loop buys.
    fn execute_materialized(&self, stats: &mut ExecStats) -> Result<Value> {
        let tuples = self.exec_node_materialized(&self.root, stats)?;
        // Feed the materialized buffer through the same fold the streaming
        // engine uses.
        self.fold_stream(stats, |stats, sink| {
            for t in tuples {
                sink(stats, t)?;
            }
            Ok(())
        })
    }

    fn exec_node_materialized(&self, node: &Node, stats: &mut ExecStats) -> Result<Vec<Tuple>> {
        // Each arm materializes its full output before the parent consumes
        // it — the inter-operator buffer the streaming engine eliminates.
        stats.operator_materializations += 1;
        let mut out = Vec::new();
        let mut collect = |_: &mut ExecStats, t: Tuple| -> Result<()> {
            out.push(t);
            Ok(())
        };
        match node {
            Node::Source(idx) => {
                let nrows = self.sources[*idx].nrows;
                self.push_source(*idx, 0..nrows, stats, &mut collect)?;
            }
            Node::HashJoin {
                left,
                right,
                right_key,
                left_key,
                left_key_ty,
                right_key_ty,
                float_keys,
                predicate,
                selects,
                ..
            } => {
                let left_tuples = self.exec_node_materialized(left, stats)?;
                let right_tuples =
                    self.source_tuples_range(*right, 0..self.sources[*right].nrows, stats)?;
                let jb = JoinBuild::hash(
                    right_tuples,
                    right_key,
                    *right_key_ty,
                    *float_keys,
                    None,
                    self.morsel_rows,
                    stats,
                )?;
                let rslots = &self.sources[*right].slots;
                for lt in &left_tuples {
                    let candidates = jb.hash_candidates(lt, left_key, *left_key_ty, *float_keys);
                    self.probe_pairs(
                        lt,
                        &candidates,
                        &jb.right_tuples,
                        rslots,
                        predicate,
                        selects,
                        stats,
                        &mut collect,
                    )?;
                }
            }
            Node::ThetaJoin {
                left,
                right,
                band,
                predicate,
                selects,
                ..
            } => {
                let left_tuples = self.exec_node_materialized(left, stats)?;
                let right_tuples =
                    self.source_tuples_range(*right, 0..self.sources[*right].nrows, stats)?;
                let index = band.as_ref().map(|b| BandIndex::build(b, &right_tuples));
                let all: Vec<usize> = (0..right_tuples.len()).collect();
                let rslots = &self.sources[*right].slots;
                for lt in &left_tuples {
                    let candidates = theta_candidates(lt, band.as_ref(), index.as_ref());
                    self.probe_pairs(
                        lt,
                        candidates.as_deref().unwrap_or(&all),
                        &right_tuples,
                        rslots,
                        predicate,
                        selects,
                        stats,
                        &mut collect,
                    )?;
                }
            }
            Node::Unnest {
                input,
                stage,
                selects,
            } => {
                let input_tuples = self.exec_node_materialized(input, stats)?;
                for t in &input_tuples {
                    self.unnest_tuple(*stage, selects, t, stats, &mut collect)?;
                }
            }
        }
        Ok(out)
    }
}

/// The consumer side of one pipeline stage: receives each surviving tuple
/// (plus the worker-local stats) and forwards it — into the next stage's
/// closure, the fold, or a build buffer. Passing stats through the sink
/// keeps one mutable path through the whole recursive loop nest.
type TupleSink<'a> = &'a mut dyn FnMut(&mut ExecStats, Tuple) -> Result<()>;

/// Materialized build side of one join — the pipeline breaker the
/// streaming engine still pays, constructed once before the push loop and
/// shared (read-only) by every probe morsel.
struct JoinBuild {
    right_tuples: Vec<Tuple>,
    /// Hash strategy: radix-partitioned tables (`partition_count` depends
    /// only on the build size, so serial and parallel builds are
    /// identical) plus the invalid-frame stragglers every probe checks
    /// through the interpreter.
    tables: Vec<HashMap<i64, Vec<usize>>>,
    partitions: usize,
    loose: Vec<usize>,
    /// Band strategy: the sorted key index.
    index: Option<BandIndex>,
    /// Cached `0..n` candidate list for block-nested-loop probes, hoisted
    /// so invalid probes and band-less joins do not reallocate it per
    /// tuple.
    all: Vec<usize>,
}

impl JoinBuild {
    /// Hash-join build: extract key bits, split by radix partition, and
    /// assemble one table per partition. With a pool the extraction runs
    /// morsel-wise and partition tables build in parallel; visiting
    /// morsel pre-splits in morsel order keeps every bucket's index list
    /// ascending — the same order a serial single-table build produces.
    fn hash(
        right_tuples: Vec<Tuple>,
        right_key: &CompiledKernel,
        right_key_ty: SlotType,
        float_keys: bool,
        pool: Option<&WorkerPool>,
        morsel_rows: usize,
        stats: &mut ExecStats,
    ) -> Result<JoinBuild> {
        let partitions = radix::partition_count(right_tuples.len());
        let all = (0..right_tuples.len()).collect();
        let key_of = |t: &Tuple| encode_key(right_key.call(&t.frame), right_key_ty, float_keys);
        if stats.trace.is_some() {
            // The build extracts the key of every valid tuple exactly once,
            // serial or parallel.
            let n = right_tuples.iter().filter(|t| t.valid).count() as u64;
            stats.kernel_hits(right_key.id(), n);
        }
        match pool {
            Some(pool) if pool.threads() > 1 => {
                // Phase 1: workers pre-split key bits by partition,
                // morsel-wise.
                let rplan = MorselPlan::fixed(right_tuples.len(), morsel_rows);
                stats.morsels += rplan.len() as u64;
                let pre = pool.run_morsels(
                    rplan.len(),
                    |_| (),
                    |_, m| {
                        let mut parts: Vec<Vec<(i64, usize)>> = vec![Vec::new(); partitions];
                        let mut loose: Vec<usize> = Vec::new();
                        for i in rplan.range(m) {
                            let t = &right_tuples[i];
                            if t.valid {
                                let k = key_of(t);
                                parts[partition_of(k, partitions)].push((k, i));
                            } else {
                                loose.push(i);
                            }
                        }
                        Ok::<_, VidaError>((parts, loose))
                    },
                )?;
                // Phase 2: one worker per partition assembles that
                // partition's table from the morsel-ordered pre-splits.
                let tables = pool.run_morsels(
                    partitions,
                    |_| (),
                    |_, p| {
                        let mut table: HashMap<i64, Vec<usize>> = HashMap::new();
                        for (parts, _) in &pre {
                            for &(k, i) in &parts[p] {
                                table.entry(k).or_default().push(i);
                            }
                        }
                        Ok::<_, VidaError>(table)
                    },
                )?;
                let loose = pre.iter().flat_map(|(_, l)| l.iter().copied()).collect();
                Ok(JoinBuild {
                    right_tuples,
                    tables,
                    partitions,
                    loose,
                    index: None,
                    all,
                })
            }
            _ => {
                let mut tables: Vec<HashMap<i64, Vec<usize>>> = vec![HashMap::new(); partitions];
                let mut loose: Vec<usize> = Vec::new();
                for (i, t) in right_tuples.iter().enumerate() {
                    if t.valid {
                        let k = key_of(t);
                        tables[partition_of(k, partitions)]
                            .entry(k)
                            .or_default()
                            .push(i);
                    } else {
                        loose.push(i);
                    }
                }
                Ok(JoinBuild {
                    right_tuples,
                    tables,
                    partitions,
                    loose,
                    index: None,
                    all,
                })
            }
        }
    }

    /// Theta-join build: tuples plus (for band joins) the sorted key index.
    fn theta(right_tuples: Vec<Tuple>, index: Option<BandIndex>) -> JoinBuild {
        let all = (0..right_tuples.len()).collect();
        JoinBuild {
            right_tuples,
            tables: Vec::new(),
            partitions: 0,
            loose: Vec::new(),
            index,
            all,
        }
    }

    /// Candidate build-tuple indexes for one hash probe, in ascending
    /// (right-scan) order so non-commutative monoids see the interpreter's
    /// pair order. Invalid probe frames are compared against every build
    /// tuple through the interpreter (null keys join null keys in this
    /// calculus).
    fn hash_candidates(
        &self,
        lt: &Tuple,
        left_key: &CompiledKernel,
        left_key_ty: SlotType,
        float_keys: bool,
    ) -> Vec<usize> {
        if !lt.valid {
            return self.all.clone();
        }
        let k = encode_key(left_key.call(&lt.frame), left_key_ty, float_keys);
        let mut c: Vec<usize> = self.tables[partition_of(k, self.partitions)]
            .get(&k)
            .map(|b| b.as_slice())
            .unwrap_or(&[])
            .iter()
            .chain(self.loose.iter())
            .copied()
            .collect();
        c.sort_unstable();
        c
    }
}

/// Leftmost scan of the pipeline tree — the source whose rows the push
/// loop (and its morsel grid) ranges over.
fn leftmost_source(node: &Node) -> usize {
    match node {
        Node::Source(idx) => *idx,
        Node::HashJoin { left, .. } | Node::ThetaJoin { left, .. } => leftmost_source(left),
        Node::Unnest { input, .. } => leftmost_source(input),
    }
}

/// Whether the pipeline tree contains any join (and therefore a build
/// side worth its own trace span).
fn has_join(node: &Node) -> bool {
    match node {
        Node::Source(_) => false,
        Node::HashJoin { .. } | Node::ThetaJoin { .. } => true,
        Node::Unnest { input, .. } => has_join(input),
    }
}

/// Trace stage name of the drive loop: a probe when any join is fused into
/// the push pipeline, otherwise a plain scan.
fn drive_stage(node: &Node) -> &'static str {
    if has_join(node) {
        stage::PROBE
    } else {
        stage::SCAN
    }
}

/// Morsel count the serial path reports for a `units`-row range, matching
/// `MorselPlan::fixed` so serial and parallel trace counters agree.
fn morsel_count(units: usize, morsel_rows: usize) -> u64 {
    let step = if morsel_rows == 0 {
        DEFAULT_MORSEL_UNITS
    } else {
        morsel_rows
    };
    units.div_ceil(step) as u64
}

/// Scratch stats for one worker, carrying a trace buffer on the worker's
/// own track (`worker + 1`; track 0 is the coordinator) when tracing.
fn worker_stats(worker: usize, epoch: Option<Instant>) -> ExecStats {
    let mut ws = ExecStats::default();
    if let Some(e) = epoch {
        ws.trace = Some(Box::new(QueryTrace::with_epoch(worker as u32 + 1, e)));
    }
    ws
}

/// Operator stages fused into the push loop (scan = 1, +1 per join probe
/// and unnest stage; the caller adds 1 for the fold).
fn fused_depth(node: &Node) -> u32 {
    match node {
        Node::Source(_) => 1,
        Node::HashJoin { left, .. } | Node::ThetaJoin { left, .. } => 1 + fused_depth(left),
        Node::Unnest { input, .. } => 1 + fused_depth(input),
    }
}

/// The sorted key index a band theta join probes: valid right tuples keyed
/// by their compiled band key, plus the tuples the index cannot order
/// (invalid frames, NaN keys) which every probe must still check pairwise.
struct BandIndex {
    /// `(key bits, right tuple index)`, sorted by key then index.
    sorted: Vec<(i64, usize)>,
    /// Right-scan-order indexes outside the sorted run.
    unindexed: Vec<usize>,
}

impl BandIndex {
    fn build(band: &Band, right_tuples: &[Tuple]) -> BandIndex {
        let mut sorted = Vec::with_capacity(right_tuples.len());
        let mut unindexed = Vec::new();
        for (i, t) in right_tuples.iter().enumerate() {
            if !t.valid {
                unindexed.push(i);
                continue;
            }
            let k = encode_key(
                band.right_key.call(&t.frame),
                band.right_key_ty,
                band.float_keys,
            );
            if band.float_keys && f64::from_bits(k as u64).is_nan() {
                // NaN compares false under every IEEE ordering; keep such
                // keys out of the sorted run (they would break binary
                // search) and let the pairwise predicate reject them.
                unindexed.push(i);
            } else {
                sorted.push((k, i));
            }
        }
        if band.float_keys {
            sorted.sort_unstable_by(|(a, ai), (b, bi)| {
                f64::from_bits(*a as u64)
                    .total_cmp(&f64::from_bits(*b as u64))
                    .then(ai.cmp(bi))
            });
        } else {
            sorted.sort_unstable();
        }
        BandIndex { sorted, unindexed }
    }

    /// Indexes of the sorted run satisfying `left_key op right_key` for one
    /// probe key, as the half-open range binary search finds.
    fn range(&self, band: &Band, lk: i64) -> &[(i64, usize)] {
        let lt = |k: i64| key_lt(k, lk, band.float_keys);
        let le = |k: i64| !key_lt(lk, k, band.float_keys);
        match band.op {
            // left < right: the strict suffix of keys above lk.
            BinOp::Lt => &self.sorted[self.sorted.partition_point(|&(k, _)| le(k))..],
            // left <= right: keys at or above lk.
            BinOp::Le => &self.sorted[self.sorted.partition_point(|&(k, _)| lt(k))..],
            // left > right: the strict prefix of keys below lk.
            BinOp::Gt => &self.sorted[..self.sorted.partition_point(|&(k, _)| lt(k))],
            // left >= right: keys at or below lk.
            BinOp::Ge => &self.sorted[..self.sorted.partition_point(|&(k, _)| le(k))],
            _ => unreachable!("band ops are range comparisons"),
        }
    }
}

/// Strict `a < b` over canonical key bits.
fn key_lt(a: i64, b: i64, float_keys: bool) -> bool {
    if float_keys {
        f64::from_bits(a as u64) < f64::from_bits(b as u64)
    } else {
        a < b
    }
}

/// Candidate right-tuple indexes for one theta probe, in ascending
/// (right-scan) order so non-commutative monoids see the interpreter's pair
/// order. `None` means "every build tuple" — invalid probe frames and
/// band-less joins run the block-nested loop over a candidate list the
/// caller hoisted once, instead of reallocating it per probe. Band probes
/// narrow to the sorted key range plus the unindexed stragglers.
fn theta_candidates(
    lt: &Tuple,
    band: Option<&Band>,
    index: Option<&BandIndex>,
) -> Option<Vec<usize>> {
    let (Some(band), Some(index)) = (band, index) else {
        return None;
    };
    if !lt.valid {
        return None;
    }
    let lk = encode_key(
        band.left_key.call(&lt.frame),
        band.left_key_ty,
        band.float_keys,
    );
    let mut c: Vec<usize> = if band.float_keys && f64::from_bits(lk as u64).is_nan() {
        // NaN probe keys satisfy no IEEE range; only the unindexed build
        // tuples (whose comparison runs through the full predicate) remain.
        Vec::new()
    } else {
        index.range(band, lk).iter().map(|&(_, i)| i).collect()
    };
    c.extend(index.unindexed.iter().copied());
    c.sort_unstable();
    Some(c)
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution (vida-parallel)
// ---------------------------------------------------------------------------
//
// The same fused push pipeline, executed by a worker pool: join build sides
// materialize first (morsel-parallel, the pipeline breakers), then the
// leftmost scan's rows split into morsels and each worker drives its morsel
// through the whole stage chain into a private partial fold. Three
// invariants keep every thread count result-identical:
//
// 1. Morsel grids depend only on the leftmost scan's row count (and the
//    `morsel_rows` knob), never on the worker count, so the partial-result
//    sequence is fixed.
// 2. Per-morsel partials merge — and collection chunks concatenate — in
//    morsel order (`WorkerPool::fold_morsels`), so element order matches
//    the serial push loop exactly.
// 3. The radix-partitioned build assigns partitions by key bits alone
//    (partition count is a function of the build size, not the worker
//    count), and bucket lists keep ascending build-tuple order, so every
//    probe sees the same candidate set in the same order as a serial
//    single-table build.

impl Pipeline {
    fn execute_parallel(&self, stats: &mut ExecStats) -> Result<Value> {
        let pool = &self.pool;
        let joins = has_join(&self.root);
        if joins {
            stats.span_begin(stage::BUILD_SIDE);
        }
        let builds = self.prepare_builds(Some(pool), stats)?;
        if joins {
            stats.span_end();
        }
        let nrows = self.sources[leftmost_source(&self.root)].nrows;
        // A reusable cached prefix partial shrinks the morsel grid to the
        // appended rows (`from = 0` is the ordinary whole-source grid).
        let from = self.fold_reuse_rows();
        let plan = MorselPlan::fixed(nrows - from, self.morsel_rows).shifted(from);
        stats.morsels += plan.len() as u64;
        let epoch = stats.trace_epoch();
        let dstage = drive_stage(&self.root);

        stats.span_begin(stage::FOLD);
        let value = match self.monoid {
            Monoid::Collection(kind) => {
                // Per-morsel head values, concatenated in morsel order:
                // identical element sequence to the serial push loop, then
                // one canonicalization.
                let items = pool.fold_morsels(
                    plan.len(),
                    |w, m| {
                        let mut ws = worker_stats(w, epoch);
                        ws.span_begin(dstage);
                        let mut items = Vec::new();
                        self.drive(&self.root, plan.range(m), &builds, &mut ws, &mut |ws, t| {
                            ws.actual_rows += 1;
                            items.push(self.head_value(&t, ws)?);
                            Ok(())
                        })?;
                        ws.span_end_counted(items.len() as u64, 1);
                        Ok::<_, VidaError>((items, ws))
                    },
                    Vec::new(),
                    |mut all, (chunk, ws)| {
                        all.extend(chunk);
                        stats.absorb_worker(ws);
                        Ok(all)
                    },
                )?;
                Ok(match kind {
                    CollectionKind::Set => Value::set(items),
                    k => Value::Collection(k, items),
                })
            }
            Monoid::Primitive(PrimitiveMonoid::Count)
                if matches!(self.head, HeadPlan::CountOnly) =>
            {
                // A reused partial in this arm is always the plain count
                // (the same plan hash always lands in the same arm).
                let base = match self.fold_reuse_partial(stats) {
                    Some(Value::Int(k)) => k,
                    _ => 0,
                };
                let n = pool.fold_morsels(
                    plan.len(),
                    |w, m| {
                        let mut ws = worker_stats(w, epoch);
                        ws.span_begin(dstage);
                        let mut n = 0i64;
                        self.drive(&self.root, plan.range(m), &builds, &mut ws, &mut |ws, _| {
                            ws.actual_rows += 1;
                            n += 1;
                            Ok(())
                        })?;
                        ws.span_end_counted(n as u64, 1);
                        Ok::<_, VidaError>((n, ws))
                    },
                    0i64,
                    |acc, (n, ws)| {
                        stats.absorb_worker(ws);
                        Ok(acc + n)
                    },
                )?;
                self.store_fold_partial(&Value::Int(base + n));
                Ok(Value::Int(base + n))
            }
            m => {
                // Per-morsel partial folds, merged deterministically in
                // morsel order via the Monoid trait. A reused cached prefix
                // partial goes in front — morsel order over the tail plus
                // the prefix is exactly the whole-source order.
                let mut seed = Vec::with_capacity(plan.len() + 1);
                if let Some(prefix) = self.fold_reuse_partial(stats) {
                    seed.push(prefix);
                }
                let accs = pool.fold_morsels(
                    plan.len(),
                    |w, mi| {
                        let mut ws = worker_stats(w, epoch);
                        ws.span_begin(dstage);
                        let mut acc = m.zero();
                        let mut pushed = 0u64;
                        self.drive(
                            &self.root,
                            plan.range(mi),
                            &builds,
                            &mut ws,
                            &mut |ws, t| {
                                ws.actual_rows += 1;
                                let v = self.head_value(&t, ws)?;
                                acc =
                                    m.merge(std::mem::replace(&mut acc, Value::Null), m.unit(v))?;
                                pushed += 1;
                                Ok(())
                            },
                        )?;
                        ws.span_end_counted(pushed, 1);
                        Ok::<_, VidaError>((acc, ws))
                    },
                    seed,
                    |mut accs, (acc, ws)| {
                        accs.push(acc);
                        stats.absorb_worker(ws);
                        Ok(accs)
                    },
                )?;
                let merged = m.merge_partials(accs)?;
                self.store_fold_partial(&merged);
                m.finalize(merged)
            }
        }?;
        stats.span_end();
        Ok(value)
    }

    /// Morsel-parallel build-side scan: chunks concatenate in morsel order,
    /// so the buffer is identical to a serial scan's.
    fn source_tuples_parallel(
        &self,
        idx: usize,
        pool: &WorkerPool,
        stats: &mut ExecStats,
    ) -> Result<Vec<Tuple>> {
        let plan = MorselPlan::fixed(self.sources[idx].nrows, self.morsel_rows);
        stats.morsels += plan.len() as u64;
        let epoch = stats.trace_epoch();
        pool.fold_morsels(
            plan.len(),
            |w, m| {
                let mut ws = worker_stats(w, epoch);
                ws.span_begin(stage::BUILD_SIDE);
                let out = self.source_tuples_range(idx, plan.range(m), &mut ws)?;
                ws.span_end_counted(out.len() as u64, 1);
                Ok::<_, VidaError>((out, ws))
            },
            Vec::new(),
            |mut all, (chunk, ws)| {
                all.extend(chunk);
                stats.absorb_worker(ws);
                Ok(all)
            },
        )
    }
}

/// Record the pipeline stages a fully-assembled operator tree will execute
/// (`unnest_pipelines` / `theta_pipelines`).
fn count_stages(node: &Node, stats: &mut ExecStats) {
    match node {
        Node::Source(_) => {}
        Node::HashJoin { left, .. } => count_stages(left, stats),
        Node::ThetaJoin { left, .. } => {
            stats.theta_pipelines += 1;
            count_stages(left, stats);
        }
        Node::Unnest { input, .. } => {
            stats.unnest_pipelines += 1;
            count_stages(input, stats);
        }
    }
}

/// Cache byte pressure in `[0, 1]` — the cost model's storage-rent signal.
fn cache_pressure(cache: &CacheManager) -> f64 {
    cache.used_bytes() as f64 / cache.budget_bytes().max(1) as f64
}

/// FNV-1a over the plan's debug rendering — the query half of the
/// fold-partial cache key. Deterministic across runs (derived `Debug` is
/// stable), and distinct plans only collide on a 64-bit hash collision.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Expression size in AST nodes — the per-tuple evaluation-cost proxy used
/// to rank fused conjuncts.
fn expr_size(e: &Expr) -> usize {
    1 + match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Zero(_) => 0,
        Expr::Proj(i, _) | Expr::UnOp(_, i) | Expr::Lambda(_, i) | Expr::Singleton(_, i) => {
            expr_size(i)
        }
        Expr::BinOp(_, l, r) | Expr::App(l, r) | Expr::Merge(_, l, r) => {
            expr_size(l) + expr_size(r)
        }
        Expr::If(c, t, f) => expr_size(c) + expr_size(t) + expr_size(f),
        Expr::Record(fs) => fs.iter().map(|(_, e)| expr_size(e)).sum(),
        Expr::ListLit(es) => es.iter().map(expr_size).sum(),
        Expr::Comprehension {
            head, qualifiers, ..
        } => expr_size(head) + qualifiers.len(),
    }
}

/// Estimated pass rate of one scan-level conjunct: observed predicate
/// counters first, then a distinct-sketch / shape heuristic (mirroring the
/// join optimizer's defaults).
fn conjunct_selectivity(e: &Expr, dataset: &str, model: Option<&CostModel>) -> f64 {
    if let Some(m) = model {
        if let Some(s) = m.sketch().predicate_selectivity(&e.to_string()) {
            return s.clamp(0.0, 1.0);
        }
    }
    match e {
        Expr::BinOp(BinOp::Eq, l, r) => {
            let d = model.and_then(|m| {
                [l.as_ref(), r.as_ref()].iter().find_map(|s| match s {
                    Expr::Proj(inner, f) if matches!(inner.as_ref(), Expr::Var(_)) => {
                        m.sketch().distinct(dataset, f)
                    }
                    _ => None,
                })
            });
            match d {
                Some(d) => (1.0 / d.max(1.0)).min(1.0),
                None => 0.1,
            }
        }
        Expr::BinOp(BinOp::Ne, ..) => 0.9,
        Expr::BinOp(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, ..) => 1.0 / 3.0,
        _ => 0.5,
    }
}

/// Evaluation order for a fused conjunct chain: ascending
/// `cost / (1 - selectivity)` — the classic rank that puts cheap, highly
/// selective predicates first so later (costlier) ones run on fewer tuples.
/// Stable on ties, so unranked chains keep syntactic order.
fn rank_conjuncts(selects: &[Expr], dataset: &str, model: Option<&CostModel>) -> Vec<usize> {
    let ranks: Vec<f64> = selects
        .iter()
        .map(|e| {
            let sel = conjunct_selectivity(e, dataset, model);
            expr_size(e) as f64 / (1.0 - sel).max(1e-3)
        })
        .collect();
    let mut order: Vec<usize> = (0..selects.len()).collect();
    order.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]).then(a.cmp(&b)));
    order
}

/// One query's access evidence for a column: sampled per-row footprints of
/// the candidate layouts plus the plugin's raw fetch cost.
fn observe_column(
    plugin: &Arc<dyn vida_formats::InputPlugin>,
    col: usize,
    vals: &[Value],
) -> FieldObservation {
    /// Sampled rows per observation: enough to estimate footprints, cheap
    /// enough to run after every query.
    const SAMPLE_ROWS: usize = 64;
    /// Per-row container overhead `CachedData::approx_bytes` charges for a
    /// binary-JSON replica (one `Vec<u8>` per row).
    const BINARY_ROW_OVERHEAD: usize = 24;
    let n = vals.len().min(SAMPLE_ROWS);
    let (mut value_bytes, mut binary_bytes) = (0usize, 0usize);
    for v in vals.iter().take(n) {
        value_bytes += v.approx_bytes();
        binary_bytes += bson::to_bytes(v).len() + BINARY_ROW_OVERHEAD;
    }
    let denom = n.max(1) as f64;
    FieldObservation {
        rows: vals.len() as u64,
        avg_value_bytes: value_bytes as f64 / denom,
        avg_binary_bytes: binary_bytes as f64 / denom,
        raw_cost_factor: plugin.field_cost_factor(col),
        has_spans: plugin.supports_field_spans(),
    }
}

/// Canonical hash bits for a join key. With `float_keys`, integer keys
/// promote into the float domain so `p.id = g.fid` hashes consistently
/// across the numeric tower (bit equality on floats matches the
/// interpreter's total-order equality).
fn encode_key(raw: i64, ty: SlotType, float_keys: bool) -> i64 {
    if float_keys && ty == SlotType::Int {
        (raw as f64).to_bits() as i64
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemoryCatalog;
    use vida_algebra::{lower, rewrite};
    use vida_lang::parse;
    use vida_types::{Schema, Type};

    fn catalog() -> MemoryCatalog {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "Patients",
            Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)]),
            &[
                Value::record([
                    ("id", Value::Int(1)),
                    ("age", Value::Int(71)),
                    ("city", Value::str("geneva")),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    ("age", Value::Int(34)),
                    ("city", Value::str("bern")),
                ]),
                Value::record([
                    ("id", Value::Int(3)),
                    ("age", Value::Int(65)),
                    ("city", Value::str("geneva")),
                ]),
            ],
        )
        .unwrap();
        cat.register_records(
            "Genetics",
            Schema::from_pairs([("id", Type::Int), ("snp", Type::Float)]),
            &[
                Value::record([("id", Value::Int(1)), ("snp", Value::Float(0.9))]),
                Value::record([("id", Value::Int(2)), ("snp", Value::Float(0.1))]),
                Value::record([("id", Value::Int(3)), ("snp", Value::Float(0.5))]),
            ],
        )
        .unwrap();
        cat
    }

    fn plan_of(q: &str) -> Plan {
        rewrite(&lower(&parse(q).unwrap()).unwrap())
    }

    fn jit(q: &str) -> Value {
        run_jit(&plan_of(q), &catalog(), &JitOptions::default()).unwrap()
    }

    #[test]
    fn scan_filter_aggregate() {
        assert_eq!(
            jit("for { p <- Patients, p.age > 60 } yield count p"),
            Value::Int(2)
        );
        assert_eq!(jit("for { p <- Patients } yield max p.age"), Value::Int(71));
        assert_eq!(
            jit("for { p <- Patients, p.city = \"geneva\" } yield sum p.age"),
            Value::Int(136)
        );
    }

    #[test]
    fn hash_join_on_equi_keys() {
        assert_eq!(
            jit(
                "for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 60 } \
                 yield sum g.snp"
            ),
            Value::Float(1.4)
        );
    }

    #[test]
    fn record_projection_compiles_per_field() {
        let v = jit("for { p <- Patients, p.age > 60 } yield bag (i := p.id, a := p.age)");
        assert_eq!(v.elements().unwrap().len(), 2);
        assert_eq!(
            v.elements().unwrap()[0],
            Value::record([("i", Value::Int(1)), ("a", Value::Int(71))])
        );
    }

    #[test]
    fn string_head_decodes_through_interner() {
        let v = jit("for { p <- Patients, p.age > 60 } yield set p.city");
        assert_eq!(v.elements().unwrap(), &[Value::str("geneva")]);
    }

    #[test]
    fn agrees_with_volcano_engine() {
        let queries = [
            "for { p <- Patients } yield avg p.age",
            "for { p <- Patients, p.city != \"bern\" } yield list p.id",
            "for { p <- Patients, g <- Genetics, p.id = g.id } \
             yield bag (a := p.age, s := g.snp)",
            "for { p <- Patients } yield all p.age > 20",
            "for { p <- Patients, p.age > 40, p.age < 70 } yield count p",
        ];
        let cat = catalog();
        for q in queries {
            let plan = plan_of(q);
            let via_volcano = crate::volcano::run_volcano(&plan, &cat).unwrap();
            let via_jit = run_jit(&plan, &cat, &JitOptions::default()).unwrap();
            assert_eq!(via_jit, via_volcano, "jit deviates for {q}");
        }
    }

    #[test]
    fn null_tuples_take_interpreted_fallback() {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("x", Type::Int)]),
            &[
                Value::record([("x", Value::Int(5))]),
                Value::record([("x", Value::Null)]),
                Value::record([("x", Value::Int(7))]),
            ],
        )
        .unwrap();
        let plan = plan_of("for { t <- T, t.x > 4 } yield count t");
        let (v, stats) = run_jit_with_stats(&plan, &cat, &JitOptions::default()).unwrap();
        // null > 4 is false in this calculus; the null row must not count.
        assert_eq!(v, Value::Int(2));
        assert!(stats.fallback_tuples >= 1);
    }

    #[test]
    fn kernels_are_counted() {
        let plan = plan_of("for { p <- Patients, p.age > 60 } yield sum p.age");
        let (_, stats) = run_jit_with_stats(&plan, &catalog(), &JitOptions::default()).unwrap();
        assert!(stats.kernels_compiled >= 2, "{stats:?}");
        assert_eq!(stats.tuples_scanned, 3);
    }

    #[test]
    fn interpret_only_pipeline_agrees() {
        let opts = JitOptions {
            interpret_only: true,
            ..Default::default()
        };
        let plan = plan_of("for { p <- Patients, p.age > 60 } yield sum p.age");
        let (v, stats) = run_jit_with_stats(&plan, &catalog(), &opts).unwrap();
        assert_eq!(v, Value::Int(136));
        assert_eq!(stats.kernels_compiled, 0);
    }

    #[test]
    fn cache_serves_second_run() {
        let cache = Arc::new(CacheManager::new(1 << 20));
        let opts = JitOptions::with_cache(Arc::clone(&cache));
        let cat = catalog();
        let plan = plan_of("for { p <- Patients, p.age > 60 } yield sum p.age");
        let (v1, s1) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v1, Value::Int(136));
        assert!(s1.raw_columns > 0);
        assert!(!s1.served_from_cache);
        let (v2, s2) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v2, v1);
        assert_eq!(s2.raw_columns, 0);
        assert!(s2.served_from_cache, "{s2:?}");
        assert!(cache.stats().hits > 0);
    }

    fn nested_catalog() -> MemoryCatalog {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "Regions",
            Schema::from_pairs([("id", Type::Int), ("voxels", Type::bag(Type::Int))]),
            &[
                Value::record([
                    ("id", Value::Int(1)),
                    ("voxels", Value::bag(vec![Value::Int(5), Value::Int(15)])),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    (
                        "voxels",
                        Value::bag(vec![Value::Int(30), Value::Int(7), Value::Int(12)]),
                    ),
                ]),
                Value::record([("id", Value::Int(3)), ("voxels", Value::bag(vec![]))]),
            ],
        )
        .unwrap();
        cat
    }

    #[test]
    fn unnest_runs_through_generated_pipeline() {
        let cat = nested_catalog();
        let plan = plan_of("for { r <- Regions, v <- r.voxels, v > 10 } yield sum v");
        let (v, stats) = run_jit_with_stats(&plan, &cat, &JitOptions::default()).unwrap();
        assert_eq!(v, Value::Int(15 + 30 + 12));
        assert_eq!(stats.whole_query_fallbacks, 0, "{stats:?}");
        assert_eq!(stats.unnest_pipelines, 1);
        // The element slot compiled the inner predicate: no per-tuple
        // interpretation beyond nulls (of which this fixture has none).
        assert_eq!(stats.fallback_tuples, 0, "{stats:?}");
        assert!(stats.kernels_compiled >= 1);
        // Element order is preserved (list monoid).
        let plan = plan_of("for { r <- Regions, v <- r.voxels } yield list v");
        let (v, _) = run_jit_with_stats(&plan, &cat, &JitOptions::default()).unwrap();
        assert_eq!(
            v.elements().unwrap(),
            &[5, 15, 30, 7, 12].map(Value::Int) as &[Value]
        );
    }

    #[test]
    fn constant_queries_still_fall_back() {
        let cat = nested_catalog();
        let plan = plan_of("1 + 2");
        let (v, stats) = run_jit_with_stats(&plan, &cat, &JitOptions::default()).unwrap();
        assert_eq!(v, Value::Int(3));
        assert_eq!(stats.whole_query_fallbacks, 1);
        // Literal-collection generators unnest over the unit row: also
        // degenerate, also the fallback engine.
        let plan = plan_of("for { x <- [1, 2, 3] } yield sum x");
        let (v, stats) = run_jit_with_stats(&plan, &cat, &JitOptions::default()).unwrap();
        assert_eq!(v, Value::Int(6));
        assert_eq!(stats.whole_query_fallbacks, 1);
    }

    #[test]
    fn unnest_agrees_with_volcano_at_every_thread_count() {
        let cat = nested_catalog();
        let queries = [
            "for { r <- Regions, v <- r.voxels } yield list v",
            "for { r <- Regions, v <- r.voxels, v > 10 } yield count v",
            "for { r <- Regions, v <- r.voxels, r.id > 1 } yield sum (v + r.id)",
            "for { r <- Regions, v <- r.voxels } yield bag (id := r.id, v := v)",
            "for { r <- Regions, v <- r.voxels } yield set v",
        ];
        for q in queries {
            let plan = plan_of(q);
            let oracle = crate::volcano::run_volcano(&plan, &cat).unwrap();
            for threads in [1usize, 2, 8] {
                let opts = JitOptions {
                    threads,
                    morsel_rows: 1,
                    clamp_threads: false,
                    ..Default::default()
                };
                let v = run_jit(&plan, &cat, &opts).unwrap();
                assert_eq!(v, oracle, "threads={threads} deviates for {q}");
            }
        }
    }

    #[test]
    fn theta_join_band_and_nested_loop_agree_with_volcano() {
        let cat = catalog();
        let queries = [
            // Band: range comparison between the sides.
            "for { p <- Patients, g <- Genetics, p.id < g.id } yield list p.age",
            "for { p <- Patients, g <- Genetics, p.id <= g.id, p.age > 40 } yield count p",
            "for { p <- Patients, g <- Genetics, p.id >= g.id } yield sum g.id",
            // Block-nested-loop: inequality and products.
            "for { p <- Patients, g <- Genetics, p.id != g.id } yield count p",
            "for { p <- Patients, g <- Genetics } yield count p",
        ];
        for q in queries {
            let plan = plan_of(q);
            let oracle = crate::volcano::run_volcano(&plan, &cat).unwrap();
            for threads in [1usize, 2, 8] {
                let opts = JitOptions {
                    threads,
                    morsel_rows: 1,
                    clamp_threads: false,
                    ..Default::default()
                };
                let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
                assert_eq!(v, oracle, "threads={threads} deviates for {q}");
                assert_eq!(stats.whole_query_fallbacks, 0, "{q}: {stats:?}");
                assert_eq!(stats.theta_pipelines, 1, "{q}: {stats:?}");
            }
        }
    }

    #[test]
    fn bushy_join_tree_lowers_to_pipeline() {
        use vida_algebra::Plan as P;
        let cat = catalog();
        let scan = |d: &str, b: &str| P::Scan {
            dataset: d.into(),
            binding: b.into(),
        };
        // Patients ⋈[p.id = g.id] (Patients ⋈[q.id = g.id] Genetics),
        // directly constructed (comprehension lowering is always
        // left-deep).
        let bushy = P::Reduce {
            input: Box::new(P::Join {
                left: Box::new(scan("Patients", "p")),
                right: Box::new(P::Join {
                    left: Box::new(scan("Patients", "q")),
                    right: Box::new(scan("Genetics", "g")),
                    predicate: vida_lang::parse("q.id = g.id").unwrap(),
                }),
                predicate: vida_lang::parse("p.id = g.id").unwrap(),
            }),
            monoid: Monoid::Collection(CollectionKind::List),
            head: vida_lang::parse("p.age + q.age + g.id").unwrap(),
        };
        let oracle = crate::volcano::run_volcano(&bushy, &cat).unwrap();
        let (v, stats) = run_jit_with_stats(&bushy, &cat, &JitOptions::default()).unwrap();
        assert_eq!(v, oracle);
        assert_eq!(stats.whole_query_fallbacks, 0, "{stats:?}");
        assert_eq!(stats.bushy_lowered, 1, "{stats:?}");
        for threads in [2usize, 8] {
            let opts = JitOptions {
                threads,
                morsel_rows: 1,
                clamp_threads: false,
                ..Default::default()
            };
            assert_eq!(run_jit(&bushy, &cat, &opts).unwrap(), oracle);
        }
    }

    #[test]
    fn nested_head_materializes_dataset() {
        let v = jit("for { g <- Genetics } yield bag \
             (id := g.id, \
              meta := for { p <- Patients, p.id = g.id } yield list p.city)");
        let items = v.elements().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(
            items[0].field("meta").unwrap().elements().unwrap(),
            &[Value::str("geneva")]
        );
    }

    #[test]
    fn null_join_values_preserve_right_scan_order() {
        // Regression: loose (null-frame) build tuples must interleave with
        // hash-bucket matches in right-scan order, or list-monoid results
        // diverge from the oracles.
        let cat = MemoryCatalog::new();
        cat.register_records(
            "P",
            Schema::from_pairs([("id", Type::Int)]),
            &[Value::record([("id", Value::Int(1))])],
        )
        .unwrap();
        cat.register_records(
            "G",
            Schema::from_pairs([("id", Type::Int), ("snp", Type::Float)]),
            &[
                Value::record([("id", Value::Int(1)), ("snp", Value::Null)]),
                Value::record([("id", Value::Int(1)), ("snp", Value::Float(0.2))]),
            ],
        )
        .unwrap();
        let plan = plan_of("for { p <- P, g <- G, p.id = g.id } yield list g.snp");
        let via_volcano = crate::volcano::run_volcano(&plan, &cat).unwrap();
        let via_jit = run_jit(&plan, &cat, &JitOptions::default()).unwrap();
        assert_eq!(via_jit, via_volcano);
        assert_eq!(
            via_jit.elements().unwrap(),
            &[Value::Null, Value::Float(0.2)]
        );
    }

    #[test]
    fn non_equi_join_compiles_to_band_pipeline() {
        // Non-equi joins used to bail to the Volcano engine wholesale; the
        // mixed-tower range predicate now compiles into a band sort-probe
        // pipeline over materialized columns.
        let plan = plan_of("for { p <- Patients, g <- Genetics, p.age > g.snp } yield count p");
        let (v, stats) = run_jit_with_stats(&plan, &catalog(), &JitOptions::default()).unwrap();
        assert_eq!(v, Value::Int(9)); // every (p, g) pair: ages dwarf snps
        assert_eq!(stats.whole_query_fallbacks, 0, "{stats:?}");
        assert_eq!(stats.theta_pipelines, 1, "{stats:?}");
        assert!(stats.raw_columns > 0, "{stats:?}");
    }

    #[test]
    fn interpret_only_joins_still_fall_back_wholesale() {
        let opts = JitOptions {
            interpret_only: true,
            ..Default::default()
        };
        let plan = plan_of("for { p <- Patients, g <- Genetics, p.id < g.id } yield count p");
        let (_, stats) = run_jit_with_stats(&plan, &catalog(), &opts).unwrap();
        assert_eq!(stats.whole_query_fallbacks, 1, "{stats:?}");
        assert_eq!(stats.raw_columns, 0);
        // An unnest below an interpret_only join must not count as an
        // executed pipeline stage: the whole query fell back.
        let cat = nested_catalog();
        cat.register_records(
            "Flat",
            Schema::from_pairs([("id", Type::Int)]),
            &[Value::record([("id", Value::Int(5))])],
        )
        .unwrap();
        let plan =
            plan_of("for { r <- Regions, v <- r.voxels, f <- Flat, v = f.id } yield count v");
        let (_, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(stats.whole_query_fallbacks, 1, "{stats:?}");
        assert_eq!(stats.unnest_pipelines, 0, "{stats:?}");
        assert_eq!(stats.theta_pipelines, 0, "{stats:?}");
    }

    #[test]
    fn parallel_execution_matches_serial() {
        // Tiny morsels force genuine multi-morsel scheduling even on the
        // 3-row fixtures; results must be identical at every thread count.
        let queries = [
            "for { p <- Patients, p.age > 40 } yield count p",
            "for { p <- Patients } yield max p.age",
            "for { p <- Patients, p.city != \"bern\" } yield list p.id",
            "for { p <- Patients, p.age > 30 } yield set p.city",
            "for { p <- Patients, g <- Genetics, p.id = g.id } \
             yield bag (a := p.age, s := g.snp)",
        ];
        let cat = catalog();
        for q in queries {
            let plan = plan_of(q);
            let serial = run_jit(&plan, &cat, &JitOptions::default()).unwrap();
            for threads in [2, 8] {
                let opts = JitOptions {
                    threads,
                    morsel_rows: 1,
                    clamp_threads: false, // force oversubscription coverage
                    ..Default::default()
                };
                let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
                assert_eq!(v, serial, "threads={threads} deviates for {q}");
                assert_eq!(stats.threads, threads as u32);
                assert!(stats.morsels >= 2, "{q}: expected multi-morsel run");
            }
        }
    }

    #[test]
    fn parallel_null_tuples_take_fallback() {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "T",
            Schema::from_pairs([("x", Type::Int)]),
            &[
                Value::record([("x", Value::Int(5))]),
                Value::record([("x", Value::Null)]),
                Value::record([("x", Value::Int(7))]),
            ],
        )
        .unwrap();
        let plan = plan_of("for { t <- T, t.x > 4 } yield count t");
        let opts = JitOptions {
            threads: 4,
            morsel_rows: 1,
            clamp_threads: false,
            ..Default::default()
        };
        let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v, Value::Int(2));
        assert!(stats.fallback_tuples >= 1);
    }

    #[test]
    fn serial_path_reports_one_thread() {
        let plan = plan_of("for { p <- Patients } yield sum p.age");
        let (_, stats) = run_jit_with_stats(&plan, &catalog(), &JitOptions::default()).unwrap();
        assert_eq!(stats.threads, 1);
        let (_, stats) =
            run_jit_with_stats(&plan, &catalog(), &JitOptions::with_threads(0)).unwrap();
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn threads_auto_clamp_to_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Default options clamp an absurd worker count to the machine.
        let opts = JitOptions::with_threads(4096);
        assert_eq!(opts.effective_threads(), 4096.min(cores));
        // Opting out restores the requested count (scheduling benchmarks).
        let forced = JitOptions {
            threads: 4096,
            clamp_threads: false,
            ..Default::default()
        };
        assert_eq!(forced.effective_threads(), 4096);
        // 0 still normalizes to the serial path either way.
        assert_eq!(JitOptions::default().effective_threads(), 1);
    }

    #[test]
    fn cost_model_reshapes_wide_text_column_to_positions() {
        use vida_formats::csv::CsvFile;
        use vida_formats::plugin::CsvPlugin;
        use vida_optimizer::CostModel;

        // A CSV with a wide text column next to a scalar: under byte
        // pressure the model should re-shape the text column to a
        // positions-only replica while the scalar stays parsed values.
        let mut csv = String::from("id,body\n");
        for i in 0..64 {
            csv.push_str(&format!("{i},{}\n", "x".repeat(160)));
        }
        let file = CsvFile::from_bytes(
            "Notes",
            csv.into_bytes(),
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("body", Type::Str)]),
        )
        .unwrap();
        let cat = MemoryCatalog::new();
        cat.register(Arc::new(CsvPlugin::new(file)));

        // Budget a whisker above the parsed-values footprint of both
        // columns, so pressure is near 1.0 once the first run caches them.
        let budget = 16 << 10;
        let cache = Arc::new(CacheManager::new(budget));
        let model = Arc::new(CostModel::new());
        let opts = JitOptions::with_cost_model(Arc::clone(&cache), Arc::clone(&model));
        let plan = plan_of("for { n <- Notes, n.id >= 0 } yield count n.body");

        let (v1, s1) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v1, Value::Int(64));
        assert!(s1.replicas_written > 0, "{s1:?}");
        let (v2, s2) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v2, v1);
        assert!(s2.served_from_cache, "{s2:?}");
        // After two runs the cache holds the wide column positions-only —
        // its parsed-values replica would fill ~80% of the budget — while
        // the scalar column stays parsed values.
        assert!(
            cache.contains(&CacheKey::new("Notes", "body", Layout::Positions)),
            "layouts: {:?}, stats: {s2:?}",
            cache.layout_counts()
        );
        assert!(!cache.contains(&CacheKey::new("Notes", "body", Layout::Values)));
        assert!(cache.contains(&CacheKey::new("Notes", "id", Layout::Values)));
        // get_any in model order serves the positions replica.
        let model_pref = model.read_preference("Notes", "body", 0.0);
        let (layout, _) = cache.get_any("Notes", "body", &model_pref).unwrap();
        assert_eq!(layout, Layout::Positions);
        // A third run rehydrates through the positions replica and still
        // counts as fully cache-served.
        let (v3, s3) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v3, v1);
        assert!(s3.served_from_cache, "{s3:?}");
    }

    #[test]
    fn cost_model_retires_legacy_values_replicas() {
        use vida_formats::csv::CsvFile;
        use vida_formats::plugin::CsvPlugin;
        use vida_optimizer::CostModel;

        let mut csv = String::from("id,body\n");
        for i in 0..64 {
            csv.push_str(&format!("{i},{}\n", "y".repeat(160)));
        }
        let file = CsvFile::from_bytes(
            "Notes",
            csv.into_bytes(),
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("body", Type::Str)]),
        )
        .unwrap();
        let plugin = Arc::new(CsvPlugin::new(file));
        let cat = MemoryCatalog::new();
        cat.register(Arc::clone(&plugin) as Arc<dyn vida_formats::InputPlugin>);

        let cache = Arc::new(CacheManager::new(16 << 10));
        let plan = plan_of("for { n <- Notes, n.id >= 0 } yield count n.body");
        // A model-less run leaves the legacy eager parsed-values replicas;
        // additionally plant a stray binary-JSON replica of the same field
        // (as if the model had chosen differently in the past).
        let legacy = JitOptions::with_cache(Arc::clone(&cache));
        run_jit(&plan, &cat, &legacy).unwrap();
        assert!(cache.contains(&CacheKey::new("Notes", "body", Layout::Values)));
        cache.put(
            CacheKey::new("Notes", "body", Layout::BinaryJson),
            CachedData::from_values(&[Value::str("stale")], Layout::BinaryJson).unwrap(),
            vida_formats::InputPlugin::fingerprint(plugin.as_ref()),
        );

        // The first model-driven run re-shapes the wide column to positions
        // and retires every superseded replica, not just the values one.
        let opts = JitOptions::with_cost_model(Arc::clone(&cache), Arc::new(CostModel::new()));
        let (_, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert!(stats.replicas_dropped >= 2, "{stats:?}");
        assert!(cache.contains(&CacheKey::new("Notes", "body", Layout::Positions)));
        assert!(!cache.contains(&CacheKey::new("Notes", "body", Layout::Values)));
        assert!(!cache.contains(&CacheKey::new("Notes", "body", Layout::BinaryJson)));
    }

    #[test]
    fn optional_json_field_falls_back_when_positions_infeasible() {
        use vida_formats::json::JsonFile;
        use vida_formats::plugin::JsonPlugin;
        use vida_optimizer::CostModel;

        // A wide optional field: row 40 omits it, so a positions replica
        // (the model's pick under pressure) cannot represent the column.
        // The engine must fall back to another layout instead of leaving
        // the field permanently uncached.
        let mut json = String::new();
        for i in 0..64 {
            if i == 40 {
                json.push_str(&format!("{{\"id\":{i}}}\n"));
            } else {
                json.push_str(&format!(
                    "{{\"id\":{i},\"body\":\"{}\"}}\n",
                    "z".repeat(150)
                ));
            }
        }
        let file = JsonFile::from_bytes(
            "Docs",
            json.into_bytes(),
            Schema::from_pairs([("id", Type::Int), ("body", Type::Str)]),
        )
        .unwrap();
        let cat = MemoryCatalog::new();
        cat.register(Arc::new(JsonPlugin::new(file)));

        let cache = Arc::new(CacheManager::new(16 << 10));
        let model = Arc::new(CostModel::new());
        let opts = JitOptions::with_cost_model(Arc::clone(&cache), Arc::clone(&model));
        let plan = plan_of("for { d <- Docs, d.id >= 0 } yield count d.body");
        let (v1, _) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v1, Value::Int(64));
        // Some replica of body exists despite the positions failure…
        assert!(
            cache.cached_fields("Docs").contains(&"body".to_string()),
            "body left uncached: {:?}",
            cache.layout_counts()
        );
        assert!(!cache.contains(&CacheKey::new("Docs", "body", Layout::Positions)));
        // …the model remembers the infeasibility, and warm runs are served.
        assert!(!model.profile("Docs", "body").unwrap().has_spans);
        let (v2, s2) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v2, v1);
        assert!(s2.served_from_cache, "{s2:?}");
    }

    #[test]
    fn cost_model_default_keeps_scalar_columns_as_values() {
        use vida_optimizer::CostModel;
        let cache = Arc::new(CacheManager::new(1 << 20));
        let model = Arc::new(CostModel::new());
        let opts = JitOptions::with_cost_model(Arc::clone(&cache), Arc::clone(&model));
        let cat = catalog();
        let plan = plan_of("for { p <- Patients, p.age > 60 } yield sum p.age");
        for _ in 0..3 {
            assert_eq!(run_jit(&plan, &cat, &opts).unwrap(), Value::Int(136));
        }
        // Roomy budget, hot scalar field: parsed values stay the layout.
        assert!(cache.contains(&CacheKey::new("Patients", "age", Layout::Values)));
        let p = model.profile("Patients", "age").unwrap();
        assert_eq!(p.touches, 3);
    }

    #[test]
    fn warm_cache_decode_is_morselized() {
        use vida_optimizer::CostModel;
        let cache = Arc::new(CacheManager::new(1 << 20));
        let model = Arc::new(CostModel::new());
        let opts = JitOptions {
            cache: Some(Arc::clone(&cache)),
            cost_model: Some(model),
            threads: 2,
            morsel_rows: 1,
            clamp_threads: false,
            ..Default::default()
        };
        let cat = catalog();
        let plan = plan_of("for { p <- Patients } yield sum p.age");
        let (v1, _) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        let (v2, s2) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v1, v2);
        assert!(s2.served_from_cache, "{s2:?}");
        // The warm run decoded the replica morsel-wise (3 rows, 1-row
        // morsels) in addition to the execution-phase morsels.
        assert!(s2.morsels >= 3, "{s2:?}");
    }

    #[test]
    fn streaming_pipeline_pays_zero_operator_materializations() {
        // The push loop must fuse every covered shape end to end: scans,
        // joins (build sides are breakers, not operator buffers), unnests,
        // selects, every monoid.
        let cat = catalog();
        let nested = nested_catalog();
        let cases: Vec<(&MemoryCatalog, &str, u32)> = vec![
            // (catalog, query, expected fused depth incl. the fold)
            (&cat, "for { p <- Patients, p.age > 60 } yield sum p.age", 2),
            (
                &cat,
                "for { p <- Patients, g <- Genetics, p.id = g.id } yield list g.snp",
                3,
            ),
            (
                &cat,
                "for { p <- Patients, g <- Genetics, p.id < g.id } yield count p",
                3,
            ),
            (
                &nested,
                "for { r <- Regions, v <- r.voxels, v > 10 } yield sum v",
                3,
            ),
        ];
        for (cat, q, depth) in cases {
            let plan = plan_of(q);
            for threads in [1usize, 2, 8] {
                let opts = JitOptions {
                    threads,
                    morsel_rows: 1,
                    clamp_threads: false,
                    ..Default::default()
                };
                let (_, stats) = run_jit_with_stats(&plan, cat, &opts).unwrap();
                assert_eq!(
                    stats.operator_materializations, 0,
                    "{q} at {threads} threads: {stats:?}"
                );
                assert_eq!(stats.fused_stage_depth, depth, "{q}: {stats:?}");
            }
        }
    }

    #[test]
    fn materializing_ablation_agrees_and_counts_buffers() {
        // materialize_stages runs the legacy pull executor: identical
        // results, but one inter-operator Vec<Tuple> per stage.
        let cat = catalog();
        let queries = [
            ("for { p <- Patients, p.age > 60 } yield sum p.age", 1),
            (
                "for { p <- Patients, g <- Genetics, p.id = g.id } yield list g.snp",
                2,
            ),
            (
                "for { p <- Patients, g <- Genetics, p.id >= g.id } yield count p",
                2,
            ),
        ];
        for (q, buffers) in queries {
            let plan = plan_of(q);
            let streaming = run_jit(&plan, &cat, &JitOptions::default()).unwrap();
            let opts = JitOptions {
                materialize_stages: true,
                ..Default::default()
            };
            let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
            assert_eq!(v, streaming, "ablation deviates for {q}");
            assert_eq!(stats.operator_materializations, buffers, "{q}: {stats:?}");
            assert_eq!(stats.fused_stage_depth, 0, "{q}: {stats:?}");
        }
        // The nested shapes agree too.
        let cat = nested_catalog();
        let plan = plan_of("for { r <- Regions, v <- r.voxels } yield list v");
        let streaming = run_jit(&plan, &cat, &JitOptions::default()).unwrap();
        let opts = JitOptions {
            materialize_stages: true,
            ..Default::default()
        };
        let (v, stats) = run_jit_with_stats(&plan, &cat, &opts).unwrap();
        assert_eq!(v, streaming);
        assert_eq!(stats.operator_materializations, 2, "{stats:?}");
    }

    #[test]
    fn fused_selects_compile_into_one_stage() {
        // Two compiled selects on one scan fuse into a SelectKernel; the
        // result is unchanged and no per-tuple interpretation happens.
        let plan = plan_of("for { p <- Patients, p.age > 40, p.age < 70 } yield count p");
        let (v, stats) = run_jit_with_stats(&plan, &catalog(), &JitOptions::default()).unwrap();
        assert_eq!(v, Value::Int(1)); // only age 65 is in (40, 70)
        assert_eq!(stats.fallback_tuples, 0, "{stats:?}");
        assert_eq!(stats.operator_materializations, 0, "{stats:?}");
    }

    #[test]
    fn unknown_dataset_is_catalog_error() {
        let plan = plan_of("for { x <- Missing } yield sum x.a");
        assert_eq!(
            run_jit(&plan, &catalog(), &JitOptions::default())
                .unwrap_err()
                .kind(),
            "catalog"
        );
    }
}
