//! Output plugins (ViDa Figure 3 / Figure 4).
//!
//! "Query output is given to output plugins, which materialize it in the
//! format an application expects." A query result — one [`Value`], typically
//! a collection of records — can leave the engine as:
//!
//! - **parsed values** ([`OutputFormat::Values`]): the in-memory `Value`
//!   rows, for callers staying inside the engine;
//! - **text** ([`OutputFormat::Text`]): one printed row per line, the
//!   paper's "CSV or JSON output" for interactive use;
//! - **binary JSON** ([`OutputFormat::BinaryJson`]): the compact
//!   serialization of `vida-cache::bson`, Figure 4's layout (b), for
//!   applications that re-read results repeatedly;
//! - **CSV rows** ([`OutputFormat::Csv`]): RFC-4180-style quoted rows for
//!   flat record collections.

use vida_cache::bson;
use vida_types::{Result, Value, VidaError};

/// The materialization formats an application can request for a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputFormat {
    Values,
    Text,
    BinaryJson,
    Csv,
}

impl OutputFormat {
    /// Materialize `result` in this format as bytes (the uniform plugin
    /// interface; use the typed helpers below to avoid re-parsing).
    pub fn write(&self, result: &Value) -> Result<Vec<u8>> {
        match self {
            OutputFormat::Values => Ok(bson::to_bytes(result)),
            OutputFormat::Text => Ok(to_text(result).into_bytes()),
            OutputFormat::BinaryJson => Ok(to_binary_json(result)),
            OutputFormat::Csv => to_csv(result).map(String::into_bytes),
        }
    }
}

/// The result as a row list: collections yield their elements, a scalar
/// result yields a single row.
pub fn to_values(result: &Value) -> Vec<Value> {
    match result.elements() {
        Some(items) => items.to_vec(),
        None => vec![result.clone()],
    }
}

/// One printed row per line (scalar results print as one line).
pub fn to_text(result: &Value) -> String {
    let mut out = String::new();
    for row in to_values(result) {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

/// The whole result in the binary-JSON layout of Figure 4 (b).
pub fn to_binary_json(result: &Value) -> Vec<u8> {
    bson::to_bytes(result)
}

/// CSV rows with a header line. Requires every row to be a record of
/// scalars sharing the first row's field set; scalar results become a
/// single `value` column.
pub fn to_csv(result: &Value) -> Result<String> {
    let rows = to_values(result);
    let mut out = String::new();
    let Some(first) = rows.first() else {
        return Ok(out);
    };
    let header: Vec<String> = match first {
        Value::Record(fields) => fields.iter().map(|(n, _)| n.clone()).collect(),
        _ => vec!["value".to_string()],
    };
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &rows {
        let cells: Vec<String> = match row {
            Value::Record(fields) => {
                if fields.len() != header.len()
                    || fields.iter().zip(&header).any(|((n, _), h)| n != h)
                {
                    return Err(VidaError::Exec(format!(
                        "csv output requires uniform record rows, got {row}"
                    )));
                }
                fields
                    .iter()
                    .map(|(_, v)| csv_cell(v))
                    .collect::<Result<_>>()?
            }
            v if header.len() == 1 && header[0] == "value" => vec![csv_cell(v)?],
            v => {
                return Err(VidaError::Exec(format!(
                    "csv output requires uniform record rows, got {v}"
                )))
            }
        };
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    Ok(out)
}

fn csv_cell(v: &Value) -> Result<String> {
    let raw = match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => s.clone(),
        other => {
            return Err(VidaError::Exec(format!(
                "csv output cannot encode nested value {other}"
            )))
        }
    };
    if raw.contains([',', '"', '\n', '\r']) {
        Ok(format!("\"{}\"", raw.replace('"', "\"\"")))
    } else {
        Ok(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_rows() -> Value {
        Value::bag(vec![
            Value::record([("id", Value::Int(1)), ("city", Value::str("geneva"))]),
            Value::record([("id", Value::Int(2)), ("city", Value::str("a,\"b\""))]),
        ])
    }

    #[test]
    fn values_output_lists_rows() {
        assert_eq!(to_values(&result_rows()).len(), 2);
        assert_eq!(to_values(&Value::Int(7)), vec![Value::Int(7)]);
    }

    #[test]
    fn text_output_one_row_per_line() {
        let t = to_text(&result_rows());
        assert_eq!(t.lines().count(), 2);
        assert!(t.starts_with("(id := 1, city := \"geneva\")\n"));
        assert_eq!(to_text(&Value::Int(7)), "7\n");
    }

    #[test]
    fn binary_json_round_trips() {
        let r = result_rows();
        let bytes = to_binary_json(&r);
        let (back, _) = bson::decode_value(&bytes, 0).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn csv_output_quotes_and_headers() {
        let csv = to_csv(&result_rows()).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("id,city"));
        assert_eq!(lines.next(), Some("1,geneva"));
        assert_eq!(lines.next(), Some("2,\"a,\"\"b\"\"\""));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_scalar_result_uses_value_column() {
        assert_eq!(to_csv(&Value::Int(42)).unwrap(), "value\n42\n");
        assert_eq!(to_csv(&Value::bag(vec![])).unwrap(), "");
    }

    #[test]
    fn csv_rejects_ragged_or_nested_rows() {
        let ragged = Value::bag(vec![
            Value::record([("a", Value::Int(1))]),
            Value::record([("b", Value::Int(2))]),
        ]);
        assert!(to_csv(&ragged).is_err());
        let nested = Value::bag(vec![Value::record([(
            "xs",
            Value::list(vec![Value::Int(1)]),
        )])]);
        assert!(to_csv(&nested).is_err());
    }

    #[test]
    fn format_write_dispatches() {
        let r = result_rows();
        assert_eq!(
            OutputFormat::BinaryJson.write(&r).unwrap(),
            to_binary_json(&r)
        );
        assert_eq!(
            OutputFormat::Text.write(&r).unwrap(),
            to_text(&r).into_bytes()
        );
        assert!(OutputFormat::Csv.write(&Value::Int(1)).is_ok());
        assert!(!OutputFormat::Values.write(&r).unwrap().is_empty());
    }
}
