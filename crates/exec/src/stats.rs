//! Per-query execution statistics.
//!
//! These counters back the paper's headline measurements: the share of the
//! workload served from caches (§6: ~80%), code-generation time (the paper
//! notes LLVM keeps compilation "almost insignificant"; we report the
//! Cranelift equivalent), and interpreted-fallback coverage.

use std::time::Duration;

/// Statistics for one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Time spent generating the pipeline (analysis + Cranelift).
    pub codegen: Duration,
    /// Time spent executing the generated pipeline.
    pub execution: Duration,
    /// Number of Cranelift kernels compiled for this query.
    pub kernels_compiled: u32,
    /// Tuples produced by scans (before filtering).
    pub tuples_scanned: u64,
    /// Tuples that had to take the interpreted fallback path (nulls,
    /// non-compilable expressions).
    pub fallback_tuples: u64,
    /// Columns served from the cache without touching raw files.
    pub cached_columns: u32,
    /// Columns read from raw files (and inserted into the cache).
    pub raw_columns: u32,
    /// True when every scanned column came from caches — the unit of the
    /// paper's "80% of the workload was served using its data caches".
    pub served_from_cache: bool,
    /// Worker threads used by the morsel-driven engine (1 = serial path).
    pub threads: u32,
    /// Morsels dispatched across all parallel phases of the query.
    pub morsels: u64,
    /// Cache replicas written by the cost model's post-query sync (layout
    /// chosen by `CostModel::choose_layout`).
    pub replicas_written: u32,
    /// Superseded `Values` replicas dropped after re-shaping a field to a
    /// more compact layout.
    pub replicas_dropped: u32,
    /// Unnest stages executed through a generated pipeline (one per
    /// `Plan::Unnest` operator the builder compiled).
    pub unnest_pipelines: u32,
    /// Theta-join stages (band sort-probe or block-nested-loop) executed
    /// through a generated pipeline.
    pub theta_pipelines: u32,
    /// Bushy-join rotations the `left_deepen` pass applied while lowering
    /// this query's plan into a left-deep pipeline chain.
    pub bushy_lowered: u32,
    /// 1 when the whole query fell back to the interpreted Volcano engine
    /// (plan shape outside the generated pipelines — unit-dataset constant
    /// queries and the like); summed across queries by [`ExecStats::accumulate`].
    pub whole_query_fallbacks: u32,
    /// Inter-operator `Vec<Tuple>` buffers paid for during execution. The
    /// streaming push engine fuses scan→select→unnest→probe→fold chains
    /// end to end, so this is **0** on every pipeline-covered shape; only
    /// the legacy materializing executor (`JitOptions::materialize_stages`,
    /// the ablation baseline) pays one per operator stage. Join build sides
    /// and band indexes are pipeline *breakers* — materialized per morsel
    /// side by design (HyPer-style data-centric compilation) — and are not
    /// counted here.
    pub operator_materializations: u64,
    /// Operator stages fused into one streaming push loop for this query
    /// (scan = 1, +1 per unnest stage and join probe, +1 for the fold).
    /// 0 when the query fell back wholesale or ran the legacy materializing
    /// path. [`ExecStats::accumulate`] keeps the maximum across queries.
    pub fused_stage_depth: u32,
}

impl ExecStats {
    /// Total wall time attributed to the query.
    pub fn total(&self) -> Duration {
        self.codegen + self.execution
    }

    /// Merge counters from another query (for workload-level reporting).
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.codegen += other.codegen;
        self.execution += other.execution;
        self.kernels_compiled += other.kernels_compiled;
        self.tuples_scanned += other.tuples_scanned;
        self.fallback_tuples += other.fallback_tuples;
        self.cached_columns += other.cached_columns;
        self.raw_columns += other.raw_columns;
        self.threads = self.threads.max(other.threads);
        self.morsels += other.morsels;
        self.replicas_written += other.replicas_written;
        self.replicas_dropped += other.replicas_dropped;
        self.unnest_pipelines += other.unnest_pipelines;
        self.theta_pipelines += other.theta_pipelines;
        self.bushy_lowered += other.bushy_lowered;
        self.whole_query_fallbacks += other.whole_query_fallbacks;
        self.operator_materializations += other.operator_materializations;
        self.fused_stage_depth = self.fused_stage_depth.max(other.fused_stage_depth);
    }

    /// Merge counters from one worker of a parallel phase (wall times are
    /// measured by the coordinator, not summed across workers).
    pub(crate) fn absorb_worker(&mut self, other: &ExecStats) {
        self.kernels_compiled += other.kernels_compiled;
        self.tuples_scanned += other.tuples_scanned;
        self.fallback_tuples += other.fallback_tuples;
        self.cached_columns += other.cached_columns;
        self.raw_columns += other.raw_columns;
        self.morsels += other.morsels;
        self.operator_materializations += other.operator_materializations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = ExecStats {
            codegen: Duration::from_micros(100),
            execution: Duration::from_micros(900),
            kernels_compiled: 2,
            tuples_scanned: 10,
            fallback_tuples: 1,
            cached_columns: 3,
            raw_columns: 1,
            served_from_cache: false,
            threads: 4,
            morsels: 8,
            replicas_written: 2,
            replicas_dropped: 1,
            unnest_pipelines: 1,
            theta_pipelines: 2,
            bushy_lowered: 1,
            whole_query_fallbacks: 1,
            operator_materializations: 3,
            fused_stage_depth: 4,
        };
        assert_eq!(a.total(), Duration::from_micros(1000));
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.kernels_compiled, 4);
        assert_eq!(a.tuples_scanned, 20);
        assert_eq!(a.cached_columns, 6);
        assert_eq!(a.threads, 4); // max, not sum
        assert_eq!(a.morsels, 16);
        assert_eq!(a.unnest_pipelines, 2);
        assert_eq!(a.theta_pipelines, 4);
        assert_eq!(a.bushy_lowered, 2);
        assert_eq!(a.whole_query_fallbacks, 2);
        assert_eq!(a.operator_materializations, 6);
        assert_eq!(a.fused_stage_depth, 4); // max, not sum
    }
}
