//! Per-query execution statistics.
//!
//! These counters back the paper's headline measurements: the share of the
//! workload served from caches (§6: ~80%), code-generation time (the paper
//! notes LLVM keeps compilation "almost insignificant"; we report the
//! Cranelift equivalent), and interpreted-fallback coverage.
//!
//! When `JitOptions::trace` is set, the stats struct also carries the
//! query's [`QueryTrace`] span buffer; the `span_*`/`kernel_*` hooks below
//! are the engine's only tracing entry points and compile to a single
//! `Option` check when tracing is off.

use std::time::{Duration, Instant};
use vida_trace::QueryTrace;

/// Statistics for one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Time spent generating the pipeline (analysis + Cranelift).
    pub codegen: Duration,
    /// Time spent executing the generated pipeline.
    pub execution: Duration,
    /// Number of Cranelift kernels compiled for this query.
    pub kernels_compiled: u32,
    /// Tuples produced by scans (before filtering).
    pub tuples_scanned: u64,
    /// Tuples that had to take the interpreted fallback path (nulls,
    /// non-compilable expressions).
    pub fallback_tuples: u64,
    /// Columns served from the cache without touching raw files.
    pub cached_columns: u32,
    /// Columns read from raw files (and inserted into the cache).
    pub raw_columns: u32,
    /// True when every scanned column came from caches — the unit of the
    /// paper's "80% of the workload was served using its data caches".
    /// Under [`ExecStats::accumulate`] this is the AND over all queries;
    /// the per-query tally lives in `queries_served_from_cache`.
    pub served_from_cache: bool,
    /// Queries merged into this struct (1 after a single
    /// `run_jit_with_stats`; summed by [`ExecStats::accumulate`]).
    pub queries: u32,
    /// Of those, queries whose every scanned column came from caches — the
    /// numerator of the paper's §6 cache-served share.
    pub queries_served_from_cache: u32,
    /// Worker threads used by the morsel-driven engine (1 = serial path).
    pub threads: u32,
    /// Morsels dispatched across all parallel phases of the query.
    pub morsels: u64,
    /// Cache replicas written by the cost model's post-query sync (layout
    /// chosen by `CostModel::choose_layout`).
    pub replicas_written: u32,
    /// Superseded `Values` replicas dropped after re-shaping a field to a
    /// more compact layout.
    pub replicas_dropped: u32,
    /// Unnest stages executed through a generated pipeline (one per
    /// `Plan::Unnest` operator the builder compiled).
    pub unnest_pipelines: u32,
    /// Theta-join stages (band sort-probe or block-nested-loop) executed
    /// through a generated pipeline.
    pub theta_pipelines: u32,
    /// Bushy-join rotations the `left_deepen` pass applied while lowering
    /// this query's plan into a left-deep pipeline chain.
    pub bushy_lowered: u32,
    /// 1 when the whole query fell back to the interpreted Volcano engine
    /// (plan shape outside the generated pipelines — unit-dataset constant
    /// queries and the like); summed across queries by [`ExecStats::accumulate`].
    pub whole_query_fallbacks: u32,
    /// Inter-operator `Vec<Tuple>` buffers paid for during execution. The
    /// streaming push engine fuses scan→select→unnest→probe→fold chains
    /// end to end, so this is **0** on every pipeline-covered shape; only
    /// the legacy materializing executor (`JitOptions::materialize_stages`,
    /// the ablation baseline) pays one per operator stage. Join build sides
    /// and band indexes are pipeline *breakers* — materialized per morsel
    /// side by design (HyPer-style data-centric compilation) — and are not
    /// counted here.
    pub operator_materializations: u64,
    /// Operator stages fused into one streaming push loop for this query
    /// (scan = 1, +1 per unnest stage and join probe, +1 for the fold).
    /// 0 when the query fell back wholesale or ran the legacy materializing
    /// path. [`ExecStats::accumulate`] keeps the maximum across queries.
    pub fused_stage_depth: u32,
    /// Scan leaves the cost-based plan optimizer moved away from their
    /// syntactic position (join reordering / build-side swaps). 0 when the
    /// original order was already optimal, reordering was ineligible, or
    /// `JitOptions::plan_opt` is off.
    pub joins_reordered: u32,
    /// Fused select-kernel conjuncts moved away from syntactic order by
    /// selectivity-based ranking.
    pub conjuncts_reordered: u32,
    /// The optimizer's estimated output cardinality for reorder-eligible
    /// plans (rows entering the reduce), summed across queries. 0 when no
    /// estimate was made.
    pub estimated_rows: u64,
    /// `actual_rows` restricted to queries that had an estimate — the
    /// denominator that pairs with `estimated_rows` so
    /// [`ExecStats::cardinality_error`] stays meaningful when estimated and
    /// unestimated queries are accumulated together.
    pub estimated_rows_actual: u64,
    /// Tuples that actually entered the reduce (pipeline output before the
    /// fold), across all queries.
    pub actual_rows: u64,
    /// Rows parsed from the appended tail of a grown file instead of a full
    /// re-scan (revalidation proved the old content is a prefix of the new
    /// file, so cached replicas served the prefix and only these rows
    /// touched raw bytes). 0 when every source was unchanged or fully
    /// re-scanned.
    pub tail_rows_scanned: u64,
    /// Cached aggregate prefix partials merged in front of a tail-only fold
    /// (at most one per query): the warm half of O(delta) re-query.
    pub partials_reused: u64,
    /// The query's span buffer when `JitOptions::trace` was set; `None`
    /// otherwise. Per-query — [`ExecStats::accumulate`] does not merge
    /// traces (export each query's trace before accumulating).
    pub trace: Option<Box<QueryTrace>>,
}

impl ExecStats {
    /// Total wall time attributed to the query.
    pub fn total(&self) -> Duration {
        self.codegen + self.execution
    }

    /// Merge counters from another query (for workload-level reporting).
    pub fn accumulate(&mut self, other: &ExecStats) {
        // Hand-built single-query stats may leave `queries` at 0; treat
        // them as one query so the cache-served share stays well-defined.
        let other_queries = other.queries.max(1);
        let other_served = if other.queries == 0 {
            other.served_from_cache as u32
        } else {
            other.queries_served_from_cache
        };
        self.served_from_cache = if self.queries == 0 {
            other.served_from_cache
        } else {
            self.served_from_cache && other.served_from_cache
        };
        self.queries += other_queries;
        self.queries_served_from_cache += other_served;
        self.codegen += other.codegen;
        self.execution += other.execution;
        self.kernels_compiled += other.kernels_compiled;
        self.tuples_scanned += other.tuples_scanned;
        self.fallback_tuples += other.fallback_tuples;
        self.cached_columns += other.cached_columns;
        self.raw_columns += other.raw_columns;
        self.threads = self.threads.max(other.threads);
        self.morsels += other.morsels;
        self.replicas_written += other.replicas_written;
        self.replicas_dropped += other.replicas_dropped;
        self.unnest_pipelines += other.unnest_pipelines;
        self.theta_pipelines += other.theta_pipelines;
        self.bushy_lowered += other.bushy_lowered;
        self.whole_query_fallbacks += other.whole_query_fallbacks;
        self.operator_materializations += other.operator_materializations;
        self.fused_stage_depth = self.fused_stage_depth.max(other.fused_stage_depth);
        self.joins_reordered += other.joins_reordered;
        self.conjuncts_reordered += other.conjuncts_reordered;
        self.estimated_rows += other.estimated_rows;
        self.estimated_rows_actual += other.estimated_rows_actual;
        self.actual_rows += other.actual_rows;
        self.tail_rows_scanned += other.tail_rows_scanned;
        self.partials_reused += other.partials_reused;
    }

    /// Relative error of the optimizer's cardinality estimates:
    /// `|estimated - actual| / actual` over the queries that had an
    /// estimate. 0.0 when nothing was estimated.
    pub fn cardinality_error(&self) -> f64 {
        if self.estimated_rows == 0 {
            return 0.0;
        }
        let est = self.estimated_rows as f64;
        let act = self.estimated_rows_actual as f64;
        (est - act).abs() / act.max(1.0)
    }

    /// Merge counters from one worker of a parallel phase (wall times are
    /// measured by the coordinator, not summed across workers). Takes the
    /// worker stats by value so the worker's span buffer can be absorbed
    /// into the coordinator's trace without cloning.
    pub(crate) fn absorb_worker(&mut self, other: ExecStats) {
        self.kernels_compiled += other.kernels_compiled;
        self.tuples_scanned += other.tuples_scanned;
        self.fallback_tuples += other.fallback_tuples;
        self.cached_columns += other.cached_columns;
        self.raw_columns += other.raw_columns;
        self.morsels += other.morsels;
        self.operator_materializations += other.operator_materializations;
        self.actual_rows += other.actual_rows;
        if let (Some(mine), Some(theirs)) = (self.trace.as_deref_mut(), other.trace) {
            mine.absorb(*theirs);
        }
    }

    /// The query's trace, when tracing was enabled.
    pub fn query_trace(&self) -> Option<&QueryTrace> {
        self.trace.as_deref()
    }

    /// The trace's shared time origin — hand it to worker-track buffers.
    #[inline]
    pub(crate) fn trace_epoch(&self) -> Option<Instant> {
        self.trace.as_deref().map(QueryTrace::epoch)
    }

    /// Open a span on this stats' track (no-op when tracing is off).
    #[inline]
    pub(crate) fn span_begin(&mut self, stage: &'static str) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.begin(stage);
        }
    }

    /// Close the innermost open span.
    #[inline]
    pub(crate) fn span_end(&mut self) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.end();
        }
    }

    /// Close the innermost open span, attributing tuples and morsels.
    #[inline]
    pub(crate) fn span_end_counted(&mut self, tuples: u64, morsels: u64) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.end_counted(tuples, morsels);
        }
    }

    /// Record one invocation of a compiled kernel (no-op when tracing is
    /// off or the kernel was never tagged with an id).
    #[inline]
    pub(crate) fn kernel_hit(&mut self, id: u32) {
        self.kernel_hits(id, 1);
    }

    /// Record `n` invocations of a compiled kernel.
    #[inline]
    pub(crate) fn kernel_hits(&mut self, id: u32, n: u64) {
        if let Some(t) = self.trace.as_deref_mut() {
            // u32::MAX = CompiledKernel::UNASSIGNED (kernels outside the
            // pipeline builder's dense numbering).
            if id != u32::MAX {
                t.kernel_hits(id, n);
            }
        }
    }

    /// Serialize every counter as a JSON object (hand-rolled — the
    /// workspace has no serde; parseable by the repo's own JSON reader).
    /// Durations are reported in nanoseconds. The trace buffer is not
    /// included — export it via the Chrome-trace path instead.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"codegen_ns\":{},", self.codegen.as_nanos()));
        out.push_str(&format!("\"execution_ns\":{},", self.execution.as_nanos()));
        out.push_str(&format!("\"kernels_compiled\":{},", self.kernels_compiled));
        out.push_str(&format!("\"tuples_scanned\":{},", self.tuples_scanned));
        out.push_str(&format!("\"fallback_tuples\":{},", self.fallback_tuples));
        out.push_str(&format!("\"cached_columns\":{},", self.cached_columns));
        out.push_str(&format!("\"raw_columns\":{},", self.raw_columns));
        out.push_str(&format!(
            "\"served_from_cache\":{},",
            self.served_from_cache
        ));
        out.push_str(&format!("\"queries\":{},", self.queries));
        out.push_str(&format!(
            "\"queries_served_from_cache\":{},",
            self.queries_served_from_cache
        ));
        out.push_str(&format!("\"threads\":{},", self.threads));
        out.push_str(&format!("\"morsels\":{},", self.morsels));
        out.push_str(&format!("\"replicas_written\":{},", self.replicas_written));
        out.push_str(&format!("\"replicas_dropped\":{},", self.replicas_dropped));
        out.push_str(&format!("\"unnest_pipelines\":{},", self.unnest_pipelines));
        out.push_str(&format!("\"theta_pipelines\":{},", self.theta_pipelines));
        out.push_str(&format!("\"bushy_lowered\":{},", self.bushy_lowered));
        out.push_str(&format!(
            "\"whole_query_fallbacks\":{},",
            self.whole_query_fallbacks
        ));
        out.push_str(&format!(
            "\"operator_materializations\":{},",
            self.operator_materializations
        ));
        out.push_str(&format!(
            "\"fused_stage_depth\":{},",
            self.fused_stage_depth
        ));
        out.push_str(&format!("\"joins_reordered\":{},", self.joins_reordered));
        out.push_str(&format!(
            "\"conjuncts_reordered\":{},",
            self.conjuncts_reordered
        ));
        out.push_str(&format!("\"estimated_rows\":{},", self.estimated_rows));
        out.push_str(&format!("\"actual_rows\":{},", self.actual_rows));
        out.push_str(&format!(
            "\"tail_rows_scanned\":{},",
            self.tail_rows_scanned
        ));
        out.push_str(&format!("\"partials_reused\":{},", self.partials_reused));
        out.push_str(&format!(
            "\"cardinality_error\":{:.4}",
            self.cardinality_error()
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = ExecStats {
            codegen: Duration::from_micros(100),
            execution: Duration::from_micros(900),
            kernels_compiled: 2,
            tuples_scanned: 10,
            fallback_tuples: 1,
            cached_columns: 3,
            raw_columns: 1,
            served_from_cache: false,
            queries: 1,
            queries_served_from_cache: 0,
            threads: 4,
            morsels: 8,
            replicas_written: 2,
            replicas_dropped: 1,
            unnest_pipelines: 1,
            theta_pipelines: 2,
            bushy_lowered: 1,
            whole_query_fallbacks: 1,
            operator_materializations: 3,
            fused_stage_depth: 4,
            joins_reordered: 1,
            conjuncts_reordered: 2,
            estimated_rows: 90,
            estimated_rows_actual: 100,
            actual_rows: 100,
            tail_rows_scanned: 5,
            partials_reused: 1,
            trace: None,
        };
        assert_eq!(a.total(), Duration::from_micros(1000));
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.kernels_compiled, 4);
        assert_eq!(a.tuples_scanned, 20);
        assert_eq!(a.cached_columns, 6);
        assert_eq!(a.threads, 4); // max, not sum
        assert_eq!(a.morsels, 16);
        assert_eq!(a.queries, 2);
        assert_eq!(a.unnest_pipelines, 2);
        assert_eq!(a.theta_pipelines, 4);
        assert_eq!(a.bushy_lowered, 2);
        assert_eq!(a.whole_query_fallbacks, 2);
        assert_eq!(a.operator_materializations, 6);
        assert_eq!(a.fused_stage_depth, 4); // max, not sum
        assert_eq!(a.joins_reordered, 2);
        assert_eq!(a.conjuncts_reordered, 4);
        assert_eq!(a.estimated_rows, 180);
        assert_eq!(a.actual_rows, 200);
        assert_eq!(a.tail_rows_scanned, 10);
        assert_eq!(a.partials_reused, 2);
    }

    #[test]
    fn cardinality_error_pairs_estimates_with_estimated_actuals() {
        // No estimate → no error, whatever actual_rows says.
        let none = ExecStats {
            actual_rows: 500,
            ..ExecStats::default()
        };
        assert_eq!(none.cardinality_error(), 0.0);

        // 90 estimated vs 100 actual → 10% relative error.
        let est = ExecStats {
            estimated_rows: 90,
            estimated_rows_actual: 100,
            actual_rows: 100,
            ..ExecStats::default()
        };
        assert!((est.cardinality_error() - 0.1).abs() < 1e-9);

        // Accumulating an unestimated query must not dilute the error: its
        // actual_rows joins `actual_rows` but not `estimated_rows_actual`.
        let mut accum = est.clone();
        accum.accumulate(&none);
        assert_eq!(accum.actual_rows, 600);
        assert_eq!(accum.estimated_rows_actual, 100);
        assert!((accum.cardinality_error() - 0.1).abs() < 1e-9);
        assert!(accum.to_json().contains("\"cardinality_error\":0.1000"));
    }

    #[test]
    fn accumulate_tracks_cache_served_share() {
        // Regression: `accumulate` used to drop `served_from_cache`
        // entirely — a workload of all-cached queries reported whatever the
        // accumulator was initialized with.
        let cached = ExecStats {
            served_from_cache: true,
            queries: 1,
            queries_served_from_cache: 1,
            ..ExecStats::default()
        };
        let raw = ExecStats {
            served_from_cache: false,
            queries: 1,
            queries_served_from_cache: 0,
            ..ExecStats::default()
        };

        // All-cached workload: the AND stays true, the tally counts all.
        let mut all = ExecStats::default();
        all.accumulate(&cached);
        all.accumulate(&cached);
        assert!(all.served_from_cache);
        assert_eq!(all.queries, 2);
        assert_eq!(all.queries_served_from_cache, 2);

        // Mixed workload: the AND drops to false, the tally keeps the share.
        let mut mixed = ExecStats::default();
        mixed.accumulate(&cached);
        mixed.accumulate(&raw);
        mixed.accumulate(&cached);
        assert!(!mixed.served_from_cache);
        assert_eq!(mixed.queries, 3);
        assert_eq!(mixed.queries_served_from_cache, 2);

        // Accumulating an accumulation keeps the tally (not the AND).
        let mut top = ExecStats::default();
        top.accumulate(&mixed);
        top.accumulate(&cached);
        assert_eq!(top.queries, 4);
        assert_eq!(top.queries_served_from_cache, 3);
    }

    #[test]
    fn accumulate_treats_bare_single_query_stats_as_one_query() {
        // Stats straight out of a single run may leave `queries` at 0 if
        // built by hand; the share math still counts them as one query.
        let bare_cached = ExecStats {
            served_from_cache: true,
            ..ExecStats::default()
        };
        let mut accum = ExecStats::default();
        accum.accumulate(&bare_cached);
        assert!(accum.served_from_cache);
        assert_eq!(accum.queries, 1);
        assert_eq!(accum.queries_served_from_cache, 1);
    }

    #[test]
    fn stats_json_is_balanced_and_complete() {
        let stats = ExecStats {
            tuples_scanned: 42,
            served_from_cache: true,
            ..ExecStats::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"tuples_scanned\":42"));
        assert!(json.contains("\"served_from_cache\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn absorb_worker_merges_trace_buffers() {
        use vida_trace::{stage, QueryTrace};
        let mut coord = ExecStats {
            trace: Some(Box::new(QueryTrace::start())),
            ..ExecStats::default()
        };
        let epoch = coord.trace_epoch().unwrap();
        let mut worker = ExecStats::default();
        let mut wt = QueryTrace::with_epoch(1, epoch);
        wt.begin(stage::SCAN);
        wt.end_counted(7, 1);
        worker.trace = Some(Box::new(wt));
        worker.tuples_scanned = 7;
        coord.absorb_worker(worker);
        let trace = coord.query_trace().unwrap();
        assert_eq!(trace.spans().len(), 1);
        assert_eq!(trace.spans()[0].tuples, 7);
        assert_eq!(coord.tuples_scanned, 7);
    }
}
