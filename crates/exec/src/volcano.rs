//! The interpreted Volcano engine — the "pre-cooked static operators"
//! comparator (§4).
//!
//! Generic operators, tagged values, dynamic dispatch, per-tuple expression
//! interpretation: exactly the interpretation overheads code generation
//! removes. Every operator materializes `Bindings` (a name→value map) per
//! tuple; predicates run through the calculus interpreter.
//!
//! This engine is also a correctness oracle: it shares no code with the JIT
//! pipelines beyond the plugins, so agreement between the two is strong
//! evidence for both.

use crate::catalog::SourceProvider;
use vida_algebra::lower::UNIT_DATASET;
use vida_algebra::Plan;
use vida_lang::{eval, Bindings, Expr};
use vida_types::{Result, Value, VidaError};

/// Execute a plan with the interpreted engine.
pub fn run_volcano(plan: &Plan, catalog: &dyn SourceProvider) -> Result<Value> {
    // Datasets referenced by head/predicate sub-comprehensions need to be
    // available to the interpreter as whole values.
    let env = materialize_referenced_datasets(plan, catalog)?;
    match plan {
        Plan::Reduce {
            input,
            monoid,
            head,
        } => {
            let mut acc = monoid.zero();
            let mut iter = build_operator(input, catalog, &env)?;
            while let Some(row) = iter.next()? {
                let v = eval(head, &row)?;
                acc = monoid.merge(acc, monoid.unit(v))?;
            }
            monoid.finalize(acc)
        }
        _ => Err(VidaError::Plan(
            "volcano executor expects a Reduce-rooted plan".into(),
        )),
    }
}

/// Collect free dataset names referenced in scalar expressions (nested
/// comprehensions in heads/predicates) and materialize them.
fn materialize_referenced_datasets(plan: &Plan, catalog: &dyn SourceProvider) -> Result<Bindings> {
    let mut exprs: Vec<&Expr> = Vec::new();
    collect_exprs(plan, &mut exprs);
    materialize_free_datasets(&exprs, &plan.bound_vars(), catalog)
}

/// Materialize every free variable of `exprs` that is not plan-bound and
/// resolves as a catalog dataset. Shared by both engines so their
/// nested-comprehension semantics cannot drift.
pub(crate) fn materialize_free_datasets(
    exprs: &[&Expr],
    bound: &[String],
    catalog: &dyn SourceProvider,
) -> Result<Bindings> {
    let mut env = Bindings::new();
    for e in exprs {
        for name in e.free_vars() {
            if !bound.contains(&name) && !env.contains_key(&name) {
                if let Ok(v) = catalog
                    .plugin(&name)
                    .and_then(|_| catalog.materialize(&name))
                {
                    env.insert(name, v);
                }
            }
        }
    }
    Ok(env)
}

fn collect_exprs<'a>(plan: &'a Plan, out: &mut Vec<&'a Expr>) {
    match plan {
        Plan::Scan { .. } => {}
        Plan::Select { input, predicate } => {
            out.push(predicate);
            collect_exprs(input, out);
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            out.push(predicate);
            collect_exprs(left, out);
            collect_exprs(right, out);
        }
        Plan::Unnest { input, path, .. } => {
            out.push(path);
            collect_exprs(input, out);
        }
        Plan::Reduce { input, head, .. } => {
            out.push(head);
            collect_exprs(input, out);
        }
    }
}

/// A pull-based operator: `next` yields one binding map per tuple.
trait Operator {
    fn next(&mut self) -> Result<Option<Bindings>>;
}

fn build_operator(
    plan: &Plan,
    catalog: &dyn SourceProvider,
    env: &Bindings,
) -> Result<Box<dyn Operator>> {
    match plan {
        Plan::Scan { dataset, binding } => {
            if dataset == UNIT_DATASET {
                return Ok(Box::new(UnitScan {
                    binding: binding.clone(),
                    env: env.clone(),
                    done: false,
                }));
            }
            let plugin = catalog.plugin(dataset)?;
            Ok(Box::new(ScanOp {
                plugin,
                binding: binding.clone(),
                env: env.clone(),
                row: 0,
            }))
        }
        Plan::Select { input, predicate } => Ok(Box::new(SelectOp {
            input: build_operator(input, catalog, env)?,
            predicate: predicate.clone(),
        })),
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            // Generic nested-loop join with a materialized right side — the
            // static engine has no per-query key extraction.
            let mut right_rows = Vec::new();
            let mut r = build_operator(right, catalog, env)?;
            while let Some(row) = r.next()? {
                right_rows.push(row);
            }
            Ok(Box::new(NlJoinOp {
                left: build_operator(left, catalog, env)?,
                right_rows,
                right_vars: right.bound_vars(),
                predicate: predicate.clone(),
                current_left: None,
                right_pos: 0,
            }))
        }
        Plan::Unnest {
            input,
            binding,
            path,
        } => Ok(Box::new(UnnestOp {
            input: build_operator(input, catalog, env)?,
            binding: binding.clone(),
            path: path.clone(),
            pending: Vec::new(),
            current: None,
        })),
        Plan::Reduce { .. } => Err(VidaError::Plan(
            "nested Reduce operators are evaluated through expression heads".into(),
        )),
    }
}

struct UnitScan {
    binding: String,
    env: Bindings,
    done: bool,
}

impl Operator for UnitScan {
    fn next(&mut self) -> Result<Option<Bindings>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut row = self.env.clone();
        row.insert(self.binding.clone(), Value::Null);
        Ok(Some(row))
    }
}

struct ScanOp {
    plugin: std::sync::Arc<dyn vida_formats::InputPlugin>,
    binding: String,
    env: Bindings,
    row: usize,
}

impl Operator for ScanOp {
    fn next(&mut self) -> Result<Option<Bindings>> {
        if self.row >= self.plugin.num_units() {
            return Ok(None);
        }
        // The generic engine always materializes the whole unit — it has no
        // query-specific projection (that is the point of the comparison).
        let unit = self.plugin.read_unit(self.row)?;
        self.row += 1;
        let mut row = self.env.clone();
        row.insert(self.binding.clone(), unit);
        Ok(Some(row))
    }
}

struct SelectOp {
    input: Box<dyn Operator>,
    predicate: Expr,
}

impl Operator for SelectOp {
    fn next(&mut self) -> Result<Option<Bindings>> {
        while let Some(row) = self.input.next()? {
            match eval(&self.predicate, &row)? {
                Value::Bool(true) => return Ok(Some(row)),
                Value::Bool(false) => {}
                other => {
                    return Err(VidaError::Exec(format!(
                        "selection predicate not boolean: {other}"
                    )))
                }
            }
        }
        Ok(None)
    }
}

struct NlJoinOp {
    left: Box<dyn Operator>,
    right_rows: Vec<Bindings>,
    right_vars: Vec<String>,
    predicate: Expr,
    current_left: Option<Bindings>,
    right_pos: usize,
}

impl Operator for NlJoinOp {
    fn next(&mut self) -> Result<Option<Bindings>> {
        loop {
            if self.current_left.is_none() {
                self.current_left = self.left.next()?;
                self.right_pos = 0;
                if self.current_left.is_none() {
                    return Ok(None);
                }
            }
            let l = self.current_left.as_ref().expect("set above");
            while self.right_pos < self.right_rows.len() {
                let r = &self.right_rows[self.right_pos];
                self.right_pos += 1;
                let mut row = l.clone();
                for v in &self.right_vars {
                    if let Some(val) = r.get(v) {
                        row.insert(v.clone(), val.clone());
                    }
                }
                match eval(&self.predicate, &row)? {
                    Value::Bool(true) => return Ok(Some(row)),
                    Value::Bool(false) => {}
                    other => {
                        return Err(VidaError::Exec(format!(
                            "join predicate not boolean: {other}"
                        )))
                    }
                }
            }
            self.current_left = None;
        }
    }
}

struct UnnestOp {
    input: Box<dyn Operator>,
    binding: String,
    path: Expr,
    pending: Vec<Value>,
    current: Option<Bindings>,
}

impl Operator for UnnestOp {
    fn next(&mut self) -> Result<Option<Bindings>> {
        loop {
            if let Some(item) = self.pending.pop() {
                let mut row = self.current.clone().expect("current row set");
                row.insert(self.binding.clone(), item);
                return Ok(Some(row));
            }
            match self.input.next()? {
                None => return Ok(None),
                Some(row) => {
                    let coll = eval(&self.path, &row)?;
                    let items = coll.elements().ok_or_else(|| {
                        VidaError::Exec(format!(
                            "unnest path {} produced non-collection",
                            self.path
                        ))
                    })?;
                    // Reverse so pop() yields original order.
                    self.pending = items.iter().rev().cloned().collect();
                    self.current = Some(row);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemoryCatalog;
    use vida_algebra::{lower, rewrite};
    use vida_lang::parse;
    use vida_types::{Schema, Type};

    fn catalog() -> MemoryCatalog {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "Patients",
            Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)]),
            &[
                Value::record([
                    ("id", Value::Int(1)),
                    ("age", Value::Int(71)),
                    ("city", Value::str("geneva")),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    ("age", Value::Int(34)),
                    ("city", Value::str("bern")),
                ]),
                Value::record([
                    ("id", Value::Int(3)),
                    ("age", Value::Int(65)),
                    ("city", Value::str("geneva")),
                ]),
            ],
        )
        .unwrap();
        cat.register_records(
            "Genetics",
            Schema::from_pairs([("id", Type::Int), ("snp", Type::Float)]),
            &[
                Value::record([("id", Value::Int(1)), ("snp", Value::Float(0.9))]),
                Value::record([("id", Value::Int(2)), ("snp", Value::Float(0.1))]),
                Value::record([("id", Value::Int(3)), ("snp", Value::Float(0.5))]),
            ],
        )
        .unwrap();
        cat
    }

    fn run(q: &str) -> Value {
        let plan = rewrite(&lower(&parse(q).unwrap()).unwrap());
        run_volcano(&plan, &catalog()).unwrap()
    }

    #[test]
    fn scan_filter_aggregate() {
        assert_eq!(
            run("for { p <- Patients, p.age > 60 } yield count p"),
            Value::Int(2)
        );
        assert_eq!(run("for { p <- Patients } yield max p.age"), Value::Int(71));
    }

    #[test]
    fn join_via_nested_loop() {
        assert_eq!(
            run(
                "for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 60 } \
                 yield sum g.snp"
            ),
            Value::Float(1.4)
        );
    }

    #[test]
    fn string_predicates() {
        assert_eq!(
            run("for { p <- Patients, p.city = \"geneva\" } yield count p"),
            Value::Int(2)
        );
    }

    #[test]
    fn projection_to_bag() {
        let v = run("for { p <- Patients, p.age > 60 } yield bag (id := p.id, c := p.city)");
        assert_eq!(v.elements().unwrap().len(), 2);
    }

    #[test]
    fn matches_reference_interpreter() {
        // Differential: volcano over plugins == calculus eval over values.
        let queries = [
            "for { p <- Patients } yield avg p.age",
            "for { p <- Patients, g <- Genetics, p.id = g.id } yield bag (a := p.age, s := g.snp)",
            "for { p <- Patients, p.city != \"bern\" } yield set p.city",
            "for { p <- Patients } yield all p.age > 20",
        ];
        let cat = catalog();
        let mut env = Bindings::new();
        env.insert("Patients".into(), cat.materialize("Patients").unwrap());
        env.insert("Genetics".into(), cat.materialize("Genetics").unwrap());
        for q in queries {
            let expr = parse(q).unwrap();
            let direct = eval(&expr, &env).unwrap();
            let plan = rewrite(&lower(&expr).unwrap());
            let via = run_volcano(&plan, &cat).unwrap();
            assert_eq!(direct, via, "volcano deviates for {q}");
        }
    }

    #[test]
    fn nested_head_materializes_dataset() {
        let v = run("for { g <- Genetics } yield bag \
             (id := g.id, \
              meta := for { p <- Patients, p.id = g.id } yield list p.city)");
        let items = v.elements().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(
            items[0].field("meta").unwrap().elements().unwrap(),
            &[Value::str("geneva")]
        );
    }

    #[test]
    fn unknown_dataset_is_catalog_error() {
        let plan = rewrite(&lower(&parse("for { x <- Missing } yield sum 1").unwrap()).unwrap());
        assert_eq!(
            run_volcano(&plan, &catalog()).unwrap_err().kind(),
            "catalog"
        );
    }
}
