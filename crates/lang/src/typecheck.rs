//! Static type checking of calculus expressions.
//!
//! Checks a query against a [`TypeEnv`] holding the dataset types from the
//! catalog (ViDa §3.1: descriptions "validate user queries"). Beyond error
//! detection, the inferred types drive the optimizer's layout decisions and
//! the JIT's register classes.
//!
//! The checker also enforces a **no-shadowing** rule — a generator or lambda
//! may not rebind a name already in scope. The paper's normalizer relies on
//! capture-free substitution; banning shadowing keeps that sound without
//! α-renaming.

use crate::ast::{BinOp, Expr, Qualifier, UnOp};
use std::collections::HashMap;
use vida_types::{CollectionKind, Monoid, PrimitiveMonoid, Result, Type, VidaError};

/// Typing environment: names in scope (datasets and bound variables).
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    vars: HashMap<String, Type>,
}

impl TypeEnv {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dataset (or any variable) type.
    pub fn bind(&mut self, name: impl Into<String>, ty: Type) -> &mut Self {
        self.vars.insert(name.into(), ty);
        self
    }

    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.vars.get(name)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }
}

/// Infer the type of `expr` under `env`.
pub fn typecheck(expr: &Expr, env: &TypeEnv) -> Result<Type> {
    check(expr, &mut env.clone())
}

fn check(expr: &Expr, env: &mut TypeEnv) -> Result<Type> {
    match expr {
        Expr::Const(v) => Ok(Type::of_value(v)),
        Expr::Var(name) => env
            .lookup(name)
            .cloned()
            .ok_or_else(|| VidaError::Unresolved(name.clone())),
        Expr::Proj(e, field) => {
            let t = check(e, env)?;
            match &t {
                Type::Unknown => Ok(Type::Unknown),
                Type::Record(_) => t
                    .field(field)
                    .cloned()
                    .ok_or_else(|| VidaError::Type(format!("record {t} has no field '{field}'"))),
                other => Err(VidaError::Type(format!(
                    "projection .{field} on non-record type {other}"
                ))),
            }
        }
        Expr::Record(fields) => {
            let mut seen = Vec::new();
            let mut out = Vec::with_capacity(fields.len());
            for (n, e) in fields {
                if seen.contains(n) {
                    return Err(VidaError::Type(format!("duplicate record field '{n}'")));
                }
                seen.push(n.clone());
                out.push((n.clone(), check(e, env)?));
            }
            Ok(Type::Record(out))
        }
        Expr::If(c, t, f) => {
            let ct = check(c, env)?;
            if !ct.compatible(&Type::Bool) {
                return Err(VidaError::Type(format!("if condition has type {ct}")));
            }
            let tt = check(t, env)?;
            let ft = check(f, env)?;
            tt.unify(&ft).ok_or_else(|| {
                VidaError::Type(format!("if branches have incompatible types {tt} / {ft}"))
            })
        }
        Expr::BinOp(op, l, r) => {
            let lt = check(l, env)?;
            let rt = check(r, env)?;
            match op {
                BinOp::Add if lt == Type::Str && rt == Type::Str => Ok(Type::Str),
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    if !lt.is_numeric() || !rt.is_numeric() {
                        return Err(VidaError::Type(format!(
                            "arithmetic '{}' on {lt} and {rt}",
                            op.symbol()
                        )));
                    }
                    lt.unify(&rt)
                        .ok_or_else(|| VidaError::Type(format!("cannot unify {lt} and {rt}")))
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if !lt.compatible(&rt) {
                        return Err(VidaError::Type(format!(
                            "comparison '{}' between incompatible {lt} and {rt}",
                            op.symbol()
                        )));
                    }
                    Ok(Type::Bool)
                }
                BinOp::And | BinOp::Or => {
                    if !lt.compatible(&Type::Bool) || !rt.compatible(&Type::Bool) {
                        return Err(VidaError::Type(format!(
                            "boolean '{}' on {lt} and {rt}",
                            op.symbol()
                        )));
                    }
                    Ok(Type::Bool)
                }
            }
        }
        Expr::UnOp(UnOp::Not, e) => {
            let t = check(e, env)?;
            if !t.compatible(&Type::Bool) {
                return Err(VidaError::Type(format!("'not' on {t}")));
            }
            Ok(Type::Bool)
        }
        Expr::UnOp(UnOp::Neg, e) => {
            let t = check(e, env)?;
            if !t.is_numeric() {
                return Err(VidaError::Type(format!("negation of {t}")));
            }
            Ok(t)
        }
        // A bare lambda is a function value; it only types when applied.
        Expr::Lambda(..) => Ok(Type::Unknown),
        Expr::App(f, a) => match f.as_ref() {
            Expr::Lambda(v, body) => {
                if env.contains(v) {
                    return Err(VidaError::Type(format!(
                        "lambda parameter '{v}' shadows an existing name"
                    )));
                }
                let at = check(a, env)?;
                env.bind(v.clone(), at);
                let r = check(body, env);
                env.vars.remove(v);
                r
            }
            _ => {
                check(f, env)?;
                check(a, env)?;
                Ok(Type::Unknown)
            }
        },
        Expr::Zero(m) => Ok(monoid_zero_type(*m)),
        Expr::Singleton(m, e) => {
            let t = check(e, env)?;
            monoid_result_type(*m, &t)
        }
        Expr::Merge(m, l, r) => {
            let lt = check(l, env)?;
            let rt = check(r, env)?;
            let t = lt
                .unify(&rt)
                .ok_or_else(|| VidaError::Type(format!("merge of incompatible {lt} and {rt}")))?;
            match m {
                Monoid::Collection(kind) => match &t {
                    Type::Unknown => Ok(Type::Collection(*kind, Box::new(Type::Unknown))),
                    Type::Collection(k, _) if k == kind => Ok(t),
                    other => Err(VidaError::Type(format!(
                        "merge[{m}] on non-{} type {other}",
                        kind.name()
                    ))),
                },
                Monoid::Primitive(_) => Ok(t),
            }
        }
        Expr::Comprehension {
            monoid,
            head,
            qualifiers,
        } => {
            let mut bound = Vec::new();
            let mut result = Ok(Type::Unknown);
            for q in qualifiers {
                match q {
                    Qualifier::Generator(v, src) => {
                        if env.contains(v) {
                            result = Err(VidaError::Type(format!(
                                "generator '{v}' shadows an existing name"
                            )));
                            break;
                        }
                        let st = match check(src, env) {
                            Ok(t) => t,
                            Err(e) => {
                                result = Err(e);
                                break;
                            }
                        };
                        let elem = match &st {
                            Type::Unknown => Type::Unknown,
                            _ => match st.elem() {
                                Some(t) => t.clone(),
                                None => {
                                    result = Err(VidaError::Type(format!(
                                        "generator '{v}' over non-collection type {st}"
                                    )));
                                    break;
                                }
                            },
                        };
                        env.bind(v.clone(), elem);
                        bound.push(v.clone());
                    }
                    Qualifier::Filter(p) => {
                        let pt = match check(p, env) {
                            Ok(t) => t,
                            Err(e) => {
                                result = Err(e);
                                break;
                            }
                        };
                        if !pt.compatible(&Type::Bool) {
                            result =
                                Err(VidaError::Type(format!("filter has type {pt}, not bool")));
                            break;
                        }
                    }
                }
            }
            let out = match result {
                Ok(_) => check(head, env).and_then(|ht| monoid_result_type(*monoid, &ht)),
                Err(e) => Err(e),
            };
            for v in bound {
                env.vars.remove(&v);
            }
            out
        }
        Expr::ListLit(items) => {
            let mut elem = Type::Unknown;
            for e in items {
                let t = check(e, env)?;
                elem = elem.unify(&t).ok_or_else(|| {
                    VidaError::Type(format!("heterogeneous list literal: {elem} vs {t}"))
                })?;
            }
            Ok(Type::Collection(CollectionKind::List, Box::new(elem)))
        }
    }
}

fn monoid_zero_type(m: Monoid) -> Type {
    match m {
        Monoid::Primitive(PrimitiveMonoid::Count) => Type::Int,
        Monoid::Primitive(PrimitiveMonoid::Avg) => Type::Float,
        Monoid::Primitive(PrimitiveMonoid::All) | Monoid::Primitive(PrimitiveMonoid::Any) => {
            Type::Bool
        }
        Monoid::Primitive(_) => Type::Unknown,
        Monoid::Collection(k) => Type::Collection(k, Box::new(Type::Unknown)),
    }
}

/// Result type of folding heads of type `head` with monoid `m`.
fn monoid_result_type(m: Monoid, head: &Type) -> Result<Type> {
    match m {
        Monoid::Primitive(PrimitiveMonoid::Sum)
        | Monoid::Primitive(PrimitiveMonoid::Prod)
        | Monoid::Primitive(PrimitiveMonoid::Max)
        | Monoid::Primitive(PrimitiveMonoid::Min) => {
            // max/min also order strings; sum/prod need numbers.
            let numeric_only = matches!(
                m,
                Monoid::Primitive(PrimitiveMonoid::Sum) | Monoid::Primitive(PrimitiveMonoid::Prod)
            );
            if numeric_only && !head.is_numeric() {
                return Err(VidaError::Type(format!("{m} over non-numeric {head}")));
            }
            Ok(head.clone())
        }
        Monoid::Primitive(PrimitiveMonoid::Count) => Ok(Type::Int),
        Monoid::Primitive(PrimitiveMonoid::Avg) => {
            if !head.is_numeric() {
                return Err(VidaError::Type(format!("avg over non-numeric {head}")));
            }
            Ok(Type::Float)
        }
        Monoid::Primitive(PrimitiveMonoid::All) | Monoid::Primitive(PrimitiveMonoid::Any) => {
            if !head.compatible(&Type::Bool) {
                return Err(VidaError::Type(format!("{m} over non-boolean {head}")));
            }
            Ok(Type::Bool)
        }
        Monoid::Collection(k) => Ok(Type::Collection(k, Box::new(head.clone()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn env() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.bind(
            "Employees",
            Type::bag(Type::record([
                ("id", Type::Int),
                ("name", Type::Str),
                ("deptNo", Type::Int),
                ("age", Type::Int),
            ])),
        );
        env.bind(
            "Departments",
            Type::bag(Type::record([("id", Type::Int), ("deptName", Type::Str)])),
        );
        env
    }

    fn ty(q: &str) -> Type {
        typecheck(&parse(q).unwrap(), &env()).unwrap()
    }

    fn ty_err(q: &str) -> String {
        typecheck(&parse(q).unwrap(), &env())
            .unwrap_err()
            .to_string()
    }

    #[test]
    fn count_query_types_as_int() {
        assert_eq!(
            ty("for { e <- Employees, d <- Departments, e.deptNo = d.id } yield sum 1"),
            Type::Int
        );
    }

    #[test]
    fn bag_of_records_result() {
        let t = ty("for { e <- Employees } yield bag (n := e.name, a := e.age)");
        assert_eq!(
            t,
            Type::bag(Type::record([("n", Type::Str), ("a", Type::Int)]))
        );
    }

    #[test]
    fn avg_is_float_count_is_int() {
        assert_eq!(ty("for { e <- Employees } yield avg e.age"), Type::Float);
        assert_eq!(ty("for { e <- Employees } yield count e"), Type::Int);
        assert_eq!(ty("for { e <- Employees } yield max e.name"), Type::Str);
    }

    #[test]
    fn unknown_fields_rejected() {
        assert!(ty_err("for { e <- Employees } yield sum e.salary").contains("no field"));
    }

    #[test]
    fn unresolved_dataset_rejected() {
        let e = typecheck(&parse("for { x <- Nope } yield sum 1").unwrap(), &env());
        assert_eq!(e.unwrap_err().kind(), "unresolved");
    }

    #[test]
    fn generator_over_scalar_rejected() {
        assert!(ty_err("for { e <- Employees, x <- e.age } yield sum x").contains("non-collection"));
    }

    #[test]
    fn filter_must_be_bool() {
        assert!(ty_err("for { e <- Employees, e.age + 1 } yield sum 1").contains("not bool"));
    }

    #[test]
    fn shadowing_rejected() {
        assert!(ty_err("for { e <- Employees, e <- Departments } yield sum 1").contains("shadows"));
        let mut env2 = env();
        env2.bind("x", Type::Int);
        let err = typecheck(&parse("(\\x -> x)(1)").unwrap(), &env2).unwrap_err();
        assert!(err.to_string().contains("shadows"));
    }

    #[test]
    fn arithmetic_type_rules() {
        assert_eq!(ty("1 + 2"), Type::Int);
        assert_eq!(ty("1 + 2.0"), Type::Float);
        assert_eq!(ty("\"a\" + \"b\""), Type::Str);
        assert!(ty_err("1 + \"a\"").contains("arithmetic"));
        assert!(ty_err("\"a\" < 1").contains("incompatible"));
    }

    #[test]
    fn boolean_monoids_require_bool_heads() {
        assert_eq!(ty("for { e <- Employees } yield all e.age > 1"), Type::Bool);
        assert!(ty_err("for { e <- Employees } yield all e.age").contains("non-boolean"));
        assert!(ty_err("for { e <- Employees } yield sum e.name").contains("non-numeric"));
    }

    #[test]
    fn nested_comprehension_types() {
        let t = ty("for { d <- Departments } yield bag \
             (dept := d.deptName, \
              ids := for { e <- Employees, e.deptNo = d.id } yield list e.id)");
        let Type::Collection(CollectionKind::Bag, elem) = t else {
            panic!()
        };
        assert_eq!(
            elem.field("ids"),
            Some(&Type::Collection(CollectionKind::List, Box::new(Type::Int)))
        );
    }

    #[test]
    fn if_branches_unify() {
        assert_eq!(ty("if true then 1 else 2.5"), Type::Float);
        assert!(ty_err("if true then 1 else \"a\"").contains("incompatible"));
        assert!(ty_err("if 1 then 1 else 2").contains("condition"));
    }

    #[test]
    fn duplicate_record_fields_rejected() {
        assert!(ty_err("(a := 1, a := 2)").contains("duplicate"));
    }

    #[test]
    fn lambda_application_types_body() {
        assert_eq!(ty("(\\v -> v + 1)(41)"), Type::Int);
    }

    #[test]
    fn list_literal_unifies() {
        assert_eq!(
            ty("[1, 2.0]"),
            Type::Collection(CollectionKind::List, Box::new(Type::Float))
        );
        assert!(ty_err("[1, \"a\"]").contains("heterogeneous"));
    }

    #[test]
    fn merge_type_rules() {
        assert_eq!(ty("merge[sum](1, 2)"), Type::Int);
        assert_eq!(
            ty("merge[bag](unit[bag](1), zero[bag])"),
            Type::bag(Type::Int)
        );
        assert!(ty_err("merge[bag](1, 2)").contains("non-bag"));
    }
}
