//! The normalizer: Fegaras-Maier rewrite rules (ViDa §3.2, §4).
//!
//! "After applying a series of rewrite rules to optimize the query (e.g.
//! remove intermediate variables, simplify boolean expressions, etc.) the
//! partially optimized query is translated to a form of nested relational
//! algebra" — this module is that series of rewrite rules:
//!
//! - **β-reduction**: `(λv.b)(a) ⇒ b[v := a]`
//! - **if-simplification**: constant conditions select a branch
//! - **constant folding** of primitive operators
//! - **projection of record literals**: `⟨a := e⟩.a ⇒ e`
//! - **generator unnesting** (the calculus' defining normalization):
//!   `⊕{e ∣ v ← ⊗{e′ ∣ q̄′}, q̄}` ⇒ `⊕{e[v:=e′] ∣ q̄′, q̄[v:=e′]}`
//!   for collection monoids ⊗ (with commutativity/idempotence side
//!   conditions checked against ⊕)
//! - **generator over zero / singleton / merge**: empty sources erase the
//!   comprehension, singleton sources become substitutions, merged sources
//!   split the comprehension
//! - **condition splitting**: `p ∧ q` filters become two filters
//! - **filter hoisting**: each filter moves immediately after the last
//!   generator binding one of its free variables (selection pushdown at the
//!   calculus level)
//!
//! `normalize` iterates to a fixpoint (bounded), so downstream lowering sees
//! a canonical comprehension: a flat list of generators over raw sources,
//! filters as early as possible, and a constructor-free head.

use crate::ast::{BinOp, Expr, Qualifier};
use crate::eval::apply_binop;
use vida_types::{Monoid, Value};

/// Normalize to fixpoint (bounded at 64 passes; each pass strictly shrinks
/// or is the last).
pub fn normalize(expr: &Expr) -> Expr {
    let mut cur = expr.clone();
    for _ in 0..64 {
        let next = pass(&cur);
        if next == cur {
            return hoist_filters_deep(&cur);
        }
        cur = next;
    }
    hoist_filters_deep(&cur)
}

/// One bottom-up rewrite pass.
fn pass(expr: &Expr) -> Expr {
    // Rewrite children first.
    let e = map_children(expr, &pass);
    rewrite_node(&e)
}

fn map_children(expr: &Expr, f: &dyn Fn(&Expr) -> Expr) -> Expr {
    match expr {
        Expr::Const(_) | Expr::Var(_) | Expr::Zero(_) => expr.clone(),
        Expr::Proj(e, field) => Expr::Proj(Box::new(f(e)), field.clone()),
        Expr::Record(fields) => {
            Expr::Record(fields.iter().map(|(n, e)| (n.clone(), f(e))).collect())
        }
        Expr::If(c, t, e) => Expr::If(Box::new(f(c)), Box::new(f(t)), Box::new(f(e))),
        Expr::BinOp(op, l, r) => Expr::BinOp(*op, Box::new(f(l)), Box::new(f(r))),
        Expr::UnOp(op, e) => Expr::UnOp(*op, Box::new(f(e))),
        Expr::Lambda(v, b) => Expr::Lambda(v.clone(), Box::new(f(b))),
        Expr::App(a, b) => Expr::App(Box::new(f(a)), Box::new(f(b))),
        Expr::Singleton(m, e) => Expr::Singleton(*m, Box::new(f(e))),
        Expr::Merge(m, a, b) => Expr::Merge(*m, Box::new(f(a)), Box::new(f(b))),
        Expr::Comprehension {
            monoid,
            head,
            qualifiers,
        } => Expr::Comprehension {
            monoid: *monoid,
            head: Box::new(f(head)),
            qualifiers: qualifiers
                .iter()
                .map(|q| match q {
                    Qualifier::Generator(v, e) => Qualifier::Generator(v.clone(), f(e)),
                    Qualifier::Filter(e) => Qualifier::Filter(f(e)),
                })
                .collect(),
        },
        Expr::ListLit(items) => Expr::ListLit(items.iter().map(f).collect()),
    }
}

fn rewrite_node(expr: &Expr) -> Expr {
    match expr {
        // β-reduction.
        Expr::App(f, a) => {
            if let Expr::Lambda(v, body) = f.as_ref() {
                body.substitute(v, a)
            } else {
                expr.clone()
            }
        }
        // if-simplification.
        Expr::If(c, t, e) => match c.as_ref() {
            Expr::Const(Value::Bool(true)) => t.as_ref().clone(),
            Expr::Const(Value::Bool(false)) => e.as_ref().clone(),
            _ => expr.clone(),
        },
        // Constant folding (only when both sides are constants and the
        // operation cannot fail — errors stay for runtime).
        Expr::BinOp(op, l, r) => {
            if let (Expr::Const(lv), Expr::Const(rv)) = (l.as_ref(), r.as_ref()) {
                match apply_binop(*op, lv.clone(), rv.clone()) {
                    Ok(v) => Expr::Const(v),
                    Err(_) => expr.clone(),
                }
            } else {
                simplify_bool(expr)
            }
        }
        // ⟨a := e⟩.a ⇒ e
        Expr::Proj(e, field) => {
            if let Expr::Record(fields) = e.as_ref() {
                if let Some((_, v)) = fields.iter().find(|(n, _)| n == field) {
                    return v.clone();
                }
            }
            expr.clone()
        }
        Expr::Comprehension {
            monoid,
            head,
            qualifiers,
        } => rewrite_comprehension(*monoid, head, qualifiers),
        _ => expr.clone(),
    }
}

/// Boolean identities on partially-constant predicates.
fn simplify_bool(expr: &Expr) -> Expr {
    let Expr::BinOp(op, l, r) = expr else {
        return expr.clone();
    };
    let t = |e: &Expr| matches!(e, Expr::Const(Value::Bool(true)));
    let f = |e: &Expr| matches!(e, Expr::Const(Value::Bool(false)));
    match op {
        BinOp::And => {
            if t(l) {
                r.as_ref().clone()
            } else if t(r) {
                l.as_ref().clone()
            } else if f(l) || f(r) {
                Expr::bool(false)
            } else {
                expr.clone()
            }
        }
        BinOp::Or => {
            if f(l) {
                r.as_ref().clone()
            } else if f(r) {
                l.as_ref().clone()
            } else if t(l) || t(r) {
                Expr::bool(true)
            } else {
                expr.clone()
            }
        }
        _ => expr.clone(),
    }
}

fn rewrite_comprehension(monoid: Monoid, head: &Expr, qualifiers: &[Qualifier]) -> Expr {
    // Split conjunctive filters first: p and q => p, q.
    let mut quals: Vec<Qualifier> = Vec::with_capacity(qualifiers.len());
    for q in qualifiers {
        match q {
            Qualifier::Filter(e) => split_conjuncts(e, &mut quals),
            g => quals.push(g.clone()),
        }
    }

    for (i, q) in quals.iter().enumerate() {
        match q {
            // Constant filters.
            Qualifier::Filter(Expr::Const(Value::Bool(true))) => {
                let mut rest = quals.clone();
                rest.remove(i);
                return Expr::Comprehension {
                    monoid,
                    head: Box::new(head.clone()),
                    qualifiers: rest,
                };
            }
            Qualifier::Filter(Expr::Const(Value::Bool(false))) => {
                return Expr::Zero(monoid);
            }
            Qualifier::Generator(v, src) => match src {
                // v <- zero  =>  whole comprehension is zero.
                Expr::Zero(_) => return Expr::Zero(monoid),
                Expr::ListLit(items) if items.is_empty() => return Expr::Zero(monoid),
                // v <- unit(e)  =>  substitute v := e everywhere after.
                Expr::Singleton(_, elem) => {
                    return substitute_generator(monoid, head, &quals, i, v, elem);
                }
                Expr::ListLit(items) if items.len() == 1 => {
                    let elem = items[0].clone();
                    return substitute_generator(monoid, head, &quals, i, v, &elem);
                }
                // v <- (a ⊗ b)  =>  comprehension over a merged with over b.
                Expr::Merge(_, a, b) => {
                    let mut qa = quals.clone();
                    qa[i] = Qualifier::Generator(v.clone(), a.as_ref().clone());
                    let mut qb = quals.clone();
                    qb[i] = Qualifier::Generator(v.clone(), b.as_ref().clone());
                    return Expr::Merge(
                        monoid,
                        Box::new(Expr::Comprehension {
                            monoid,
                            head: Box::new(head.clone()),
                            qualifiers: qa,
                        }),
                        Box::new(Expr::Comprehension {
                            monoid,
                            head: Box::new(head.clone()),
                            qualifiers: qb,
                        }),
                    );
                }
                // Generator unnesting: v <- (for {q̄′} yield ⊗ e′), rest.
                // Sound when splicing preserves ⊕-semantics: the inner
                // monoid must be a collection; if the inner collection is a
                // set (idempotent dedup), the outer monoid must be
                // idempotent too, and list order only survives into
                // commutative-insensitive outers — we conservatively require
                // the inner kind to be non-deduplicating (bag/list/array) or
                // the outer monoid idempotent.
                Expr::Comprehension {
                    monoid: inner_m,
                    head: inner_head,
                    qualifiers: inner_quals,
                } => {
                    let sound = match inner_m {
                        Monoid::Collection(k) => !k.idempotent() || monoid.idempotent(),
                        Monoid::Primitive(_) => false,
                    };
                    if sound {
                        return unnest_generator(
                            monoid,
                            head,
                            &quals,
                            i,
                            v,
                            inner_head,
                            inner_quals,
                        );
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    Expr::Comprehension {
        monoid,
        head: Box::new(head.clone()),
        qualifiers: quals,
    }
}

fn split_conjuncts(e: &Expr, out: &mut Vec<Qualifier>) {
    if let Expr::BinOp(BinOp::And, l, r) = e {
        split_conjuncts(l, out);
        split_conjuncts(r, out);
    } else {
        out.push(Qualifier::Filter(e.clone()));
    }
}

/// Remove generator `i` binding `v`, substituting `v := elem` into all later
/// qualifiers and the head.
fn substitute_generator(
    monoid: Monoid,
    head: &Expr,
    quals: &[Qualifier],
    i: usize,
    v: &str,
    elem: &Expr,
) -> Expr {
    let mut new_quals: Vec<Qualifier> = quals[..i].to_vec();
    for q in &quals[i + 1..] {
        new_quals.push(match q {
            Qualifier::Generator(g, e) => Qualifier::Generator(g.clone(), e.substitute(v, elem)),
            Qualifier::Filter(e) => Qualifier::Filter(e.substitute(v, elem)),
        });
    }
    Expr::Comprehension {
        monoid,
        head: Box::new(head.substitute(v, elem)),
        qualifiers: new_quals,
    }
}

/// Splice an inner comprehension's qualifiers in place of generator `i`.
fn unnest_generator(
    monoid: Monoid,
    head: &Expr,
    quals: &[Qualifier],
    i: usize,
    v: &str,
    inner_head: &Expr,
    inner_quals: &[Qualifier],
) -> Expr {
    // Freshen inner binders that collide with names visible in the outer
    // comprehension (its binders, later sources, or the head).
    let mut used: Vec<String> = quals
        .iter()
        .filter_map(|q| match q {
            Qualifier::Generator(g, _) => Some(g.clone()),
            _ => None,
        })
        .collect();
    used.extend(head.free_vars());
    for q in quals {
        match q {
            Qualifier::Generator(_, e) | Qualifier::Filter(e) => used.extend(e.free_vars()),
        }
    }

    let mut renamed: Vec<Qualifier> = Vec::with_capacity(inner_quals.len());
    let mut inner_head = inner_head.clone();
    // (old, new) renames applied to later inner qualifiers.
    let mut rename_in_rest: Vec<(String, String)> = Vec::new();
    for q in inner_quals {
        match q {
            Qualifier::Generator(g, e) => {
                let mut e = e.clone();
                for (old, new) in &rename_in_rest {
                    e = e.substitute(old, &Expr::var(new.clone()));
                }
                if used.contains(g) {
                    let fresh = fresh_name(g, &used);
                    used.push(fresh.clone());
                    rename_in_rest.push((g.clone(), fresh.clone()));
                    renamed.push(Qualifier::Generator(fresh, e));
                } else {
                    used.push(g.clone());
                    renamed.push(Qualifier::Generator(g.clone(), e));
                }
            }
            Qualifier::Filter(e) => {
                let mut e = e.clone();
                for (old, new) in &rename_in_rest {
                    e = e.substitute(old, &Expr::var(new.clone()));
                }
                renamed.push(Qualifier::Filter(e));
            }
        }
    }
    for (old, new) in &rename_in_rest {
        inner_head = inner_head.substitute(old, &Expr::var(new.clone()));
    }

    let mut new_quals: Vec<Qualifier> = quals[..i].to_vec();
    new_quals.extend(renamed);
    for q in &quals[i + 1..] {
        new_quals.push(match q {
            Qualifier::Generator(g, e) => {
                Qualifier::Generator(g.clone(), e.substitute(v, &inner_head))
            }
            Qualifier::Filter(e) => Qualifier::Filter(e.substitute(v, &inner_head)),
        });
    }
    Expr::Comprehension {
        monoid,
        head: Box::new(head.substitute(v, &inner_head)),
        qualifiers: new_quals,
    }
}

fn fresh_name(base: &str, used: &[String]) -> String {
    for i in 1.. {
        let cand = format!("{base}_{i}");
        if !used.iter().any(|u| u == &cand) {
            return cand;
        }
    }
    unreachable!()
}

/// Hoist filters as early as their free variables permit, recursively.
fn hoist_filters_deep(expr: &Expr) -> Expr {
    let e = map_children(expr, &hoist_filters_deep);
    if let Expr::Comprehension {
        monoid,
        head,
        qualifiers,
    } = &e
    {
        Expr::Comprehension {
            monoid: *monoid,
            head: head.clone(),
            qualifiers: hoist_filters(qualifiers),
        }
    } else {
        e
    }
}

/// Reorder qualifiers so each filter sits right after the last generator
/// binding one of its free variables. Generator order is preserved
/// (join-order selection belongs to the optimizer, not the normalizer).
fn hoist_filters(qualifiers: &[Qualifier]) -> Vec<Qualifier> {
    let generators: Vec<(usize, &Qualifier)> = qualifiers
        .iter()
        .enumerate()
        .filter(|(_, q)| q.is_generator())
        .collect();
    let mut slots: Vec<Vec<Qualifier>> = vec![Vec::new(); generators.len() + 1];

    for q in qualifiers {
        if let Qualifier::Filter(p) = q {
            let fv = p.free_vars();
            // Earliest slot = after the last generator whose variable occurs
            // free in the predicate.
            let mut slot = 0usize;
            for (gi, (_, g)) in generators.iter().enumerate() {
                if let Qualifier::Generator(name, _) = g {
                    if fv.contains(name) {
                        slot = gi + 1;
                    }
                }
            }
            slots[slot].push(Qualifier::Filter(p.clone()));
        }
    }

    let mut out = Vec::with_capacity(qualifiers.len());
    out.extend(slots[0].iter().cloned());
    for (gi, (_, g)) in generators.iter().enumerate() {
        out.push((*g).clone());
        out.extend(slots[gi + 1].iter().cloned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Bindings};
    use crate::parser::parse;

    fn norm(q: &str) -> Expr {
        normalize(&parse(q).unwrap())
    }

    #[test]
    fn beta_reduction() {
        assert_eq!(norm("(\\x -> x + 1)(41)"), Expr::int(42));
    }

    #[test]
    fn constant_folding_and_if() {
        assert_eq!(norm("1 + 2 * 3"), Expr::int(7));
        assert_eq!(norm("if 1 < 2 then \"y\" else \"n\""), Expr::str("y"));
        // Folding must not swallow runtime errors.
        assert!(matches!(norm("1 / 0"), Expr::BinOp(BinOp::Div, _, _)));
    }

    #[test]
    fn bool_identities() {
        assert_eq!(norm("x and true").to_string(), "x");
        assert_eq!(norm("false and x"), Expr::bool(false));
        assert_eq!(norm("x or false").to_string(), "x");
        assert_eq!(norm("true or x"), Expr::bool(true));
    }

    #[test]
    fn record_projection_folds() {
        assert_eq!(norm("(a := 1, b := 2).b"), Expr::int(2));
    }

    #[test]
    fn constant_false_filter_erases_comprehension() {
        let e = norm("for { x <- Xs, 1 > 2 } yield sum x");
        assert!(matches!(e, Expr::Zero(_)));
    }

    #[test]
    fn constant_true_filter_dropped() {
        let e = norm("for { x <- Xs, 1 < 2 } yield sum x");
        let Expr::Comprehension { qualifiers, .. } = e else {
            panic!()
        };
        assert_eq!(qualifiers.len(), 1);
    }

    #[test]
    fn generator_over_singleton_substitutes() {
        let e = norm("for { x <- unit[bag](5), x > 1 } yield sum x");
        // x := 5 everywhere, filter folds to true and is dropped, leaving a
        // qualifier-free comprehension evaluating to 5.
        let mut env = Bindings::new();
        assert_eq!(eval(&e, &env).unwrap(), vida_types::Value::Int(5));
        env.clear();
    }

    #[test]
    fn generator_over_merge_splits() {
        let e = norm("for { x <- merge[bag](Xs, Ys) } yield sum x");
        assert!(matches!(e, Expr::Merge(..)));
    }

    #[test]
    fn conjunctive_filters_split() {
        let e = norm("for { x <- Xs, x.a > 1 and x.b < 2 } yield sum 1");
        let Expr::Comprehension { qualifiers, .. } = e else {
            panic!()
        };
        assert_eq!(qualifiers.len(), 3); // generator + two filters
    }

    #[test]
    fn filters_hoist_to_binding_generator() {
        // p-filter must move before the g generator.
        let e = norm("for { p <- Ps, g <- Gs, p.age > 60, p.id = g.id } yield sum 1");
        let Expr::Comprehension { qualifiers, .. } = e else {
            panic!()
        };
        // Expected order: p <- Ps, p.age > 60, g <- Gs, p.id = g.id
        assert!(qualifiers[0].is_generator());
        assert!(!qualifiers[1].is_generator());
        assert_eq!(qualifiers[1], parse_filter("p.age > 60"));
        assert!(qualifiers[2].is_generator());
        assert_eq!(qualifiers[3], parse_filter("p.id = g.id"));
    }

    fn parse_filter(p: &str) -> Qualifier {
        Qualifier::Filter(parse(p).unwrap())
    }

    #[test]
    fn unnesting_splices_inner_comprehension() {
        let e = norm("for { x <- for { y <- Ys, y.a > 0 } yield bag y.b, x > 1 } yield sum x");
        let Expr::Comprehension {
            qualifiers, head, ..
        } = &e
        else {
            panic!("expected comprehension, got {e}");
        };
        // y <- Ys, y.a > 0, y.b > 1 with head y.b
        assert_eq!(qualifiers.len(), 3);
        assert!(qualifiers[0].is_generator());
        assert_eq!(head.to_string(), "y.b");
    }

    #[test]
    fn unnesting_avoids_capture() {
        // Inner binder y collides with an outer generator named y.
        let e = norm("for { x <- for { y <- Ys } yield bag y.b, y <- Zs, y.c > x } yield sum y.c");
        let Expr::Comprehension { qualifiers, .. } = &e else {
            panic!()
        };
        // Inner y must be renamed so the outer y <- Zs is unaffected.
        let names: Vec<String> = qualifiers
            .iter()
            .filter_map(|q| match q {
                Qualifier::Generator(n, _) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
        assert!(names.contains(&"y".to_string()));
    }

    #[test]
    fn set_inner_requires_idempotent_outer() {
        // set inner + sum outer must NOT unnest (dedup would be lost).
        let q = "for { x <- for { y <- Ys } yield set y.b } yield sum x";
        let e = norm(q);
        let Expr::Comprehension { qualifiers, .. } = &e else {
            panic!()
        };
        let Qualifier::Generator(_, src) = &qualifiers[0] else {
            panic!()
        };
        assert!(
            matches!(src, Expr::Comprehension { .. }),
            "must stay nested"
        );
        // set inner + set outer is fine to unnest.
        let e2 = norm("for { x <- for { y <- Ys } yield set y.b } yield set x");
        let Expr::Comprehension { qualifiers, .. } = &e2 else {
            panic!()
        };
        assert_eq!(qualifiers.len(), 1);
        let Qualifier::Generator(_, src2) = &qualifiers[0] else {
            panic!()
        };
        assert_eq!(src2, &Expr::var("Ys"));
    }

    #[test]
    fn normalization_preserves_semantics() {
        use vida_types::Value;
        let mut env = Bindings::new();
        env.insert(
            "Xs".into(),
            Value::bag(vec![
                Value::record([("a", Value::Int(1)), ("b", Value::Int(10))]),
                Value::record([("a", Value::Int(2)), ("b", Value::Int(20))]),
                Value::record([("a", Value::Int(3)), ("b", Value::Int(30))]),
            ]),
        );
        let queries = [
            "for { x <- Xs, x.a > 1 and x.b < 30 } yield sum x.b",
            "for { x <- Xs } yield bag (v := x.a * 2 + 0)",
            "for { y <- for { x <- Xs, x.a > 1 } yield bag x } yield sum y.b",
            "for { x <- merge[bag](Xs, Xs) } yield count x",
            "(\\t -> for { x <- Xs, x.a >= t } yield sum x.a)(2)",
        ];
        for q in queries {
            let orig = parse(q).unwrap();
            let n = normalize(&orig);
            assert_eq!(
                eval(&orig, &env).unwrap(),
                eval(&n, &env).unwrap(),
                "semantics changed for {q}\nnormalized: {n}"
            );
        }
    }

    #[test]
    fn fixpoint_terminates_on_pathological_nesting() {
        let mut q = String::from("for { x0 <- Xs } yield bag x0");
        for i in 1..10 {
            q = format!("for {{ x{i} <- {q} }} yield bag x{i}");
        }
        let e = norm(&q);
        // Everything collapses to a single comprehension over Xs.
        let Expr::Comprehension { qualifiers, .. } = &e else {
            panic!()
        };
        assert_eq!(qualifiers.len(), 1);
    }
}
