//! Lexer for the comprehension concrete syntax.
//!
//! The syntax resembles Scala sequence comprehensions, as the paper notes:
//! `for { p <- Patients, p.age > 60 } yield bag (id := p.id)`.

use vida_types::{Result, VidaError};

/// A lexical token with its source position (1-based line/col).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // keywords
    For,
    Yield,
    If,
    Then,
    Else,
    True,
    False,
    Null,
    Not,
    And,
    Or,
    // punctuation / operators
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Arrow,  // <-
    Assign, // :=
    Eq,     // =
    Ne,     // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Backslash, // lambda
    RArrow,    // ->
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Int(i) => format!("integer {i}"),
            TokenKind::Float(f) => format!("float {f}"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("'{other:?}'"),
        }
    }
}

/// Tokenize a query string.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_start = 0usize;

    macro_rules! tok {
        ($kind:expr, $start:expr) => {
            tokens.push(Token {
                kind: $kind,
                line,
                col: ($start - line_start) as u32 + 1,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                tok!(TokenKind::LBrace, i);
                i += 1;
            }
            b'}' => {
                tok!(TokenKind::RBrace, i);
                i += 1;
            }
            b'(' => {
                tok!(TokenKind::LParen, i);
                i += 1;
            }
            b')' => {
                tok!(TokenKind::RParen, i);
                i += 1;
            }
            b'[' => {
                tok!(TokenKind::LBracket, i);
                i += 1;
            }
            b']' => {
                tok!(TokenKind::RBracket, i);
                i += 1;
            }
            b',' => {
                tok!(TokenKind::Comma, i);
                i += 1;
            }
            b'.' => {
                tok!(TokenKind::Dot, i);
                i += 1;
            }
            b'+' => {
                tok!(TokenKind::Plus, i);
                i += 1;
            }
            b'*' => {
                tok!(TokenKind::Star, i);
                i += 1;
            }
            b'/' => {
                tok!(TokenKind::Slash, i);
                i += 1;
            }
            b'%' => {
                tok!(TokenKind::Percent, i);
                i += 1;
            }
            b'\\' => {
                tok!(TokenKind::Backslash, i);
                i += 1;
            }
            b'-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tok!(TokenKind::RArrow, i);
                    i += 2;
                } else {
                    tok!(TokenKind::Minus, i);
                    i += 1;
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    tok!(TokenKind::Arrow, i);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tok!(TokenKind::Le, i);
                    i += 2;
                } else {
                    tok!(TokenKind::Lt, i);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tok!(TokenKind::Ge, i);
                    i += 2;
                } else {
                    tok!(TokenKind::Gt, i);
                    i += 1;
                }
            }
            b'=' => {
                tok!(TokenKind::Eq, i);
                i += 1;
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tok!(TokenKind::Ne, i);
                    i += 2;
                } else {
                    return Err(VidaError::parse(
                        "unexpected '!'",
                        line,
                        (i - line_start) as u32 + 1,
                    ));
                }
            }
            b':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tok!(TokenKind::Assign, i);
                    i += 2;
                } else {
                    return Err(VidaError::parse(
                        "unexpected ':' (did you mean ':=')",
                        line,
                        (i - line_start) as u32 + 1,
                    ));
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(VidaError::parse(
                            "unterminated string literal",
                            line,
                            (start - line_start) as u32 + 1,
                        ));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            match bytes[i + 1] {
                                b'n' => s.push('\n'),
                                b't' => s.push('\t'),
                                b'"' => s.push('"'),
                                b'\\' => s.push('\\'),
                                c => {
                                    return Err(VidaError::parse(
                                        format!("bad escape '\\{}'", c as char),
                                        line,
                                        (i - line_start) as u32 + 1,
                                    ))
                                }
                            }
                            i += 2;
                        }
                        _ => {
                            let run_start = i;
                            while i < bytes.len() && bytes[i] != b'"' && bytes[i] != b'\\' {
                                i += 1;
                            }
                            s.push_str(std::str::from_utf8(&bytes[run_start..i]).map_err(
                                |_| {
                                    VidaError::parse(
                                        "invalid UTF-8 in string",
                                        line,
                                        (run_start - line_start) as u32 + 1,
                                    )
                                },
                            )?);
                        }
                    }
                }
                tok!(TokenKind::Str(s), start);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                if is_float {
                    let f = text.parse::<f64>().map_err(|_| {
                        VidaError::parse(
                            format!("bad float literal {text:?}"),
                            line,
                            (start - line_start) as u32 + 1,
                        )
                    })?;
                    tok!(TokenKind::Float(f), start);
                } else {
                    let n = text.parse::<i64>().map_err(|_| {
                        VidaError::parse(
                            format!("integer literal out of range {text:?}"),
                            line,
                            (start - line_start) as u32 + 1,
                        )
                    })?;
                    tok!(TokenKind::Int(n), start);
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&bytes[start..i]).unwrap();
                let kind = match word {
                    "for" => TokenKind::For,
                    "yield" => TokenKind::Yield,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "null" => TokenKind::Null,
                    "not" => TokenKind::Not,
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tok!(kind, start);
            }
            other => {
                return Err(VidaError::parse(
                    format!("unexpected character '{}'", other as char),
                    line,
                    (i - line_start) as u32 + 1,
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col: (bytes.len() - line_start) as u32 + 1,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_comprehension_tokens() {
        let ks = kinds("for { p <- Patients, p.age > 60 } yield sum 1");
        assert_eq!(ks[0], TokenKind::For);
        assert_eq!(ks[1], TokenKind::LBrace);
        assert_eq!(ks[2], TokenKind::Ident("p".into()));
        assert_eq!(ks[3], TokenKind::Arrow);
        assert!(ks.contains(&TokenKind::Gt));
        assert!(ks.contains(&TokenKind::Yield));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn distinguishes_arrow_le_lt() {
        assert_eq!(kinds("<-")[0], TokenKind::Arrow);
        assert_eq!(kinds("<=")[0], TokenKind::Le);
        assert_eq!(kinds("<")[0], TokenKind::Lt);
        assert_eq!(kinds("->")[0], TokenKind::RArrow);
        assert_eq!(kinds("-")[0], TokenKind::Minus);
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.25")[0], TokenKind::Float(4.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        // A dot not followed by a digit is projection, not a float.
        let ks = kinds("a.b");
        assert_eq!(ks[1], TokenKind::Dot);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#)[0],
            TokenKind::Str("a\nb\"c".to_string())
        );
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("1 # comment\n2");
        assert_eq!(ks[0], TokenKind::Int(1));
        assert_eq!(ks[1], TokenKind::Int(2));
    }

    #[test]
    fn position_tracking() {
        let toks = lex("for\n  xy").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn errors_carry_position() {
        let e = lex("a @ b").unwrap_err();
        let VidaError::Parse { line, col, .. } = e else {
            panic!()
        };
        assert_eq!((line, col), (1, 3));
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a : b").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("format")[0], TokenKind::Ident("format".into()));
        assert_eq!(kinds("for")[0], TokenKind::For);
        assert_eq!(kinds("iffy")[0], TokenKind::Ident("iffy".into()));
        assert_eq!(kinds("null")[0], TokenKind::Null);
    }
}
