//! Calculus terms — the paper's Table 1, plus a comprehension form.
//!
//! | Table 1 form                | AST node |
//! |-----------------------------|----------|
//! | `NULL`                      | `Expr::Const(Value::Null)` |
//! | constant `c`                | `Expr::Const` |
//! | variable `υ`                | `Expr::Var` |
//! | record projection `e.A`     | `Expr::Proj` |
//! | record construction `⟨A₁=e₁,…⟩` | `Expr::Record` |
//! | `if e₁ then e₂ else e₃`     | `Expr::If` |
//! | `e₁ op e₂`                  | `Expr::BinOp` |
//! | `λυ:τ.e`                    | `Expr::Lambda` |
//! | `e₁(e₂)`                    | `Expr::App` |
//! | zero element `Z⊕`           | `Expr::Zero` |
//! | singleton `U⊕(e)`           | `Expr::Singleton` |
//! | merging `e₁ ⊕ e₂`           | `Expr::Merge` |
//! | comprehension `⊕{e∣q₁,…,qₙ}`| `Expr::Comprehension` |
//!
//! The concrete syntax (parser/printer) writes comprehensions
//! `for { q1, ..., qn } yield ⊕ e`, as the paper does.

use std::fmt;
use vida_types::{Monoid, Value};

/// Binary primitive operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    /// Does this operator produce a boolean?
    pub fn is_predicate(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Is this a comparison between two scalars?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Not,
    Neg,
}

/// A qualifier inside a comprehension: either a generator `v <- e` binding
/// `v` to each element of the collection `e`, or a boolean filter.
#[derive(Debug, Clone, PartialEq)]
pub enum Qualifier {
    Generator(String, Expr),
    Filter(Expr),
}

impl Qualifier {
    pub fn is_generator(&self) -> bool {
        matches!(self, Qualifier::Generator(..))
    }
}

/// A monoid comprehension calculus expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Constant (includes `NULL`).
    Const(Value),
    /// Variable reference (dataset names resolve here too).
    Var(String),
    /// Record projection `e.field`.
    Proj(Box<Expr>, String),
    /// Record construction `(a := e1, b := e2)`.
    Record(Vec<(String, Expr)>),
    /// `if c then t else f`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    UnOp(UnOp, Box<Expr>),
    /// Function abstraction `\v -> e`.
    Lambda(String, Box<Expr>),
    /// Function application `f(e)`.
    App(Box<Expr>, Box<Expr>),
    /// Zero element of a monoid, `zero[sum]`.
    Zero(Monoid),
    /// Singleton construction `unit[bag](e)`.
    Singleton(Monoid, Box<Expr>),
    /// Merge `merge[bag](e1, e2)`.
    Merge(Monoid, Box<Expr>, Box<Expr>),
    /// `for { q1, ..., qn } yield ⊕ head`.
    Comprehension {
        monoid: Monoid,
        head: Box<Expr>,
        qualifiers: Vec<Qualifier>,
    },
    /// List literal `[e1, ..., en]` (sugar for merges of singletons, kept
    /// as a node for readable plans).
    ListLit(Vec<Expr>),
}

impl Expr {
    /// Shorthand: integer constant.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// Shorthand: float constant.
    pub fn float(f: f64) -> Expr {
        Expr::Const(Value::Float(f))
    }

    /// Shorthand: string constant.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Const(Value::Str(s.into()))
    }

    /// Shorthand: boolean constant.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// Shorthand: variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Shorthand: projection `self.field`.
    pub fn proj(self, field: impl Into<String>) -> Expr {
        Expr::Proj(Box::new(self), field.into())
    }

    /// Shorthand: binary operation.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::BinOp(op, Box::new(l), Box::new(r))
    }

    /// Free variables of the expression (unbound by lambdas/generators).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) | Expr::Zero(_) => {}
            Expr::Var(v) => {
                if !bound.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Proj(e, _) | Expr::UnOp(_, e) | Expr::Singleton(_, e) => {
                e.collect_free(bound, out)
            }
            Expr::Record(fields) => {
                for (_, e) in fields {
                    e.collect_free(bound, out);
                }
            }
            Expr::If(c, t, f) => {
                c.collect_free(bound, out);
                t.collect_free(bound, out);
                f.collect_free(bound, out);
            }
            Expr::BinOp(_, l, r) | Expr::Merge(_, l, r) | Expr::App(l, r) => {
                l.collect_free(bound, out);
                r.collect_free(bound, out);
            }
            Expr::Lambda(v, body) => {
                bound.push(v.clone());
                body.collect_free(bound, out);
                bound.pop();
            }
            Expr::Comprehension {
                head, qualifiers, ..
            } => {
                let mut pushed = 0usize;
                for q in qualifiers {
                    match q {
                        Qualifier::Generator(v, e) => {
                            e.collect_free(bound, out);
                            bound.push(v.clone());
                            pushed += 1;
                        }
                        Qualifier::Filter(e) => e.collect_free(bound, out),
                    }
                }
                head.collect_free(bound, out);
                for _ in 0..pushed {
                    bound.pop();
                }
            }
            Expr::ListLit(items) => {
                for e in items {
                    e.collect_free(bound, out);
                }
            }
        }
    }

    /// Capture-avoiding substitution of `var` with `replacement`.
    ///
    /// Generators and lambdas that rebind `var` shadow it; we do not rename
    /// binders (α-conversion) because the normalizer always substitutes
    /// expressions whose free variables are fresh generator names or dataset
    /// names, which cannot collide with inner binders produced by the
    /// parser's scoping rules (enforced by the type checker's
    /// no-shadowing check).
    pub fn substitute(&self, var: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Const(_) | Expr::Zero(_) => self.clone(),
            Expr::Var(v) => {
                if v == var {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Proj(e, f) => Expr::Proj(Box::new(e.substitute(var, replacement)), f.clone()),
            Expr::Record(fields) => Expr::Record(
                fields
                    .iter()
                    .map(|(n, e)| (n.clone(), e.substitute(var, replacement)))
                    .collect(),
            ),
            Expr::If(c, t, f) => Expr::If(
                Box::new(c.substitute(var, replacement)),
                Box::new(t.substitute(var, replacement)),
                Box::new(f.substitute(var, replacement)),
            ),
            Expr::BinOp(op, l, r) => Expr::BinOp(
                *op,
                Box::new(l.substitute(var, replacement)),
                Box::new(r.substitute(var, replacement)),
            ),
            Expr::UnOp(op, e) => Expr::UnOp(*op, Box::new(e.substitute(var, replacement))),
            Expr::Lambda(v, body) => {
                if v == var {
                    self.clone() // shadowed
                } else {
                    Expr::Lambda(v.clone(), Box::new(body.substitute(var, replacement)))
                }
            }
            Expr::App(f, a) => Expr::App(
                Box::new(f.substitute(var, replacement)),
                Box::new(a.substitute(var, replacement)),
            ),
            Expr::Singleton(m, e) => Expr::Singleton(*m, Box::new(e.substitute(var, replacement))),
            Expr::Merge(m, l, r) => Expr::Merge(
                *m,
                Box::new(l.substitute(var, replacement)),
                Box::new(r.substitute(var, replacement)),
            ),
            Expr::Comprehension {
                monoid,
                head,
                qualifiers,
            } => {
                let mut shadowed = false;
                let mut new_quals = Vec::with_capacity(qualifiers.len());
                for q in qualifiers {
                    match q {
                        Qualifier::Generator(v, e) => {
                            let e2 = if shadowed {
                                e.clone()
                            } else {
                                e.substitute(var, replacement)
                            };
                            if v == var {
                                shadowed = true;
                            }
                            new_quals.push(Qualifier::Generator(v.clone(), e2));
                        }
                        Qualifier::Filter(e) => {
                            new_quals.push(Qualifier::Filter(if shadowed {
                                e.clone()
                            } else {
                                e.substitute(var, replacement)
                            }));
                        }
                    }
                }
                let new_head = if shadowed {
                    head.clone()
                } else {
                    Box::new(head.substitute(var, replacement))
                };
                Expr::Comprehension {
                    monoid: *monoid,
                    head: new_head,
                    qualifiers: new_quals,
                }
            }
            Expr::ListLit(items) => Expr::ListLit(
                items
                    .iter()
                    .map(|e| e.substitute(var, replacement))
                    .collect(),
            ),
        }
    }

    /// Number of AST nodes (plan-size metric for the optimizer and tests).
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Zero(_) => 0,
            Expr::Proj(e, _) | Expr::UnOp(_, e) | Expr::Singleton(_, e) | Expr::Lambda(_, e) => {
                e.size()
            }
            Expr::Record(fs) => fs.iter().map(|(_, e)| e.size()).sum(),
            Expr::If(a, b, c) => a.size() + b.size() + c.size(),
            Expr::BinOp(_, a, b) | Expr::Merge(_, a, b) | Expr::App(a, b) => a.size() + b.size(),
            Expr::Comprehension {
                head, qualifiers, ..
            } => {
                head.size()
                    + qualifiers
                        .iter()
                        .map(|q| match q {
                            Qualifier::Generator(_, e) | Qualifier::Filter(e) => e.size(),
                        })
                        .sum::<usize>()
            }
            Expr::ListLit(items) => items.iter().map(Expr::size).sum(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(Value::Str(s)) => write!(f, "{s:?}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Proj(e, field) => write!(f, "{e}.{field}"),
            Expr::Record(fields) => {
                write!(f, "(")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} := {e}")?;
                }
                write!(f, ")")
            }
            Expr::If(c, t, e) => write!(f, "if {c} then {t} else {e}"),
            Expr::BinOp(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::UnOp(UnOp::Not, e) => write!(f, "(not {e})"),
            Expr::UnOp(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Lambda(v, body) => write!(f, "(\\{v} -> {body})"),
            Expr::App(func, arg) => write!(f, "{func}({arg})"),
            Expr::Zero(m) => write!(f, "zero[{m}]"),
            Expr::Singleton(m, e) => write!(f, "unit[{m}]({e})"),
            Expr::Merge(m, l, r) => write!(f, "merge[{m}]({l}, {r})"),
            Expr::Comprehension {
                monoid,
                head,
                qualifiers,
            } => {
                write!(f, "for {{ ")?;
                for (i, q) in qualifiers.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match q {
                        Qualifier::Generator(v, e) => write!(f, "{v} <- {e}")?,
                        Qualifier::Filter(e) => write!(f, "{e}")?,
                    }
                }
                write!(f, " }} yield {monoid} {head}")
            }
            Expr::ListLit(items) => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_types::{CollectionKind, PrimitiveMonoid};

    fn sample_comprehension() -> Expr {
        // for { e <- Employees, e.age > 40 } yield sum 1
        Expr::Comprehension {
            monoid: Monoid::Primitive(PrimitiveMonoid::Sum),
            head: Box::new(Expr::int(1)),
            qualifiers: vec![
                Qualifier::Generator("e".into(), Expr::var("Employees")),
                Qualifier::Filter(Expr::bin(
                    BinOp::Gt,
                    Expr::var("e").proj("age"),
                    Expr::int(40),
                )),
            ],
        }
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(
            sample_comprehension().to_string(),
            "for { e <- Employees, (e.age > 40) } yield sum 1"
        );
    }

    #[test]
    fn free_vars_respect_generator_binding() {
        let c = sample_comprehension();
        assert_eq!(c.free_vars(), vec!["Employees".to_string()]);
    }

    #[test]
    fn free_vars_respect_lambda_binding() {
        let e = Expr::Lambda(
            "x".into(),
            Box::new(Expr::bin(BinOp::Add, Expr::var("x"), Expr::var("y"))),
        );
        assert_eq!(e.free_vars(), vec!["y".to_string()]);
    }

    #[test]
    fn substitution_is_shadow_aware() {
        // Substituting x inside a comprehension that rebinds x must stop at
        // the rebinding generator.
        let inner = Expr::Comprehension {
            monoid: Monoid::Collection(CollectionKind::Bag),
            head: Box::new(Expr::var("x")),
            qualifiers: vec![Qualifier::Generator("x".into(), Expr::var("x"))],
        };
        // The generator *source* refers to outer x; the head refers to the
        // bound x.
        let sub = inner.substitute("x", &Expr::var("Data"));
        let Expr::Comprehension {
            head, qualifiers, ..
        } = sub
        else {
            panic!()
        };
        assert_eq!(*head, Expr::var("x")); // untouched (shadowed)
        assert_eq!(
            qualifiers[0],
            Qualifier::Generator("x".into(), Expr::var("Data"))
        );
    }

    #[test]
    fn lambda_shadowing_blocks_substitution() {
        let e = Expr::Lambda("x".into(), Box::new(Expr::var("x")));
        assert_eq!(e.substitute("x", &Expr::int(1)), e);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::int(1).size(), 1);
        assert_eq!(Expr::bin(BinOp::Add, Expr::int(1), Expr::int(2)).size(), 3);
        assert!(sample_comprehension().size() >= 7);
    }

    #[test]
    fn record_display() {
        let r = Expr::Record(vec![
            ("id".into(), Expr::var("e").proj("id")),
            ("n".into(), Expr::int(1)),
        ]);
        assert_eq!(r.to_string(), "(id := e.id, n := 1)");
    }

    #[test]
    fn predicate_classification() {
        assert!(BinOp::Eq.is_predicate());
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::And.is_predicate());
        assert!(!BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_predicate());
    }
}
