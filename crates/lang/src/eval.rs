//! Reference interpreter for the calculus.
//!
//! Direct, naive evaluation of comprehension expressions against in-memory
//! values. This is deliberately the *slow* semantics-first implementation:
//! the algebra lowering, the interpreted Volcano engine, and the JIT
//! pipelines are all differentially tested against it.
//!
//! Null semantics (documented choice, simpler than SQL's three-valued
//! logic): `=`/`!=` treat `null` as a comparable value (`null = null` is
//! true); ordered comparisons involving `null` are false; arithmetic on
//! `null` yields `null`; `null` in a boolean position is an error.

use crate::ast::{BinOp, Expr, Qualifier, UnOp};
use std::collections::HashMap;
use vida_types::{Monoid, Result, Value, VidaError};

/// Variable bindings for evaluation: maps names (dataset names, generator
/// variables) to values.
pub type Bindings = HashMap<String, Value>;

/// Evaluate an expression under the given bindings.
pub fn eval(expr: &Expr, env: &Bindings) -> Result<Value> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| VidaError::Unresolved(name.clone())),
        Expr::Proj(e, field) => {
            let v = eval(e, env)?;
            match &v {
                Value::Null => Ok(Value::Null),
                Value::Record(_) => v
                    .field(field)
                    .cloned()
                    .ok_or_else(|| VidaError::Exec(format!("no field '{field}' in {v}"))),
                other => Err(VidaError::Exec(format!(
                    "projection .{field} on non-record {other}"
                ))),
            }
        }
        Expr::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (n, e) in fields {
                out.push((n.clone(), eval(e, env)?));
            }
            Ok(Value::Record(out))
        }
        Expr::If(c, t, f) => match eval(c, env)? {
            Value::Bool(true) => eval(t, env),
            Value::Bool(false) => eval(f, env),
            other => Err(VidaError::Exec(format!(
                "if condition not boolean: {other}"
            ))),
        },
        Expr::BinOp(op, l, r) => {
            // Short-circuit boolean connectives.
            match op {
                BinOp::And => {
                    let lv = eval(l, env)?;
                    match lv.as_bool() {
                        Some(false) => return Ok(Value::Bool(false)),
                        Some(true) => {}
                        None => return Err(VidaError::Exec(format!("'and' on non-boolean {lv}"))),
                    }
                    return eval(r, env);
                }
                BinOp::Or => {
                    let lv = eval(l, env)?;
                    match lv.as_bool() {
                        Some(true) => return Ok(Value::Bool(true)),
                        Some(false) => {}
                        None => return Err(VidaError::Exec(format!("'or' on non-boolean {lv}"))),
                    }
                    return eval(r, env);
                }
                _ => {}
            }
            let lv = eval(l, env)?;
            let rv = eval(r, env)?;
            apply_binop(*op, lv, rv)
        }
        Expr::UnOp(UnOp::Not, e) => match eval(e, env)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(VidaError::Exec(format!("'not' on non-boolean {other}"))),
        },
        Expr::UnOp(UnOp::Neg, e) => match eval(e, env)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Null => Ok(Value::Null),
            other => Err(VidaError::Exec(format!("negation of non-number {other}"))),
        },
        Expr::Lambda(..) => Err(VidaError::Exec(
            "bare lambda has no runtime value; apply it".into(),
        )),
        Expr::App(f, a) => match f.as_ref() {
            Expr::Lambda(v, body) => {
                let arg = eval(a, env)?;
                let mut env2 = env.clone();
                env2.insert(v.clone(), arg);
                eval(body, &env2)
            }
            other => Err(VidaError::Exec(format!(
                "application of non-lambda expression {other}"
            ))),
        },
        Expr::Zero(m) => Ok(m.zero()),
        Expr::Singleton(m, e) => {
            let v = eval(e, env)?;
            Ok(m.unit(v))
        }
        Expr::Merge(m, l, r) => {
            let lv = eval(l, env)?;
            let rv = eval(r, env)?;
            m.finalize(m.merge(lv, rv)?)
        }
        Expr::Comprehension {
            monoid,
            head,
            qualifiers,
        } => {
            let mut acc = monoid.zero();
            eval_qualifiers(qualifiers, 0, head, *monoid, &mut env.clone(), &mut acc)?;
            monoid.finalize(acc)
        }
        Expr::ListLit(items) => {
            let mut out = Vec::with_capacity(items.len());
            for e in items {
                out.push(eval(e, env)?);
            }
            Ok(Value::list(out))
        }
    }
}

/// Recursive qualifier evaluation: generators drive nested loops, filters
/// prune, and each complete binding evaluates the head into the accumulator.
fn eval_qualifiers(
    qualifiers: &[Qualifier],
    idx: usize,
    head: &Expr,
    monoid: Monoid,
    env: &mut Bindings,
    acc: &mut Value,
) -> Result<()> {
    if idx == qualifiers.len() {
        let v = eval(head, env)?;
        let merged = monoid.merge(std::mem::replace(acc, Value::Null), monoid.unit(v))?;
        *acc = merged;
        return Ok(());
    }
    match &qualifiers[idx] {
        Qualifier::Generator(var, source) => {
            let coll = eval(source, env)?;
            let items = match coll.elements() {
                Some(items) => items.to_vec(),
                None => {
                    return Err(VidaError::Exec(format!(
                        "generator '{var}' over non-collection {coll}"
                    )))
                }
            };
            let saved = env.get(var).cloned();
            for item in items {
                env.insert(var.clone(), item);
                eval_qualifiers(qualifiers, idx + 1, head, monoid, env, acc)?;
            }
            match saved {
                Some(v) => {
                    env.insert(var.clone(), v);
                }
                None => {
                    env.remove(var);
                }
            }
            Ok(())
        }
        Qualifier::Filter(pred) => match eval(pred, env)? {
            Value::Bool(true) => eval_qualifiers(qualifiers, idx + 1, head, monoid, env, acc),
            Value::Bool(false) => Ok(()),
            other => Err(VidaError::Exec(format!(
                "filter predicate not boolean: {other}"
            ))),
        },
    }
}

/// Apply a binary operator to two values (shared with the normalizer's
/// constant folder and the interpreted engine).
pub fn apply_binop(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => match op {
                    Add => a
                        .checked_add(*b)
                        .map(Value::Int)
                        .ok_or_else(|| VidaError::Exec("integer overflow in +".into())),
                    Sub => a
                        .checked_sub(*b)
                        .map(Value::Int)
                        .ok_or_else(|| VidaError::Exec("integer overflow in -".into())),
                    Mul => a
                        .checked_mul(*b)
                        .map(Value::Int)
                        .ok_or_else(|| VidaError::Exec("integer overflow in *".into())),
                    Div => {
                        if *b == 0 {
                            Err(VidaError::Exec("division by zero".into()))
                        } else {
                            Ok(Value::Int(a / b))
                        }
                    }
                    Mod => {
                        if *b == 0 {
                            Err(VidaError::Exec("modulo by zero".into()))
                        } else {
                            Ok(Value::Int(a % b))
                        }
                    }
                    _ => unreachable!(),
                },
                (Value::Str(a), Value::Str(b)) if op == Add => Ok(Value::Str(format!("{a}{b}"))),
                _ => {
                    let a = l
                        .as_f64()
                        .ok_or_else(|| VidaError::Exec(format!("non-numeric operand {l}")))?;
                    let b = r
                        .as_f64()
                        .ok_or_else(|| VidaError::Exec(format!("non-numeric operand {r}")))?;
                    match op {
                        Add => Ok(Value::Float(a + b)),
                        Sub => Ok(Value::Float(a - b)),
                        Mul => Ok(Value::Float(a * b)),
                        Div => {
                            if b == 0.0 {
                                Err(VidaError::Exec("division by zero".into()))
                            } else {
                                Ok(Value::Float(a / b))
                            }
                        }
                        Mod => Err(VidaError::Exec("'%' requires integers".into())),
                        _ => unreachable!(),
                    }
                }
            }
        }
        Eq => Ok(Value::Bool(l.sem_eq(&r))),
        Ne => Ok(Value::Bool(!l.sem_eq(&r))),
        Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Bool(false));
            }
            let ord = l.total_cmp(&r);
            Ok(Value::Bool(match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }))
        }
        And | Or => {
            let a = l
                .as_bool()
                .ok_or_else(|| VidaError::Exec(format!("boolean op on {l}")))?;
            let b = r
                .as_bool()
                .ok_or_else(|| VidaError::Exec(format!("boolean op on {r}")))?;
            Ok(Value::Bool(if op == And { a && b } else { a || b }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn employees() -> Value {
        Value::bag(vec![
            Value::record([
                ("id", Value::Int(1)),
                ("name", Value::str("ada")),
                ("deptNo", Value::Int(10)),
                ("age", Value::Int(45)),
            ]),
            Value::record([
                ("id", Value::Int(2)),
                ("name", Value::str("bob")),
                ("deptNo", Value::Int(20)),
                ("age", Value::Int(30)),
            ]),
            Value::record([
                ("id", Value::Int(3)),
                ("name", Value::str("cyd")),
                ("deptNo", Value::Int(10)),
                ("age", Value::Int(52)),
            ]),
        ])
    }

    fn departments() -> Value {
        Value::bag(vec![
            Value::record([("id", Value::Int(10)), ("deptName", Value::str("HR"))]),
            Value::record([("id", Value::Int(20)), ("deptName", Value::str("Eng"))]),
        ])
    }

    fn env() -> Bindings {
        let mut e = Bindings::new();
        e.insert("Employees".into(), employees());
        e.insert("Departments".into(), departments());
        e
    }

    fn run(q: &str) -> Value {
        eval(&parse(q).unwrap(), &env()).unwrap()
    }

    #[test]
    fn paper_count_query() {
        // SELECT COUNT(e.id) ... WHERE d.deptName = 'HR' — two HR employees.
        let v = run("for { e <- Employees, d <- Departments, \
             e.deptNo = d.id, d.deptName = \"HR\" } yield sum 1");
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn join_projection_bag() {
        let v = run("for { e <- Employees, d <- Departments, e.deptNo = d.id } \
             yield bag (n := e.name, d := d.deptName)");
        let items = v.elements().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(
            items[0],
            Value::record([("n", Value::str("ada")), ("d", Value::str("HR"))])
        );
    }

    #[test]
    fn aggregates() {
        assert_eq!(
            run("for { e <- Employees } yield max e.age"),
            Value::Int(52)
        );
        assert_eq!(
            run("for { e <- Employees } yield min e.age"),
            Value::Int(30)
        );
        assert_eq!(
            run("for { e <- Employees } yield avg e.age"),
            Value::Float((45 + 30 + 52) as f64 / 3.0)
        );
        assert_eq!(
            run("for { e <- Employees } yield sum e.age"),
            Value::Int(127)
        );
    }

    #[test]
    fn quantifiers() {
        assert_eq!(
            run("for { e <- Employees } yield and e.age > 20"),
            Value::Bool(true)
        );
        assert_eq!(
            run("for { e <- Employees } yield any e.age > 50"),
            Value::Bool(true)
        );
        assert_eq!(
            run("for { e <- Employees } yield all e.age > 40"),
            Value::Bool(false)
        );
    }

    #[test]
    fn nested_comprehension_builds_nested_value() {
        let v = run("for { d <- Departments } yield list \
             (dept := d.deptName, \
              staff := for { e <- Employees, e.deptNo = d.id } yield list e.name)");
        let items = v.elements().unwrap();
        assert_eq!(items.len(), 2);
        let staff0 = items[0].field("staff").unwrap();
        assert_eq!(
            staff0.elements().unwrap(),
            &[Value::str("ada"), Value::str("cyd")]
        );
    }

    #[test]
    fn set_semantics_dedup() {
        let v = run("for { e <- Employees } yield set e.deptNo");
        assert_eq!(v.elements().unwrap().len(), 2);
    }

    #[test]
    fn filters_prune() {
        let v = run("for { e <- Employees, e.age >= 45, e.deptNo = 10 } yield count e");
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn empty_generator_gives_zero() {
        let v = run("for { e <- Employees, e.age > 100 } yield sum e.age");
        assert_eq!(v, Value::Int(0));
        let m = run("for { e <- Employees, e.age > 100 } yield max e.age");
        assert_eq!(m, Value::Null);
    }

    #[test]
    fn if_and_arithmetic() {
        let v = run("for { e <- Employees } yield sum (if e.age > 40 then 1 else 0)");
        assert_eq!(v, Value::Int(2));
        assert_eq!(run("3 + 4 * 2"), Value::Int(11));
        assert_eq!(run("7 / 2"), Value::Int(3));
        assert_eq!(run("7.0 / 2"), Value::Float(3.5));
        assert_eq!(run("7 % 3"), Value::Int(1));
        assert_eq!(run("\"a\" + \"b\""), Value::str("ab"));
    }

    #[test]
    fn short_circuit_boolean() {
        // The right side would error (1/0) if evaluated.
        assert_eq!(run("false and (1 / 0 = 1)"), Value::Bool(false));
        assert_eq!(run("true or (1 / 0 = 1)"), Value::Bool(true));
    }

    #[test]
    fn null_semantics() {
        assert_eq!(run("null = null"), Value::Bool(true));
        assert_eq!(run("null != 3"), Value::Bool(true));
        assert_eq!(run("null < 3"), Value::Bool(false));
        assert_eq!(run("null + 3"), Value::Null);
        assert_eq!(run("-(null)"), Value::Null);
    }

    #[test]
    fn projection_through_null_propagates() {
        let mut e = Bindings::new();
        e.insert("x".into(), Value::Null);
        assert_eq!(
            eval(&parse("x.anything").unwrap(), &e).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn lambda_application() {
        assert_eq!(run("(\\x -> x * x)(7)"), Value::Int(49));
        assert_eq!(run("(\\f -> f)(1) + 1"), Value::Int(2));
    }

    #[test]
    fn runtime_errors() {
        assert_eq!(run_err("1 / 0"), "exec");
        assert_eq!(run_err("nosuchvar"), "unresolved");
        assert_eq!(run_err("1.noField"), "exec");
        assert_eq!(run_err("if 3 then 1 else 2"), "exec");
        assert_eq!(run_err("for { x <- 42 } yield sum x"), "exec");
        assert_eq!(run_err("for { e <- Employees, e.age } yield sum 1"), "exec");
    }

    fn run_err(q: &str) -> &'static str {
        eval(&parse(q).unwrap(), &env()).unwrap_err().kind()
    }

    #[test]
    fn merge_and_unit_forms() {
        assert_eq!(run("merge[sum](3, 4)"), Value::Int(7));
        let v = run("merge[bag](unit[bag](1), unit[bag](2))");
        assert_eq!(v.elements().unwrap().len(), 2);
        assert_eq!(
            run("merge[avg](unit[avg](2), unit[avg](4))"),
            Value::Float(3.0)
        );
    }

    #[test]
    fn generator_over_list_literal() {
        assert_eq!(run("for { x <- [1, 2, 3] } yield sum x"), Value::Int(6));
    }

    #[test]
    fn generator_variable_restored_after_loop() {
        // Outer x rebound by the generator must be visible again afterwards
        // (checked by using x in a second comprehension in sequence).
        let mut e = env();
        e.insert("x".into(), Value::Int(99));
        let q = parse("for { x <- [1], x = 1 } yield sum x").unwrap();
        assert_eq!(eval(&q, &e).unwrap(), Value::Int(1));
        assert_eq!(e.get("x"), Some(&Value::Int(99)));
    }
}
