//! Recursive-descent parser for the comprehension syntax.
//!
//! ```text
//! expr    := lambda | ifExpr | compr | orExpr
//! lambda  := '\' IDENT '->' expr
//! ifExpr  := 'if' expr 'then' expr 'else' expr
//! compr   := 'for' '{' qual (',' qual)* '}' 'yield' monoid expr
//! qual    := IDENT '<-' expr | expr
//! orExpr  := andExpr ('or' andExpr)*
//! andExpr := cmp ('and' cmp)*
//! cmp     := add (('='|'!='|'<'|'<='|'>'|'>=') add)?
//! add     := mul (('+'|'-') mul)*
//! mul     := unary (('*'|'/'|'%') unary)*
//! unary   := 'not' unary | '-' unary | postfix
//! postfix := primary ('.' IDENT | '(' expr ')')*
//! primary := literal | IDENT | '(' recordOrParen ')' | '[' exprs ']'
//! ```
//!
//! `(a := e1, b := e2)` is record construction; a parenthesized single
//! expression without `:=` is grouping. The pretty-printer in [`crate::ast`]
//! emits exactly this syntax, and the `parse(print(e)) == e` round-trip is
//! property-tested.

use crate::ast::{BinOp, Expr, Qualifier, UnOp};
use crate::lexer::{lex, Token, TokenKind};
use vida_types::{Monoid, Result, Value, VidaError};

/// Parse a query string into a calculus expression.
pub fn parse(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            let (line, col) = self.here();
            Err(VidaError::parse(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                line,
                col,
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            let (line, col) = self.here();
            Err(VidaError::parse(
                format!("unexpected {} after expression", self.peek().describe()),
                line,
                col,
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                let (line, col) = self.here();
                Err(VidaError::parse(
                    format!("expected identifier, found {}", other.describe()),
                    line,
                    col,
                ))
            }
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Backslash => self.lambda(),
            TokenKind::If => self.if_expr(),
            TokenKind::For => self.comprehension(),
            _ => self.or_expr(),
        }
    }

    fn lambda(&mut self) -> Result<Expr> {
        self.expect(TokenKind::Backslash)?;
        let var = self.ident()?;
        self.expect(TokenKind::RArrow)?;
        let body = self.expr()?;
        Ok(Expr::Lambda(var, Box::new(body)))
    }

    fn if_expr(&mut self) -> Result<Expr> {
        self.expect(TokenKind::If)?;
        let c = self.expr()?;
        self.expect(TokenKind::Then)?;
        let t = self.expr()?;
        self.expect(TokenKind::Else)?;
        let e = self.expr()?;
        Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)))
    }

    fn comprehension(&mut self) -> Result<Expr> {
        self.expect(TokenKind::For)?;
        self.expect(TokenKind::LBrace)?;
        let mut qualifiers = Vec::new();
        loop {
            qualifiers.push(self.qualifier()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RBrace)?;
        self.expect(TokenKind::Yield)?;
        let monoid = self.monoid_name()?;
        let head = self.expr()?;
        Ok(Expr::Comprehension {
            monoid,
            head: Box::new(head),
            qualifiers,
        })
    }

    fn qualifier(&mut self) -> Result<Qualifier> {
        // Lookahead: IDENT '<-' starts a generator.
        if let TokenKind::Ident(name) = self.peek().clone() {
            if matches!(self.peek2(), TokenKind::Arrow) {
                self.bump(); // ident
                self.bump(); // <-
                let source = self.expr()?;
                return Ok(Qualifier::Generator(name, source));
            }
        }
        Ok(Qualifier::Filter(self.expr()?))
    }

    fn monoid_name(&mut self) -> Result<Monoid> {
        let (line, col) = self.here();
        let name = match self.bump() {
            TokenKind::Ident(s) => s,
            TokenKind::And => "and".to_string(),
            TokenKind::Or => "or".to_string(),
            other => {
                return Err(VidaError::parse(
                    format!(
                        "expected monoid name after yield, found {}",
                        other.describe()
                    ),
                    line,
                    col,
                ))
            }
        };
        Monoid::from_name(&name)
            .ok_or_else(|| VidaError::parse(format!("unknown monoid '{name}'"), line, col))
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            let e = self.unary()?;
            return Ok(Expr::UnOp(UnOp::Not, Box::new(e)));
        }
        if self.eat(&TokenKind::Minus) {
            let e = self.unary()?;
            // Fold negative literals immediately for readable ASTs.
            return Ok(match e {
                Expr::Const(Value::Int(i)) => Expr::int(-i),
                Expr::Const(Value::Float(f)) => Expr::float(-f),
                other => Expr::UnOp(UnOp::Neg, Box::new(other)),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let field = self.ident()?;
                e = Expr::Proj(Box::new(e), field);
            } else if matches!(self.peek(), TokenKind::LParen)
                && matches!(e, Expr::Var(_) | Expr::Lambda(..) | Expr::App(..))
            {
                // Function application; only lambdas/vars/apps are callable,
                // which keeps `(x + 1) (y)` unambiguous.
                self.bump();
                let arg = self.expr()?;
                self.expect(TokenKind::RParen)?;
                e = Expr::App(Box::new(e), Box::new(arg));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        let (line, col) = self.here();
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::int(i))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::float(f))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::str(s))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::bool(false))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Const(Value::Null))
            }
            TokenKind::Ident(name) => {
                self.bump();
                // zero[m] / unit[m](e) / merge[m](a, b) builtin forms.
                match name.as_str() {
                    "zero" | "unit" | "merge" if matches!(self.peek(), TokenKind::LBracket) => {
                        self.bump(); // [
                        let m = self.monoid_name()?;
                        self.expect(TokenKind::RBracket)?;
                        match name.as_str() {
                            "zero" => Ok(Expr::Zero(m)),
                            "unit" => {
                                self.expect(TokenKind::LParen)?;
                                let e = self.expr()?;
                                self.expect(TokenKind::RParen)?;
                                Ok(Expr::Singleton(m, Box::new(e)))
                            }
                            _ => {
                                self.expect(TokenKind::LParen)?;
                                let a = self.expr()?;
                                self.expect(TokenKind::Comma)?;
                                let b = self.expr()?;
                                self.expect(TokenKind::RParen)?;
                                Ok(Expr::Merge(m, Box::new(a), Box::new(b)))
                            }
                        }
                    }
                    _ => Ok(Expr::var(name)),
                }
            }
            TokenKind::LParen => {
                self.bump();
                // Record constructor iff IDENT ':=' follows.
                if let TokenKind::Ident(first) = self.peek().clone() {
                    if matches!(self.peek2(), TokenKind::Assign) {
                        let mut fields = Vec::new();
                        let mut fname = first;
                        self.bump(); // ident
                        loop {
                            self.expect(TokenKind::Assign)?;
                            let val = self.expr()?;
                            fields.push((fname.clone(), val));
                            if self.eat(&TokenKind::Comma) {
                                fname = self.ident()?;
                            } else {
                                break;
                            }
                        }
                        self.expect(TokenKind::RParen)?;
                        return Ok(Expr::Record(fields));
                    }
                }
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !matches!(self.peek(), TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Expr::ListLit(items))
            }
            TokenKind::If => self.if_expr(),
            TokenKind::For => self.comprehension(),
            TokenKind::Backslash => self.lambda(),
            other => Err(VidaError::parse(
                format!("unexpected {}", other.describe()),
                line,
                col,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_types::{CollectionKind, PrimitiveMonoid};

    #[test]
    fn parses_paper_count_query() {
        // The §3.2 example translated from SQL.
        let e = parse(
            "for { e <- Employees, d <- Departments, \
             e.deptNo = d.id, d.deptName = \"HR\" } yield sum 1",
        )
        .unwrap();
        let Expr::Comprehension {
            monoid, qualifiers, ..
        } = &e
        else {
            panic!()
        };
        assert_eq!(*monoid, Monoid::Primitive(PrimitiveMonoid::Sum));
        assert_eq!(qualifiers.len(), 4);
        assert!(qualifiers[0].is_generator());
        assert!(qualifiers[1].is_generator());
        assert!(!qualifiers[2].is_generator());
    }

    #[test]
    fn parses_nested_comprehension_with_record_head() {
        // The paper's nested department-list query.
        let e = parse(
            "for { e <- Employees, d <- Departments, e.deptNo = d.id } \
             yield set (emp := e.name, \
                        depList := for { d2 <- Departments, d.id = d2.id } yield set d2)",
        )
        .unwrap();
        let Expr::Comprehension { monoid, head, .. } = &e else {
            panic!()
        };
        assert_eq!(*monoid, Monoid::Collection(CollectionKind::Set));
        let Expr::Record(fields) = head.as_ref() else {
            panic!()
        };
        assert_eq!(fields[0].0, "emp");
        assert!(matches!(fields[1].1, Expr::Comprehension { .. }));
    }

    #[test]
    fn precedence_arithmetic_over_comparison_over_bool() {
        let e = parse("a + b * 2 < c and d > 1 or e = 2").unwrap();
        // ((a + (b*2)) < c and (d > 1)) or (e = 2)
        let Expr::BinOp(BinOp::Or, l, r) = e else {
            panic!()
        };
        let Expr::BinOp(BinOp::And, ll, _) = *l else {
            panic!()
        };
        let Expr::BinOp(BinOp::Lt, lhs, _) = *ll else {
            panic!()
        };
        let Expr::BinOp(BinOp::Add, _, mul) = *lhs else {
            panic!()
        };
        assert!(matches!(*mul, Expr::BinOp(BinOp::Mul, _, _)));
        assert!(matches!(*r, Expr::BinOp(BinOp::Eq, _, _)));
    }

    #[test]
    fn record_vs_grouping_parens() {
        assert!(matches!(parse("(a := 1)").unwrap(), Expr::Record(_)));
        assert!(matches!(
            parse("(1 + 2)").unwrap(),
            Expr::BinOp(BinOp::Add, _, _)
        ));
        let r = parse("(x := 1, y := \"two\")").unwrap();
        let Expr::Record(fields) = r else { panic!() };
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn projections_chain() {
        let e = parse("a.b.c").unwrap();
        assert_eq!(e, Expr::var("a").proj("b").proj("c"));
    }

    #[test]
    fn if_then_else() {
        let e = parse("if x > 0 then 1 else -1").unwrap();
        let Expr::If(_, t, f) = e else { panic!() };
        assert_eq!(*t, Expr::int(1));
        assert_eq!(*f, Expr::int(-1));
    }

    #[test]
    fn lambda_and_application() {
        let e = parse("(\\x -> x + 1)(41)").unwrap();
        let Expr::App(f, a) = e else { panic!() };
        assert!(matches!(*f, Expr::Lambda(..)));
        assert_eq!(*a, Expr::int(41));
    }

    #[test]
    fn builtin_monoid_forms() {
        assert_eq!(
            parse("zero[sum]").unwrap(),
            Expr::Zero(Monoid::Primitive(PrimitiveMonoid::Sum))
        );
        let u = parse("unit[bag](7)").unwrap();
        assert!(matches!(
            u,
            Expr::Singleton(Monoid::Collection(CollectionKind::Bag), _)
        ));
        let m = parse("merge[list]([1], [2])").unwrap();
        assert!(matches!(
            m,
            Expr::Merge(Monoid::Collection(CollectionKind::List), _, _)
        ));
    }

    #[test]
    fn list_literal() {
        let e = parse("[1, 2, 3]").unwrap();
        assert_eq!(
            e,
            Expr::ListLit(vec![Expr::int(1), Expr::int(2), Expr::int(3)])
        );
        assert_eq!(parse("[]").unwrap(), Expr::ListLit(vec![]));
    }

    #[test]
    fn yield_bool_monoids_via_keywords() {
        let e = parse("for { x <- Xs } yield and x.ok").unwrap();
        let Expr::Comprehension { monoid, .. } = e else {
            panic!()
        };
        assert_eq!(monoid, Monoid::Primitive(PrimitiveMonoid::All));
    }

    #[test]
    fn error_messages_have_positions() {
        let e = parse("for { x <- } yield sum 1").unwrap_err();
        assert_eq!(e.kind(), "parse");
        let e2 = parse("for { x <- Xs } yield frobnicate 1").unwrap_err();
        assert!(e2.to_string().contains("unknown monoid"));
        assert!(parse("1 +").is_err());
        assert!(parse("(a := )").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn round_trip_display_parse() {
        let queries = [
            "for { p <- Patients, (p.age > 60) } yield sum 1",
            "for { p <- Ps, g <- Gs, (p.id = g.id) } yield bag (id := p.id, v := g.v)",
            "if (x = 1) then \"a\" else \"b\"",
            "merge[bag](unit[bag](1), zero[bag])",
            "[1, 2.5, \"three\"]",
            "(\\x -> (x + 1))(2)",
        ];
        for q in queries {
            let e1 = parse(q).unwrap();
            let printed = e1.to_string();
            let e2 = parse(&printed)
                .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
            assert_eq!(e1, e2, "round trip failed for {q}");
        }
    }
}
