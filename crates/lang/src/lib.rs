//! # vida-lang
//!
//! The monoid comprehension calculus (ViDa §3.2; Fegaras & Maier).
//!
//! ViDa's internal "wrapping" query language. Queries over heterogeneous
//! models (sets, bags, lists, arrays) are expressed as monoid
//! comprehensions:
//!
//! ```text
//! for { e <- Employees, d <- Departments,
//!       e.deptNo = d.id, d.deptName = "HR" } yield sum 1
//! ```
//!
//! This crate provides the complete front half of the query lifecycle:
//!
//! - [`ast`] — the calculus terms of the paper's Table 1;
//! - [`lexer`] / [`parser`] — concrete syntax (Scala-like, as in the paper);
//! - [`typecheck()`] — static typing against a catalog of dataset types;
//! - [`normalize`] — the Fegaras-Maier rewrite rules (β-reduction,
//!   comprehension unnesting, filter hoisting, constant folding);
//! - [`eval()`] — a direct reference interpreter of the calculus, used as the
//!   semantic oracle in differential tests against the algebra engine and
//!   the JIT pipelines.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod typecheck;

pub use ast::{BinOp, Expr, Qualifier, UnOp};
pub use eval::{eval, Bindings};
pub use parser::parse;
pub use typecheck::{typecheck, TypeEnv};
