//! Naive plan interpreter — the semantic oracle.
//!
//! Executes a [`Plan`] tuple-at-a-time against in-memory datasets, using the
//! calculus interpreter for every scalar expression. Deliberately simple
//! (nested-loop joins, full materialization between operators); used to
//! differentially test the production engines in `vida-exec`.

use crate::lower::UNIT_DATASET;
use crate::plan::Plan;
use vida_lang::{eval, Bindings};
use vida_types::{Result, Value, VidaError};

/// Execute a plan against datasets bound in `env` (dataset name → collection
/// value). Returns the reduced result.
pub fn execute_plan(plan: &Plan, env: &Bindings) -> Result<Value> {
    match plan {
        Plan::Reduce {
            input,
            monoid,
            head,
        } => {
            let rows = rows_of(input, env)?;
            let mut acc = monoid.zero();
            for row in rows {
                let v = eval(head, &row)?;
                acc = monoid.merge(acc, monoid.unit(v))?;
            }
            monoid.finalize(acc)
        }
        // A plan without a terminal reduce returns its bindings as a bag of
        // records (diagnostics / EXPLAIN ANALYZE paths).
        _ => {
            let rows = rows_of(plan, env)?;
            let vars = plan.bound_vars();
            let out = rows
                .into_iter()
                .map(|row| {
                    Value::Record(
                        vars.iter()
                            .map(|v| (v.clone(), row.get(v).cloned().unwrap_or(Value::Null)))
                            .collect(),
                    )
                })
                .collect();
            Ok(Value::bag(out))
        }
    }
}

/// Materialize the bindings produced by a plan node.
fn rows_of(plan: &Plan, env: &Bindings) -> Result<Vec<Bindings>> {
    match plan {
        Plan::Scan { dataset, binding } => {
            if dataset == UNIT_DATASET {
                // The synthetic one-row relation for constant queries.
                let mut row = env.clone();
                row.insert(binding.clone(), Value::Null);
                return Ok(vec![row]);
            }
            let coll = env
                .get(dataset)
                .ok_or_else(|| VidaError::Unresolved(dataset.clone()))?;
            let items = coll.elements().ok_or_else(|| {
                VidaError::Exec(format!("dataset '{dataset}' is not a collection"))
            })?;
            Ok(items
                .iter()
                .map(|item| {
                    let mut row = env.clone();
                    row.insert(binding.clone(), item.clone());
                    row
                })
                .collect())
        }
        Plan::Select { input, predicate } => {
            let rows = rows_of(input, env)?;
            let mut out = Vec::new();
            for row in rows {
                match eval(predicate, &row)? {
                    Value::Bool(true) => out.push(row),
                    Value::Bool(false) => {}
                    other => {
                        return Err(VidaError::Exec(format!(
                            "selection predicate not boolean: {other}"
                        )))
                    }
                }
            }
            Ok(out)
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let lrows = rows_of(left, env)?;
            let rrows = rows_of(right, env)?;
            let rvars = right.bound_vars();
            let mut out = Vec::new();
            for l in &lrows {
                for r in &rrows {
                    let mut row = l.clone();
                    for v in &rvars {
                        if let Some(val) = r.get(v) {
                            row.insert(v.clone(), val.clone());
                        }
                    }
                    match eval(predicate, &row)? {
                        Value::Bool(true) => out.push(row),
                        Value::Bool(false) => {}
                        other => {
                            return Err(VidaError::Exec(format!(
                                "join predicate not boolean: {other}"
                            )))
                        }
                    }
                }
            }
            Ok(out)
        }
        Plan::Unnest {
            input,
            binding,
            path,
        } => {
            let rows = rows_of(input, env)?;
            let mut out = Vec::new();
            for row in rows {
                let coll = eval(path, &row)?;
                let items = coll.elements().ok_or_else(|| {
                    VidaError::Exec(format!("unnest path {path} produced non-collection"))
                })?;
                for item in items {
                    let mut new_row = row.clone();
                    new_row.insert(binding.clone(), item.clone());
                    out.push(new_row);
                }
            }
            Ok(out)
        }
        Plan::Reduce { .. } => {
            // Nested reduce as a row source: evaluate it and unnest if it is
            // a collection; otherwise a single row binding nothing.
            let v = execute_plan(plan, env)?;
            match v.elements() {
                Some(items) => Ok(items.iter().map(|_| env.clone()).collect()),
                None => Ok(vec![env.clone()]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use vida_lang::parse;

    fn env() -> Bindings {
        let mut e = Bindings::new();
        e.insert(
            "Employees".into(),
            Value::bag(vec![
                Value::record([
                    ("id", Value::Int(1)),
                    ("deptNo", Value::Int(10)),
                    ("age", Value::Int(45)),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    ("deptNo", Value::Int(20)),
                    ("age", Value::Int(30)),
                ]),
                Value::record([
                    ("id", Value::Int(3)),
                    ("deptNo", Value::Int(10)),
                    ("age", Value::Int(52)),
                ]),
            ]),
        );
        e.insert(
            "Departments".into(),
            Value::bag(vec![
                Value::record([("id", Value::Int(10)), ("deptName", Value::str("HR"))]),
                Value::record([("id", Value::Int(20)), ("deptName", Value::str("Eng"))]),
            ]),
        );
        e.insert(
            "Regions".into(),
            Value::bag(vec![
                Value::record([
                    ("id", Value::Int(1)),
                    ("voxels", Value::list(vec![Value::Int(5), Value::Int(15)])),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    ("voxels", Value::list(vec![Value::Int(25)])),
                ]),
            ]),
        );
        e
    }

    fn run(q: &str) -> Value {
        let plan = lower(&parse(q).unwrap()).unwrap();
        execute_plan(&plan, &env()).unwrap()
    }

    /// Differential check: algebra result == calculus interpreter result.
    fn differential(q: &str) {
        let expr = parse(q).unwrap();
        let direct = vida_lang::eval(&expr, &env()).unwrap();
        let via_plan = run(q);
        assert_eq!(direct, via_plan, "algebra deviates from calculus for {q}");
    }

    #[test]
    fn scan_select_reduce_matches_calculus() {
        differential("for { e <- Employees, e.age > 40 } yield sum e.age");
        differential("for { e <- Employees } yield count e");
        differential("for { e <- Employees } yield avg e.age");
        differential("for { e <- Employees, e.age > 100 } yield max e.age");
    }

    #[test]
    fn join_matches_calculus() {
        differential(
            "for { e <- Employees, d <- Departments, e.deptNo = d.id, \
             d.deptName = \"HR\" } yield sum 1",
        );
        differential(
            "for { e <- Employees, d <- Departments, e.deptNo = d.id } \
             yield bag (n := e.id, d := d.deptName)",
        );
    }

    #[test]
    fn unnest_matches_calculus() {
        differential("for { r <- Regions, v <- r.voxels } yield sum v");
        differential("for { r <- Regions, v <- r.voxels, v > 10 } yield count v");
        differential("for { r <- Regions, v <- r.voxels } yield bag (id := r.id, v := v)");
    }

    #[test]
    fn set_and_list_monoids() {
        differential("for { e <- Employees } yield set e.deptNo");
        differential("for { e <- Employees } yield list e.id");
    }

    #[test]
    fn three_way_join() {
        differential(
            "for { e <- Employees, d <- Departments, r <- Regions, \
             e.deptNo = d.id, r.id = e.id } yield count e",
        );
    }

    #[test]
    fn constant_queries() {
        assert_eq!(run("1 + 2"), Value::Int(3));
        assert_eq!(run("if 1 > 2 then 1 else 0"), Value::Int(0));
    }

    #[test]
    fn list_literal_source() {
        differential("for { x <- [1, 2, 3], x > 1 } yield sum x");
    }

    #[test]
    fn nested_head_comprehension() {
        differential(
            "for { d <- Departments } yield bag \
             (dept := d.deptName, \
              ages := for { e <- Employees, e.deptNo = d.id } yield list e.age)",
        );
    }

    #[test]
    fn unknown_dataset_errors() {
        let plan = lower(&parse("for { x <- Nope } yield sum 1").unwrap()).unwrap();
        assert_eq!(
            execute_plan(&plan, &env()).unwrap_err().kind(),
            "unresolved"
        );
    }
}
