//! Lowering: normalized comprehension → algebra plan.
//!
//! Qualifiers translate left to right:
//! - the first generator over a free source becomes a [`Plan::Scan`] (or a
//!   sub-plan if the source is itself a comprehension the normalizer chose
//!   to keep nested);
//! - later generators become [`Plan::Join`]s when their source is
//!   independent of earlier bindings, or [`Plan::Unnest`]s when the source
//!   is a path over an earlier binding (dependent generator);
//! - filters become [`Plan::Select`]s;
//! - the head and monoid become the terminal [`Plan::Reduce`].
//!
//! Non-comprehension expressions lower to a `Reduce` over a synthetic
//! single-row scan — queries like `1 + 1` are still valid plans.

use crate::plan::Plan;
use vida_lang::normalize::normalize;
use vida_lang::{Expr, Qualifier};
use vida_types::{Monoid, Result, VidaError};

/// Name of the synthetic one-row dataset used for constant queries.
pub const UNIT_DATASET: &str = "__unit";

/// Lower a calculus expression into an algebra plan. The expression is
/// normalized first (the paper's rewriting phase precedes translation).
pub fn lower(expr: &Expr) -> Result<Plan> {
    let normalized = normalize(expr);
    lower_normalized(&normalized)
}

/// Lower an already-normalized expression.
pub fn lower_normalized(expr: &Expr) -> Result<Plan> {
    match expr {
        Expr::Comprehension {
            monoid,
            head,
            qualifiers,
        } => lower_comprehension(*monoid, head, qualifiers),
        // Zero of a monoid: empty input reduced.
        Expr::Zero(m) => Ok(Plan::Reduce {
            input: Box::new(Plan::Select {
                input: Box::new(unit_scan()),
                predicate: Expr::bool(false),
            }),
            monoid: *m,
            head: Expr::int(0),
        }),
        // Scalar expression: evaluate once over the unit row. A `bag`
        // reduce of a single row yields a 1-element bag; to return the bare
        // scalar we use max (identity on a single value).
        other => Ok(Plan::Reduce {
            input: Box::new(unit_scan()),
            monoid: Monoid::Primitive(vida_types::PrimitiveMonoid::Max),
            head: other.clone(),
        }),
    }
}

fn unit_scan() -> Plan {
    Plan::Scan {
        dataset: UNIT_DATASET.to_string(),
        binding: "__u".to_string(),
    }
}

fn lower_comprehension(monoid: Monoid, head: &Expr, qualifiers: &[Qualifier]) -> Result<Plan> {
    let mut plan: Option<Plan> = None;
    let mut bound: Vec<String> = Vec::new();

    for q in qualifiers {
        match q {
            Qualifier::Generator(var, source) => {
                let depends_on_bound = source.free_vars().iter().any(|v| bound.contains(v));
                match (&mut plan, depends_on_bound) {
                    (None, false) => {
                        plan = Some(source_to_plan(source, var)?);
                    }
                    (None, true) => {
                        return Err(VidaError::Plan(format!(
                            "generator '{var}' depends on unbound variables"
                        )))
                    }
                    (Some(p), false) => {
                        // Independent source: a join (predicate true; the
                        // optimizer pairs it with a later Select).
                        let right = source_to_plan(source, var)?;
                        plan = Some(Plan::Join {
                            left: Box::new(std::mem::replace(p, unit_scan())),
                            right: Box::new(right),
                            predicate: Expr::bool(true),
                        });
                    }
                    (Some(p), true) => {
                        // Dependent source: unnest a path over earlier
                        // bindings.
                        plan = Some(Plan::Unnest {
                            input: Box::new(std::mem::replace(p, unit_scan())),
                            binding: var.clone(),
                            path: source.clone(),
                        });
                    }
                }
                bound.push(var.clone());
            }
            Qualifier::Filter(pred) => {
                let input = plan.take().unwrap_or_else(unit_scan);
                plan = Some(Plan::Select {
                    input: Box::new(input),
                    predicate: pred.clone(),
                });
            }
        }
    }

    Ok(Plan::Reduce {
        input: Box::new(plan.unwrap_or_else(unit_scan)),
        monoid,
        head: head.clone(),
    })
}

/// Turn a generator source into a plan producing bindings of `var`.
fn source_to_plan(source: &Expr, var: &str) -> Result<Plan> {
    match source {
        Expr::Var(dataset) => Ok(Plan::Scan {
            dataset: dataset.clone(),
            binding: var.to_string(),
        }),
        // Anything else — a comprehension the normalizer kept nested (e.g.
        // set inside sum), a literal collection, a merge — is a
        // collection-valued expression with no dependence on earlier
        // bindings: unnest it over the unit row. The operator's path
        // evaluator handles sub-comprehensions.
        other => Ok(Plan::Unnest {
            input: Box::new(unit_scan()),
            binding: var.to_string(),
            path: other.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_lang::parse;
    use vida_types::PrimitiveMonoid;

    fn plan_of(q: &str) -> Plan {
        lower(&parse(q).unwrap()).unwrap()
    }

    #[test]
    fn single_scan_reduce() {
        let p = plan_of("for { e <- Employees } yield sum e.age");
        let Plan::Reduce { input, monoid, .. } = p else {
            panic!()
        };
        assert_eq!(monoid, Monoid::Primitive(PrimitiveMonoid::Sum));
        assert!(matches!(*input, Plan::Scan { .. }));
    }

    #[test]
    fn filters_become_selects() {
        let p = plan_of("for { e <- Employees, e.age > 40 } yield count e");
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Select { input, .. } = *input else {
            panic!()
        };
        assert!(matches!(*input, Plan::Scan { .. }));
    }

    #[test]
    fn two_generators_become_join() {
        let p = plan_of("for { e <- Employees, d <- Departments, e.deptNo = d.id } yield sum 1");
        // After filter hoisting the join predicate stays as a Select above
        // the Join (the optimizer later fuses it into the join).
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Select { input, predicate } = *input else {
            panic!()
        };
        assert_eq!(predicate.to_string(), "(e.deptNo = d.id)");
        assert!(matches!(*input, Plan::Join { .. }));
    }

    #[test]
    fn dependent_generator_becomes_unnest() {
        let p = plan_of("for { b <- Regions, v <- b.voxels, v > 10 } yield count v");
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Select { input, .. } = *input else {
            panic!()
        };
        let Plan::Unnest {
            input,
            binding,
            path,
        } = *input
        else {
            panic!()
        };
        assert_eq!(binding, "v");
        assert_eq!(path.to_string(), "b.voxels");
        assert!(matches!(*input, Plan::Scan { .. }));
    }

    #[test]
    fn filter_hoisted_before_join() {
        let p =
            plan_of("for { p <- Patients, g <- Genetics, p.age > 60, p.id = g.id } yield sum 1");
        // Normalizer hoists p.age > 60 before the g generator, so the plan
        // is Select(join-pred) over Join(Select(age) over Scan, Scan).
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Select { input, .. } = *input else {
            panic!()
        };
        let Plan::Join { left, .. } = *input else {
            panic!()
        };
        assert!(matches!(*left, Plan::Select { .. }));
    }

    #[test]
    fn constant_query_lowers_to_unit_scan() {
        let p = plan_of("1 + 1");
        let Plan::Reduce { input, head, .. } = p else {
            panic!()
        };
        assert_eq!(head, Expr::int(2)); // constant-folded by normalize
        let Plan::Scan { dataset, .. } = *input else {
            panic!()
        };
        assert_eq!(dataset, UNIT_DATASET);
    }

    #[test]
    fn list_literal_generator_unnests_over_unit() {
        let p = plan_of("for { x <- [1, 2, 3] } yield sum x");
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Unnest { input, .. } = *input else {
            panic!()
        };
        assert!(matches!(*input, Plan::Scan { .. }));
    }

    #[test]
    fn nested_set_inside_sum_stays_subplan() {
        // Normalizer refuses to unnest set into sum; lowering wraps it as an
        // unnest path over the unit row.
        let p = plan_of("for { x <- for { y <- Ys } yield set y.b } yield sum x");
        let Plan::Reduce { input, monoid, .. } = p else {
            panic!()
        };
        assert_eq!(monoid, Monoid::Primitive(PrimitiveMonoid::Sum));
        let Plan::Unnest { path, .. } = *input else {
            panic!()
        };
        assert!(matches!(path, Expr::Comprehension { .. }));
    }
}
