//! Lowering: normalized comprehension → algebra plan.
//!
//! Qualifiers translate left to right:
//! - the first generator over a free source becomes a [`Plan::Scan`] (or a
//!   sub-plan if the source is itself a comprehension the normalizer chose
//!   to keep nested);
//! - later generators become [`Plan::Join`]s when their source is
//!   independent of earlier bindings, or [`Plan::Unnest`]s when the source
//!   is a path over an earlier binding (dependent generator);
//! - filters become [`Plan::Select`]s;
//! - the head and monoid become the terminal [`Plan::Reduce`].
//!
//! Non-comprehension expressions lower to a `Reduce` over a synthetic
//! single-row scan — queries like `1 + 1` are still valid plans.

use crate::plan::Plan;
use vida_lang::normalize::normalize;
use vida_lang::{Expr, Qualifier};
use vida_types::{Monoid, Result, VidaError};

/// Name of the synthetic one-row dataset used for constant queries.
pub const UNIT_DATASET: &str = "__unit";

/// Lower a calculus expression into an algebra plan. The expression is
/// normalized first (the paper's rewriting phase precedes translation).
pub fn lower(expr: &Expr) -> Result<Plan> {
    let normalized = normalize(expr);
    lower_normalized(&normalized)
}

/// Lower an already-normalized expression.
pub fn lower_normalized(expr: &Expr) -> Result<Plan> {
    match expr {
        Expr::Comprehension {
            monoid,
            head,
            qualifiers,
        } => lower_comprehension(*monoid, head, qualifiers),
        // Zero of a monoid: empty input reduced.
        Expr::Zero(m) => Ok(Plan::Reduce {
            input: Box::new(Plan::Select {
                input: Box::new(unit_scan()),
                predicate: Expr::bool(false),
            }),
            monoid: *m,
            head: Expr::int(0),
        }),
        // Scalar expression: evaluate once over the unit row. A `bag`
        // reduce of a single row yields a 1-element bag; to return the bare
        // scalar we use max (identity on a single value).
        other => Ok(Plan::Reduce {
            input: Box::new(unit_scan()),
            monoid: Monoid::Primitive(vida_types::PrimitiveMonoid::Max),
            head: other.clone(),
        }),
    }
}

/// Rotate bushy join trees into left-deep chains — the shape the generated
/// pipelines execute. `Join(L, Join(RL, RR, p2), p1)` becomes
/// `Join(Join(L, RL, p_inner), RR, p_outer)`, where the conjuncts of
/// `p2 ∧ p1` are partitioned by their free variables: those referencing
/// only `L`/`RL` bindings move into the rotated inner join (so an `L`–`RL`
/// equi-key still compiles to a hash join instead of degrading to a cross
/// product), the rest fuse into the outer join. Both shapes enumerate
/// `(l, rl, rr)` lexicographically in scan order and every conjunct is a
/// pure filter, so the result *and* tuple order are preserved (which
/// non-commutative monoids like `list` observe). Comprehension lowering
/// never produces bushy trees, but directly-constructed plans (fuzzers,
/// future join reordering) do. Returns the rotated plan and the number of
/// rotations applied.
pub fn left_deepen(plan: &Plan) -> (Plan, u32) {
    let mut rotations = 0;
    let p = deepen(plan, &mut rotations);
    (p, rotations)
}

fn deepen(plan: &Plan, rotations: &mut u32) -> Plan {
    let node = match plan {
        Plan::Scan { .. } => plan.clone(),
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(deepen(input, rotations)),
            predicate: predicate.clone(),
        },
        Plan::Unnest {
            input,
            binding,
            path,
        } => Plan::Unnest {
            input: Box::new(deepen(input, rotations)),
            binding: binding.clone(),
            path: path.clone(),
        },
        Plan::Reduce {
            input,
            monoid,
            head,
        } => Plan::Reduce {
            input: Box::new(deepen(input, rotations)),
            monoid: *monoid,
            head: head.clone(),
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(deepen(left, rotations)),
            right: Box::new(deepen(right, rotations)),
            predicate: predicate.clone(),
        },
    };
    if let Plan::Join {
        left,
        right,
        predicate,
    } = node
    {
        if let Plan::Join {
            left: rl,
            right: rr,
            predicate: p2,
        } = *right
        {
            *rotations += 1;
            // Partition the combined conjuncts: anything the rotated inner
            // join `L ⋈ RL` can already evaluate goes inside (preserving
            // hash/band opportunities there); the rest fuses into the outer
            // join. Filters commute, so result and tuple order are
            // unchanged.
            let inner_vars: Vec<String> = left
                .bound_vars()
                .into_iter()
                .chain(rl.bound_vars())
                .collect();
            let mut conjuncts = Vec::new();
            split_conjuncts(&p2, &mut conjuncts);
            split_conjuncts(&predicate, &mut conjuncts);
            let (inner, outer): (Vec<Expr>, Vec<Expr>) = conjuncts
                .into_iter()
                .partition(|c| c.free_vars().iter().all(|v| inner_vars.contains(v)));
            let rotated = Plan::Join {
                left: Box::new(Plan::Join {
                    left,
                    right: rl,
                    predicate: conjoin_all(inner),
                }),
                // `rr` is join-free (its subtree was already deepened), but
                // the new inner join's right child `rl` may be a join again:
                // re-deepen the rotated node until the spine is left-deep.
                right: rr,
                predicate: conjoin_all(outer),
            };
            return deepen(&rotated, rotations);
        }
        return Plan::Join {
            left,
            right,
            predicate,
        };
    }
    node
}

/// Flatten an `And` chain into its conjuncts, dropping literal `true`.
pub fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::BinOp(vida_lang::BinOp::And, l, r) => {
            split_conjuncts(l, out);
            split_conjuncts(r, out);
        }
        Expr::Const(vida_types::Value::Bool(true)) => {}
        other => out.push(other.clone()),
    }
}

/// Conjunction of `conjuncts` (`true` when empty).
pub fn conjoin_all(conjuncts: Vec<Expr>) -> Expr {
    conjuncts
        .into_iter()
        .reduce(|a, b| Expr::bin(vida_lang::BinOp::And, a, b))
        .unwrap_or_else(|| Expr::bool(true))
}

fn unit_scan() -> Plan {
    Plan::Scan {
        dataset: UNIT_DATASET.to_string(),
        binding: "__u".to_string(),
    }
}

fn lower_comprehension(monoid: Monoid, head: &Expr, qualifiers: &[Qualifier]) -> Result<Plan> {
    let mut plan: Option<Plan> = None;
    let mut bound: Vec<String> = Vec::new();

    for q in qualifiers {
        match q {
            Qualifier::Generator(var, source) => {
                let depends_on_bound = source.free_vars().iter().any(|v| bound.contains(v));
                match (&mut plan, depends_on_bound) {
                    (None, false) => {
                        plan = Some(source_to_plan(source, var)?);
                    }
                    (None, true) => {
                        return Err(VidaError::Plan(format!(
                            "generator '{var}' depends on unbound variables"
                        )))
                    }
                    (Some(p), false) => {
                        // Independent source: a join (predicate true; the
                        // optimizer pairs it with a later Select).
                        let right = source_to_plan(source, var)?;
                        plan = Some(Plan::Join {
                            left: Box::new(std::mem::replace(p, unit_scan())),
                            right: Box::new(right),
                            predicate: Expr::bool(true),
                        });
                    }
                    (Some(p), true) => {
                        // Dependent source: unnest a path over earlier
                        // bindings.
                        plan = Some(Plan::Unnest {
                            input: Box::new(std::mem::replace(p, unit_scan())),
                            binding: var.clone(),
                            path: source.clone(),
                        });
                    }
                }
                bound.push(var.clone());
            }
            Qualifier::Filter(pred) => {
                let input = plan.take().unwrap_or_else(unit_scan);
                plan = Some(Plan::Select {
                    input: Box::new(input),
                    predicate: pred.clone(),
                });
            }
        }
    }

    Ok(Plan::Reduce {
        input: Box::new(plan.unwrap_or_else(unit_scan)),
        monoid,
        head: head.clone(),
    })
}

/// Turn a generator source into a plan producing bindings of `var`.
fn source_to_plan(source: &Expr, var: &str) -> Result<Plan> {
    match source {
        Expr::Var(dataset) => Ok(Plan::Scan {
            dataset: dataset.clone(),
            binding: var.to_string(),
        }),
        // Anything else — a comprehension the normalizer kept nested (e.g.
        // set inside sum), a literal collection, a merge — is a
        // collection-valued expression with no dependence on earlier
        // bindings: unnest it over the unit row. The operator's path
        // evaluator handles sub-comprehensions.
        other => Ok(Plan::Unnest {
            input: Box::new(unit_scan()),
            binding: var.to_string(),
            path: other.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_lang::parse;
    use vida_types::PrimitiveMonoid;

    fn plan_of(q: &str) -> Plan {
        lower(&parse(q).unwrap()).unwrap()
    }

    #[test]
    fn single_scan_reduce() {
        let p = plan_of("for { e <- Employees } yield sum e.age");
        let Plan::Reduce { input, monoid, .. } = p else {
            panic!()
        };
        assert_eq!(monoid, Monoid::Primitive(PrimitiveMonoid::Sum));
        assert!(matches!(*input, Plan::Scan { .. }));
    }

    #[test]
    fn filters_become_selects() {
        let p = plan_of("for { e <- Employees, e.age > 40 } yield count e");
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Select { input, .. } = *input else {
            panic!()
        };
        assert!(matches!(*input, Plan::Scan { .. }));
    }

    #[test]
    fn two_generators_become_join() {
        let p = plan_of("for { e <- Employees, d <- Departments, e.deptNo = d.id } yield sum 1");
        // After filter hoisting the join predicate stays as a Select above
        // the Join (the optimizer later fuses it into the join).
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Select { input, predicate } = *input else {
            panic!()
        };
        assert_eq!(predicate.to_string(), "(e.deptNo = d.id)");
        assert!(matches!(*input, Plan::Join { .. }));
    }

    #[test]
    fn dependent_generator_becomes_unnest() {
        let p = plan_of("for { b <- Regions, v <- b.voxels, v > 10 } yield count v");
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Select { input, .. } = *input else {
            panic!()
        };
        let Plan::Unnest {
            input,
            binding,
            path,
        } = *input
        else {
            panic!()
        };
        assert_eq!(binding, "v");
        assert_eq!(path.to_string(), "b.voxels");
        assert!(matches!(*input, Plan::Scan { .. }));
    }

    #[test]
    fn filter_hoisted_before_join() {
        let p =
            plan_of("for { p <- Patients, g <- Genetics, p.age > 60, p.id = g.id } yield sum 1");
        // Normalizer hoists p.age > 60 before the g generator, so the plan
        // is Select(join-pred) over Join(Select(age) over Scan, Scan).
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Select { input, .. } = *input else {
            panic!()
        };
        let Plan::Join { left, .. } = *input else {
            panic!()
        };
        assert!(matches!(*left, Plan::Select { .. }));
    }

    #[test]
    fn constant_query_lowers_to_unit_scan() {
        let p = plan_of("1 + 1");
        let Plan::Reduce { input, head, .. } = p else {
            panic!()
        };
        assert_eq!(head, Expr::int(2)); // constant-folded by normalize
        let Plan::Scan { dataset, .. } = *input else {
            panic!()
        };
        assert_eq!(dataset, UNIT_DATASET);
    }

    #[test]
    fn list_literal_generator_unnests_over_unit() {
        let p = plan_of("for { x <- [1, 2, 3] } yield sum x");
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Unnest { input, .. } = *input else {
            panic!()
        };
        assert!(matches!(*input, Plan::Scan { .. }));
    }

    #[test]
    fn left_deepen_rotates_bushy_joins() {
        let scan = |d: &str, b: &str| Plan::Scan {
            dataset: d.into(),
            binding: b.into(),
        };
        // A ⋈[a.k = c.k] (B ⋈[b.k = c.k] C): bushy, inner predicate only
        // references the right subtree.
        let bushy = Plan::Join {
            left: Box::new(scan("A", "a")),
            right: Box::new(Plan::Join {
                left: Box::new(scan("B", "b")),
                right: Box::new(scan("C", "c")),
                predicate: parse("b.k = c.k").unwrap(),
            }),
            predicate: parse("a.k = c.k").unwrap(),
        };
        let (deep, rotations) = left_deepen(&bushy);
        assert_eq!(rotations, 1);
        let Plan::Join { left, right, .. } = &deep else {
            panic!()
        };
        assert!(matches!(**right, Plan::Scan { .. }));
        let Plan::Join {
            left: ll,
            right: lr,
            ..
        } = &**left
        else {
            panic!("expected left-deep inner join, got:\n{left}")
        };
        assert!(matches!(**ll, Plan::Scan { .. }));
        assert!(matches!(**lr, Plan::Scan { .. }));
        // Binding order is preserved: a, b, c.
        assert_eq!(deep.bound_vars(), vec!["a", "b", "c"]);
        // Left-deep plans are untouched.
        let (same, n) = left_deepen(&deep);
        assert_eq!(n, 0);
        assert_eq!(same, deep);
    }

    #[test]
    fn left_deepen_pushes_left_side_conjuncts_into_inner_join() {
        let scan = |d: &str, b: &str| Plan::Scan {
            dataset: d.into(),
            binding: b.into(),
        };
        // `a.k = b.k` only references the rotated inner join's bindings: it
        // must land there (keeping the hash-join opportunity) instead of
        // leaving the inner join a cross product.
        let bushy = Plan::Join {
            left: Box::new(scan("A", "a")),
            right: Box::new(Plan::Join {
                left: Box::new(scan("B", "b")),
                right: Box::new(scan("C", "c")),
                predicate: parse("b.k < c.k").unwrap(),
            }),
            predicate: parse("a.k = b.k and a.k < c.k").unwrap(),
        };
        let (deep, rotations) = left_deepen(&bushy);
        assert_eq!(rotations, 1);
        let Plan::Join {
            left,
            predicate: outer,
            ..
        } = &deep
        else {
            panic!()
        };
        let Plan::Join {
            predicate: inner, ..
        } = &**left
        else {
            panic!()
        };
        assert_eq!(inner.to_string(), "(a.k = b.k)");
        let outer = outer.to_string();
        assert!(
            outer.contains("b.k < c.k") && outer.contains("a.k < c.k"),
            "{outer}"
        );
    }

    #[test]
    fn left_deepen_preserves_results_and_order() {
        use crate::interp::execute_plan;
        use vida_lang::Bindings;
        use vida_types::Value;
        let mut env = Bindings::new();
        let table = |ids: &[i64]| {
            Value::bag(
                ids.iter()
                    .map(|&i| Value::record([("k", Value::Int(i))]))
                    .collect(),
            )
        };
        env.insert("A".into(), table(&[1, 2, 3]));
        env.insert("B".into(), table(&[2, 3, 4]));
        env.insert("C".into(), table(&[3, 4, 5]));
        let scan = |d: &str, b: &str| Plan::Scan {
            dataset: d.into(),
            binding: b.into(),
        };
        // list monoid pins the exact tuple enumeration order.
        let bushy = Plan::Reduce {
            input: Box::new(Plan::Join {
                left: Box::new(scan("A", "a")),
                right: Box::new(Plan::Join {
                    left: Box::new(scan("B", "b")),
                    right: Box::new(scan("C", "c")),
                    predicate: parse("b.k < c.k").unwrap(),
                }),
                predicate: parse("a.k <= b.k").unwrap(),
            }),
            monoid: Monoid::Collection(vida_types::CollectionKind::List),
            head: parse("a.k + b.k + c.k").unwrap(),
        };
        let (deep, rotations) = left_deepen(&bushy);
        assert_eq!(rotations, 1);
        assert_eq!(
            execute_plan(&deep, &env).unwrap(),
            execute_plan(&bushy, &env).unwrap()
        );
    }

    #[test]
    fn left_deepen_never_reorders_bindings() {
        // Regression pin for the `--no-plan-opt` baseline: `left_deepen`
        // rotates bushy trees but NEVER reorders relations or picks a
        // cheaper build side, no matter how misordered the plan is (a huge
        // relation on the build side stays there). Cost-based reordering is
        // vida-optimizer's `reorder_joins`, layered on top by the exec
        // pipeline when `plan_opt` is enabled.
        let scan = |d: &str, b: &str| Plan::Scan {
            dataset: d.into(),
            binding: b.into(),
        };
        // TinyDim ⋈ (HugeFact1 ⋈ HugeFact2): the worst possible order —
        // both facts end up as build sides after rotation.
        let bushy = Plan::Join {
            left: Box::new(scan("TinyDim", "d")),
            right: Box::new(Plan::Join {
                left: Box::new(scan("HugeFact1", "f1")),
                right: Box::new(scan("HugeFact2", "f2")),
                predicate: parse("f1.k = f2.k").unwrap(),
            }),
            predicate: parse("d.k = f1.k").unwrap(),
        };
        let (deep, rotations) = left_deepen(&bushy);
        assert_eq!(rotations, 1);
        // Binding order is exactly the syntactic order: d, f1, f2.
        assert_eq!(deep.bound_vars(), vec!["d", "f1", "f2"]);
        // And a misordered two-way join is left fully untouched.
        let two_way = Plan::Join {
            left: Box::new(scan("TinyDim", "d")),
            right: Box::new(scan("HugeFact1", "f")),
            predicate: parse("d.k = f.k").unwrap(),
        };
        let (same, n) = left_deepen(&two_way);
        assert_eq!(n, 0);
        assert_eq!(same, two_way);
    }

    #[test]
    fn nested_set_inside_sum_stays_subplan() {
        // Normalizer refuses to unnest set into sum; lowering wraps it as an
        // unnest path over the unit row.
        let p = plan_of("for { x <- for { y <- Ys } yield set y.b } yield sum x");
        let Plan::Reduce { input, monoid, .. } = p else {
            panic!()
        };
        assert_eq!(monoid, Monoid::Primitive(PrimitiveMonoid::Sum));
        let Plan::Unnest { path, .. } = *input else {
            panic!()
        };
        assert!(matches!(path, Expr::Comprehension { .. }));
    }
}
