//! Algebra-level rewrites.
//!
//! The calculus normalizer already hoisted filters; these rules operate on
//! plan shape:
//!
//! - **selection-into-join**: `Select(p, Join(l, r, q))` with `p` spanning
//!   both sides becomes `Join(l, r, p ∧ q)` so the join operator sees its
//!   equi-join keys;
//! - **selection pushdown**: a select whose predicate only references one
//!   side of a join moves below the join;
//! - **select merging**: adjacent selects combine into one conjunction
//!   (fewer generated operators, one fused predicate kernel);
//! - **select-below-unnest**: predicates not referencing the unnest binding
//!   move below the unnest.

use crate::plan::Plan;
use vida_lang::{BinOp, Expr};

/// Apply rewrites to fixpoint (bounded).
pub fn rewrite(plan: &Plan) -> Plan {
    let mut cur = plan.clone();
    for _ in 0..32 {
        let next = pass(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

fn pass(plan: &Plan) -> Plan {
    let p = map_children(plan, &pass);
    rewrite_node(p)
}

fn map_children(plan: &Plan, f: &dyn Fn(&Plan) -> Plan) -> Plan {
    match plan {
        Plan::Scan { .. } => plan.clone(),
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(f(input)),
            predicate: predicate.clone(),
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => Plan::Join {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            predicate: predicate.clone(),
        },
        Plan::Unnest {
            input,
            binding,
            path,
        } => Plan::Unnest {
            input: Box::new(f(input)),
            binding: binding.clone(),
            path: path.clone(),
        },
        Plan::Reduce {
            input,
            monoid,
            head,
        } => Plan::Reduce {
            input: Box::new(f(input)),
            monoid: *monoid,
            head: head.clone(),
        },
    }
}

fn rewrite_node(plan: Plan) -> Plan {
    match plan {
        Plan::Select { input, predicate } => match *input {
            // Merge adjacent selects.
            Plan::Select {
                input: inner,
                predicate: p2,
            } => Plan::Select {
                input: inner,
                predicate: Expr::bin(BinOp::And, p2, predicate),
            },
            // Push into / below a join.
            Plan::Join {
                left,
                right,
                predicate: jp,
            } => {
                let lvars = left.bound_vars();
                let rvars = right.bound_vars();
                let fv = predicate.free_vars();
                let refs_left = fv.iter().any(|v| lvars.contains(v));
                let refs_right = fv.iter().any(|v| rvars.contains(v));
                match (refs_left, refs_right) {
                    (true, false) => Plan::Join {
                        left: Box::new(Plan::Select {
                            input: left,
                            predicate,
                        }),
                        right,
                        predicate: jp,
                    },
                    (false, true) => Plan::Join {
                        left,
                        right: Box::new(Plan::Select {
                            input: right,
                            predicate,
                        }),
                        predicate: jp,
                    },
                    // Spans both sides (or neither): fuse into the join
                    // predicate.
                    _ => Plan::Join {
                        left,
                        right,
                        predicate: and(jp, predicate),
                    },
                }
            }
            // Push below an unnest when the binding is not referenced.
            Plan::Unnest {
                input: uin,
                binding,
                path,
            } => {
                if predicate.free_vars().contains(&binding) {
                    Plan::Select {
                        input: Box::new(Plan::Unnest {
                            input: uin,
                            binding,
                            path,
                        }),
                        predicate,
                    }
                } else {
                    Plan::Unnest {
                        input: Box::new(Plan::Select {
                            input: uin,
                            predicate,
                        }),
                        binding,
                        path,
                    }
                }
            }
            other => Plan::Select {
                input: Box::new(other),
                predicate,
            },
        },
        other => other,
    }
}

fn and(a: Expr, b: Expr) -> Expr {
    match a {
        Expr::Const(vida_types::Value::Bool(true)) => b,
        _ => Expr::bin(BinOp::And, a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_plan;
    use crate::lower::lower;
    use vida_lang::{parse, Bindings};
    use vida_types::Value;

    fn plan_of(q: &str) -> Plan {
        rewrite(&lower(&parse(q).unwrap()).unwrap())
    }

    #[test]
    fn join_predicate_fused() {
        let p = plan_of("for { e <- Employees, d <- Departments, e.deptNo = d.id } yield sum 1");
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Join { predicate, .. } = *input else {
            panic!("select should fuse into join, got something else")
        };
        assert_eq!(predicate.to_string(), "(e.deptNo = d.id)");
    }

    #[test]
    fn one_sided_predicate_pushed_below_join() {
        let p = plan_of(
            "for { e <- Employees, d <- Departments, e.deptNo = d.id, \
             d.deptName = \"HR\" } yield sum 1",
        );
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Join { right, .. } = *input else {
            panic!()
        };
        // d.deptName = "HR" must sit on the right (Departments) side.
        let Plan::Select { predicate, .. } = *right else {
            panic!("expected select pushed to right side")
        };
        assert!(predicate.to_string().contains("deptName"));
    }

    #[test]
    fn adjacent_selects_merge() {
        let raw = Plan::Select {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::Scan {
                    dataset: "X".into(),
                    binding: "x".into(),
                }),
                predicate: parse("x.a > 1").unwrap(),
            }),
            predicate: parse("x.b < 2").unwrap(),
        };
        let r = rewrite(&raw);
        let Plan::Select { input, predicate } = r else {
            panic!()
        };
        assert!(matches!(*input, Plan::Scan { .. }));
        assert_eq!(predicate.to_string(), "((x.a > 1) and (x.b < 2))");
    }

    #[test]
    fn select_pushes_below_unnest_when_independent() {
        let p = plan_of("for { r <- Regions, v <- r.voxels, r.id > 1 } yield count v");
        // r.id > 1 does not mention v: it must sit below the unnest.
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        let Plan::Unnest { input, .. } = *input else {
            panic!(
                "expected unnest on top after pushdown, got:\n{p}",
                p = input
            )
        };
        assert!(matches!(*input, Plan::Select { .. }));
    }

    #[test]
    fn select_stays_above_unnest_when_dependent() {
        let p = plan_of("for { r <- Regions, v <- r.voxels, v > 10 } yield count v");
        let Plan::Reduce { input, .. } = p else {
            panic!()
        };
        assert!(matches!(*input, Plan::Select { .. }));
    }

    #[test]
    fn rewrites_preserve_semantics() {
        let mut env = Bindings::new();
        env.insert(
            "Employees".into(),
            Value::bag(vec![
                Value::record([
                    ("id", Value::Int(1)),
                    ("deptNo", Value::Int(10)),
                    ("age", Value::Int(61)),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    ("deptNo", Value::Int(20)),
                    ("age", Value::Int(35)),
                ]),
            ]),
        );
        env.insert(
            "Departments".into(),
            Value::bag(vec![
                Value::record([("id", Value::Int(10)), ("deptName", Value::str("HR"))]),
                Value::record([("id", Value::Int(20)), ("deptName", Value::str("Eng"))]),
            ]),
        );
        env.insert(
            "Regions".into(),
            Value::bag(vec![Value::record([
                ("id", Value::Int(1)),
                ("voxels", Value::list(vec![Value::Int(5), Value::Int(15)])),
            ])]),
        );
        let queries = [
            "for { e <- Employees, d <- Departments, e.deptNo = d.id, d.deptName = \"HR\" } yield sum 1",
            "for { e <- Employees, e.age > 40, e.age < 100 } yield count e",
            "for { r <- Regions, v <- r.voxels, r.id > 0, v > 10 } yield sum v",
            "for { e <- Employees, d <- Departments, e.deptNo = d.id } yield bag (a := e.age, n := d.deptName)",
        ];
        for q in queries {
            let unopt = lower(&parse(q).unwrap()).unwrap();
            let opt = rewrite(&unopt);
            assert_eq!(
                execute_plan(&unopt, &env).unwrap(),
                execute_plan(&opt, &env).unwrap(),
                "rewrite changed semantics for {q}"
            );
        }
    }

    #[test]
    fn rewrite_is_idempotent() {
        let p = plan_of(
            "for { e <- Employees, d <- Departments, e.deptNo = d.id, e.age > 1 } yield sum 1",
        );
        assert_eq!(rewrite(&p), p);
    }
}
