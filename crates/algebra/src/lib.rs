//! # vida-algebra
//!
//! The nested relational algebra ViDa lowers comprehensions into (§3.2, §4).
//!
//! "During query translation, ViDa translates the monoid calculus to an
//! intermediate algebraic representation, which is more amenable to
//! traditional optimization techniques. ViDa's executor and optimizer
//! operate over this algebraic form."
//!
//! The operator set follows Fegaras & Maier's algebra:
//!
//! - [`Plan::Scan`] — bind each unit of a dataset to a variable;
//! - [`Plan::Select`] — filter by a predicate over bound variables;
//! - [`Plan::Join`] — combine two sub-plans (predicate may be `true` for a
//!   product; equi-join detection enables hash joins downstream);
//! - [`Plan::Unnest`] — bind each element of a collection-valued path of an
//!   already-bound variable (the nested-data workhorse);
//! - [`Plan::Reduce`] — the paper's *generalized projection*: evaluates the
//!   head under each binding and folds with the output monoid. "The
//!   operator's behavior also changes depending on the type of collection to
//!   be returned" (§4) — dedup for `set`, order-preservation for `list`.
//!
//! [`lower()`] translates a normalized comprehension into a plan; [`rewrite()`]
//! applies algebra-level rules (selection pushdown, select-merging);
//! [`interp`] is a naive tuple-at-a-time evaluator used as the semantic
//! oracle — the production engines live in `vida-exec`.

pub mod interp;
pub mod lower;
pub mod plan;
pub mod rewrite;

pub use interp::execute_plan;
pub use lower::lower;
pub use plan::Plan;
pub use rewrite::rewrite;
