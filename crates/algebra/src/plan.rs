//! Algebra plan nodes.

use std::fmt;
use vida_lang::Expr;
use vida_types::Monoid;

/// A logical query plan over the nested relational algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Bind each retrieval unit of `dataset` to variable `binding`.
    Scan { dataset: String, binding: String },
    /// Keep bindings satisfying `predicate`.
    Select { input: Box<Plan>, predicate: Expr },
    /// Pair every binding of `left` with every binding of `right` that
    /// satisfies `predicate` (`Expr::Const(true)` = product).
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        predicate: Expr,
    },
    /// For each input binding, bind every element of the collection-valued
    /// `path` to `binding` (flattening nested data).
    Unnest {
        input: Box<Plan>,
        binding: String,
        path: Expr,
    },
    /// Evaluate `head` under each binding and fold with `monoid`.
    Reduce {
        input: Box<Plan>,
        monoid: Monoid,
        head: Expr,
    },
}

impl Plan {
    /// Variables bound by this plan (generator names), in binding order.
    pub fn bound_vars(&self) -> Vec<String> {
        match self {
            Plan::Scan { binding, .. } => vec![binding.clone()],
            Plan::Select { input, .. } | Plan::Reduce { input, .. } => input.bound_vars(),
            Plan::Join { left, right, .. } => {
                let mut v = left.bound_vars();
                v.extend(right.bound_vars());
                v
            }
            Plan::Unnest { input, binding, .. } => {
                let mut v = input.bound_vars();
                v.push(binding.clone());
                v
            }
        }
    }

    /// Datasets scanned anywhere in the plan.
    pub fn datasets(&self) -> Vec<String> {
        match self {
            Plan::Scan { dataset, .. } => vec![dataset.clone()],
            Plan::Select { input, .. }
            | Plan::Reduce { input, .. }
            | Plan::Unnest { input, .. } => input.datasets(),
            Plan::Join { left, right, .. } => {
                let mut v = left.datasets();
                v.extend(right.datasets());
                v
            }
        }
    }

    /// Number of operators in the plan.
    pub fn num_operators(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } => 0,
            Plan::Select { input, .. }
            | Plan::Reduce { input, .. }
            | Plan::Unnest { input, .. } => input.num_operators(),
            Plan::Join { left, right, .. } => left.num_operators() + right.num_operators(),
        }
    }

    /// If the predicate of a join is a conjunction containing an equality
    /// `l.a = r.b` between one variable from each side, return
    /// `(left_expr, right_expr)` — the hash-join opportunity the generated
    /// operators exploit.
    pub fn equi_join_keys(
        predicate: &Expr,
        left_vars: &[String],
        right_vars: &[String],
    ) -> Option<(Expr, Expr)> {
        use vida_lang::BinOp;
        match predicate {
            Expr::BinOp(BinOp::Eq, l, r) => {
                let lv = l.free_vars();
                let rv = r.free_vars();
                let in_left = |vars: &[String]| vars.iter().all(|v| left_vars.contains(v));
                let in_right = |vars: &[String]| vars.iter().all(|v| right_vars.contains(v));
                if !lv.is_empty() && !rv.is_empty() {
                    if in_left(&lv) && in_right(&rv) {
                        return Some((l.as_ref().clone(), r.as_ref().clone()));
                    }
                    if in_right(&lv) && in_left(&rv) {
                        return Some((r.as_ref().clone(), l.as_ref().clone()));
                    }
                }
                None
            }
            Expr::BinOp(BinOp::And, l, r) => Plan::equi_join_keys(l, left_vars, right_vars)
                .or_else(|| Plan::equi_join_keys(r, left_vars, right_vars)),
            _ => None,
        }
    }

    /// If the predicate of a join is a conjunction containing a range
    /// comparison `l.a OP r.b` (`<`, `<=`, `>`, `>=`) between one variable
    /// from each side, return `(left_expr, right_expr, op)` normalized so
    /// that `left_expr op right_expr` holds — the band-join opportunity the
    /// sort-probe theta pipeline exploits.
    pub fn band_join_keys(
        predicate: &Expr,
        left_vars: &[String],
        right_vars: &[String],
    ) -> Option<(Expr, Expr, vida_lang::BinOp)> {
        use vida_lang::BinOp;
        let flip = |op: BinOp| match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        match predicate {
            Expr::BinOp(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), l, r) => {
                let lv = l.free_vars();
                let rv = r.free_vars();
                let in_left = |vars: &[String]| vars.iter().all(|v| left_vars.contains(v));
                let in_right = |vars: &[String]| vars.iter().all(|v| right_vars.contains(v));
                if !lv.is_empty() && !rv.is_empty() {
                    if in_left(&lv) && in_right(&rv) {
                        return Some((l.as_ref().clone(), r.as_ref().clone(), *op));
                    }
                    if in_right(&lv) && in_left(&rv) {
                        return Some((r.as_ref().clone(), l.as_ref().clone(), flip(*op)));
                    }
                }
                None
            }
            Expr::BinOp(vida_lang::BinOp::And, l, r) => {
                Plan::band_join_keys(l, left_vars, right_vars)
                    .or_else(|| Plan::band_join_keys(r, left_vars, right_vars))
            }
            _ => None,
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { dataset, binding } => {
                writeln!(f, "{pad}Scan {dataset} as {binding}")
            }
            Plan::Select { input, predicate } => {
                writeln!(f, "{pad}Select {predicate}")?;
                input.fmt_indented(f, depth + 1)
            }
            Plan::Join {
                left,
                right,
                predicate,
            } => {
                writeln!(f, "{pad}Join on {predicate}")?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            Plan::Unnest {
                input,
                binding,
                path,
            } => {
                writeln!(f, "{pad}Unnest {path} as {binding}")?;
                input.fmt_indented(f, depth + 1)
            }
            Plan::Reduce {
                input,
                monoid,
                head,
            } => {
                writeln!(f, "{pad}Reduce [{monoid}] {head}")?;
                input.fmt_indented(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_lang::{parse, BinOp};
    use vida_types::PrimitiveMonoid;

    fn sample_plan() -> Plan {
        Plan::Reduce {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::Select {
                    input: Box::new(Plan::Scan {
                        dataset: "Patients".into(),
                        binding: "p".into(),
                    }),
                    predicate: parse("p.age > 60").unwrap(),
                }),
                right: Box::new(Plan::Scan {
                    dataset: "Genetics".into(),
                    binding: "g".into(),
                }),
                predicate: parse("p.id = g.id").unwrap(),
            }),
            monoid: Monoid::Primitive(PrimitiveMonoid::Sum),
            head: parse("1").unwrap(),
        }
    }

    #[test]
    fn bound_vars_in_order() {
        assert_eq!(sample_plan().bound_vars(), vec!["p", "g"]);
    }

    #[test]
    fn datasets_collected() {
        assert_eq!(sample_plan().datasets(), vec!["Patients", "Genetics"]);
    }

    #[test]
    fn operator_count() {
        assert_eq!(sample_plan().num_operators(), 5);
    }

    #[test]
    fn equi_join_detection() {
        let p = parse("p.id = g.id").unwrap();
        let keys = Plan::equi_join_keys(&p, &["p".into()], &["g".into()]).unwrap();
        assert_eq!(keys.0.to_string(), "p.id");
        assert_eq!(keys.1.to_string(), "g.id");
        // Reversed orientation normalizes to (left, right).
        let p2 = parse("g.id = p.id").unwrap();
        let keys2 = Plan::equi_join_keys(&p2, &["p".into()], &["g".into()]).unwrap();
        assert_eq!(keys2.0.to_string(), "p.id");
        // Inequality is not an equi-join.
        let p3 = parse("p.id < g.id").unwrap();
        assert!(Plan::equi_join_keys(&p3, &["p".into()], &["g".into()]).is_none());
        // Same-side equality is not a join key.
        let p4 = parse("p.id = p.other").unwrap();
        assert!(Plan::equi_join_keys(&p4, &["p".into()], &["g".into()]).is_none());
        // Conjunctions search both sides.
        let p5 = parse("p.a > 1 and p.id = g.id").unwrap();
        assert!(Plan::equi_join_keys(&p5, &["p".into()], &["g".into()]).is_some());
        let _ = BinOp::Eq;
    }

    #[test]
    fn band_join_detection() {
        let p = parse("p.id < g.id").unwrap();
        let (l, r, op) = Plan::band_join_keys(&p, &["p".into()], &["g".into()]).unwrap();
        assert_eq!(l.to_string(), "p.id");
        assert_eq!(r.to_string(), "g.id");
        assert_eq!(op, BinOp::Lt);
        // Reversed orientation normalizes by flipping the comparison.
        let p2 = parse("g.id <= p.id").unwrap();
        let (l2, _, op2) = Plan::band_join_keys(&p2, &["p".into()], &["g".into()]).unwrap();
        assert_eq!(l2.to_string(), "p.id");
        assert_eq!(op2, BinOp::Ge);
        // Equality is not a band.
        let p3 = parse("p.id = g.id").unwrap();
        assert!(Plan::band_join_keys(&p3, &["p".into()], &["g".into()]).is_none());
        // Same-side ranges are not join bands.
        let p4 = parse("p.id < p.other").unwrap();
        assert!(Plan::band_join_keys(&p4, &["p".into()], &["g".into()]).is_none());
        // Conjunctions search both sides.
        let p5 = parse("p.a = 1 and p.id > g.id").unwrap();
        let (_, _, op5) = Plan::band_join_keys(&p5, &["p".into()], &["g".into()]).unwrap();
        assert_eq!(op5, BinOp::Gt);
    }

    #[test]
    fn display_is_tree_shaped() {
        let s = sample_plan().to_string();
        assert!(s.starts_with("Reduce [sum] 1"));
        assert!(s.contains("Join on (p.id = g.id)"));
        assert!(s.contains("    Scan Patients as p"));
    }
}
