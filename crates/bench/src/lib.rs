//! # vida-bench
//!
//! Benchmark support: deterministic raw-data fixtures and a minimal timing
//! harness. The workspace builds offline with no external dependencies, so
//! the benches under `benches/` use this harness (plain `fn main`,
//! `harness = false`) instead of criterion; swapping criterion back in when
//! vendored is a mechanical change confined to this crate.

use std::time::{Duration, Instant};
use vida_types::{Schema, Type};
use vida_workload::Rng;

/// Deterministic fixture generators for the HBP-like schema.
pub mod fixtures {
    use super::*;

    /// Schema of the `Patients` CSV fixture.
    pub fn patients_schema() -> Schema {
        Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)])
    }

    /// Schema of the `Genetics` JSON fixture.
    pub fn genetics_schema() -> Schema {
        Schema::from_pairs([("id", Type::Int), ("snp", Type::Float)])
    }

    /// A `Patients` CSV file with a header row and `n` rows.
    pub fn patients_csv(n: usize, seed: u64) -> Vec<u8> {
        patients_csv_rows(0, n, seed)
    }

    /// Rows `lo..hi` of the `Patients` fixture (header only when `lo` is
    /// 0). The generator burns the same RNG draws as rows `0..lo`, so
    /// appending `rows(lo, hi)` to a file holding `rows(0, lo)` produces
    /// exactly `rows(0, hi)` — the append-replay drivers grow files with
    /// suffixes the cold oracle can regenerate.
    pub fn patients_csv_rows(lo: usize, hi: usize, seed: u64) -> Vec<u8> {
        let mut rng = Rng::new(seed);
        let cities = ["geneva", "bern", "zurich", "basel"];
        let mut out = if lo == 0 {
            String::from("id,age,city\n")
        } else {
            String::new()
        };
        for id in 0..hi {
            let age = 18 + rng.below(70);
            let city = cities[rng.below(cities.len() as u64) as usize];
            if id >= lo {
                out.push_str(&format!("{id},{age},{city}\n"));
            }
        }
        out.into_bytes()
    }

    /// A `Genetics` newline-delimited JSON file with `n` objects.
    pub fn genetics_json(n: usize, seed: u64) -> Vec<u8> {
        genetics_json_rows(0, n, seed)
    }

    /// Objects `lo..hi` of the `Genetics` fixture (see
    /// [`patients_csv_rows`] for the suffix contract).
    pub fn genetics_json_rows(lo: usize, hi: usize, seed: u64) -> Vec<u8> {
        let mut rng = Rng::new(seed);
        let mut out = String::new();
        for id in 0..hi {
            let snp = (rng.below(1000) as f64) / 1000.0;
            if id >= lo {
                out.push_str(&format!("{{\"id\":{id},\"snp\":{snp:.3}}}\n"));
            }
        }
        out.into_bytes()
    }

    /// Schema of the nested `Regions` JSON fixture.
    pub fn regions_schema() -> Schema {
        use vida_types::CollectionKind;
        Schema::from_pairs([
            ("id", Type::Int),
            (
                "voxels",
                Type::Collection(CollectionKind::List, Box::new(Type::Int)),
            ),
        ])
    }

    /// A nested `Regions` newline-delimited JSON file: `n` objects with
    /// ragged integer `voxels` arrays (0–7 elements, some rows empty).
    pub fn regions_json(n: usize, seed: u64) -> Vec<u8> {
        regions_json_rows(0, n, seed)
    }

    /// Objects `lo..hi` of the `Regions` fixture (see
    /// [`patients_csv_rows`] for the suffix contract).
    pub fn regions_json_rows(lo: usize, hi: usize, seed: u64) -> Vec<u8> {
        let mut rng = Rng::new(seed);
        let mut out = String::new();
        for id in 0..hi {
            let len = rng.below(8);
            let voxels: Vec<String> = (0..len).map(|_| format!("{}", rng.below(100))).collect();
            if id >= lo {
                out.push_str(&format!(
                    "{{\"id\":{id},\"voxels\":[{}]}}\n",
                    voxels.join(",")
                ));
            }
        }
        out.into_bytes()
    }
}

/// One timed measurement: the best-of-samples wall time for `iters`
/// executions of `f`.
pub fn time<F: FnMut()>(samples: usize, iters: usize, mut f: F) -> Duration {
    // Warm-up run keeps one-time costs (lazy stats, page faults) out of the
    // measurement.
    f();
    let mut best = Duration::MAX;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters.max(1) {
            f();
        }
        best = best.min(t0.elapsed() / iters.max(1) as u32);
    }
    best
}

/// Run and report one benchmark case.
pub fn case<F: FnMut()>(name: &str, samples: usize, iters: usize, f: F) -> Duration {
    let d = time(samples, iters, f);
    println!("{name:<44} {:>12.3} µs/iter", d.as_secs_f64() * 1e6);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_formats::csv::CsvFile;
    use vida_formats::json::JsonFile;

    #[test]
    fn fixtures_parse_with_the_plugins() {
        let csv = CsvFile::from_bytes(
            "Patients",
            fixtures::patients_csv(50, 1),
            b',',
            true,
            fixtures::patients_schema(),
        )
        .unwrap();
        assert_eq!(csv.num_rows(), 50);
        let json = JsonFile::from_bytes(
            "Genetics",
            fixtures::genetics_json(30, 1),
            fixtures::genetics_schema(),
        )
        .unwrap();
        assert_eq!(json.num_objects(), 30);
    }

    #[test]
    fn row_range_generators_compose_by_append() {
        // The suffix contract the append-replay drivers rely on: gluing
        // rows(lo, hi) after rows(0, lo) is byte-identical to rows(0, hi).
        let mut glued = fixtures::patients_csv_rows(0, 12, 3);
        glued.extend(fixtures::patients_csv_rows(12, 20, 3));
        assert_eq!(glued, fixtures::patients_csv(20, 3));

        let mut glued = fixtures::genetics_json_rows(0, 7, 5);
        glued.extend(fixtures::genetics_json_rows(7, 18, 5));
        assert_eq!(glued, fixtures::genetics_json(18, 5));

        let mut glued = fixtures::regions_json_rows(0, 9, 17);
        glued.extend(fixtures::regions_json_rows(9, 14, 17));
        assert_eq!(glued, fixtures::regions_json(14, 17));
    }

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(fixtures::patients_csv(10, 3), fixtures::patients_csv(10, 3));
        assert_ne!(fixtures::patients_csv(10, 3), fixtures::patients_csv(10, 4));
    }

    #[test]
    fn timer_reports_positive_durations() {
        let mut x = 0u64;
        let d = time(2, 10, || x = x.wrapping_add(1));
        assert!(d <= Duration::from_secs(1));
        assert!(x >= 20);
    }
}
