//! `reproduce` — entry point for replaying the paper's experiments.
//!
//! The measurement drivers land incrementally; today the binary documents
//! the available figures and runs a smoke-level demonstration of the
//! cache-locality experiment so the wiring (workload generator → SQL/
//! comprehension front-end → JIT pipelines → cache stats) is exercised end
//! to end.

use std::sync::Arc;
use vida_bench::fixtures;
use vida_cache::CacheManager;
use vida_exec::{run_jit_with_stats, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_workload::{generate, WorkloadConfig};

const USAGE: &str = "\
reproduce — replay the ViDa (CIDR'15) experiments

USAGE:
    reproduce <figure> [--threads N]

FIGURES:
    cache-locality    HBP-style query mix over raw CSV/JSON; reports the
                      share of queries served entirely from column caches
                      (the paper reports ~80% for the HBP workload)
    figure5           (planned) response times across raw formats
    jit-vs-interp     (planned) generated pipelines vs static operators;
                      see `cargo bench` for the current microbenchmarks

OPTIONS:
    --threads N       morsel-driven worker threads for query execution
                      (default 1 = serial; see `cargo bench` parallel_scale
                      for the thread-sweep microbenchmark)

Run with no arguments to print this message.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure = None;
    let mut threads = 1usize;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads expects a positive integer\n\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other if figure.is_none() => figure = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    match figure.as_deref() {
        Some("cache-locality") => cache_locality(threads),
        Some(other) => {
            eprintln!("unknown figure '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
        None => println!("{USAGE}"),
    }
}

fn cache_locality(threads: usize) {
    let catalog = MemoryCatalog::new();
    let patients = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(500, 11),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(CsvPlugin::new(patients)));
    let genetics = JsonFile::from_bytes(
        "Genetics",
        fixtures::genetics_json(500, 13),
        fixtures::genetics_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(genetics)));

    let cache = Arc::new(CacheManager::new(8 << 20));
    let opts = JitOptions {
        cache: Some(Arc::clone(&cache)),
        threads,
        ..Default::default()
    };
    let queries = generate(&WorkloadConfig {
        queries: 200,
        ..Default::default()
    });

    let mut cached = 0usize;
    let mut total = 0usize;
    for q in &queries {
        let expr = match vida_lang::parse(&q.text) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("skipping unparseable query: {e}");
                continue;
            }
        };
        let plan = vida_algebra::rewrite(&vida_algebra::lower(&expr).expect("lowers"));
        match run_jit_with_stats(&plan, &catalog, &opts) {
            Ok((_, stats)) => {
                total += 1;
                if stats.served_from_cache {
                    cached += 1;
                }
            }
            Err(e) => eprintln!("query failed ({e}): {}", q.text),
        }
    }
    let pct = 100.0 * cached as f64 / total.max(1) as f64;
    println!("worker threads:          {threads}");
    println!("queries executed:        {total}");
    println!("served fully from cache: {cached} ({pct:.1}%)");
    println!(
        "cache hit rate:          {:.1}%",
        cache.stats().hit_rate() * 100.0
    );
}
