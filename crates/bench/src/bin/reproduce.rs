//! `reproduce` — entry point for replaying the paper's experiments.
//!
//! The measurement drivers land incrementally; today the binary documents
//! the available figures and runs a smoke-level demonstration of the
//! cache-locality experiment so the wiring (workload generator → SQL/
//! comprehension front-end → JIT pipelines → cost model → cache stats) is
//! exercised end to end.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use vida_bench::fixtures;
use vida_cache::CacheManager;
use vida_exec::{run_jit_with_stats, Engine, JitOptions, MemoryCatalog, SourceProvider};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_formats::MapMode;
use vida_optimizer::CostModel;
use vida_server::{read_response, QueryRequest, QueryServer, ServerConfig, SharedBuffer};
use vida_trace::{chrome_trace_json, global_metrics, MetricsSnapshot, QueryTrace};
use vida_workload::{
    generate, generate_append_replay, generate_join_heavy, generate_nested_heavy,
    generate_scan_heavy, WorkloadConfig,
};

const USAGE: &str = "\
reproduce — replay the ViDa (CIDR'15) experiments

USAGE:
    reproduce <figure> [OPTIONS]
    reproduce validate-json <path>...

FIGURES:
    cache-locality    HBP-style query mix over raw CSV/JSON; reports the
                      share of queries served entirely from column caches
                      (the paper reports ~80% for the HBP workload) and the
                      replica layouts the cost model picked
    figure5           (planned) response times across raw formats
    jit-vs-interp     (planned) generated pipelines vs static operators;
                      see `cargo bench` for the current microbenchmarks

UTILITIES:
    validate-json     parse each file with the engine's own JSON reader and
                      exit non-zero if any is missing or malformed (CI uses
                      this to check --trace-out / --stats-json artifacts)

OPTIONS:
    --threads N       morsel-driven worker threads for query execution
                      (default 1 = serial; clamped to the machine's
                      available parallelism; see `cargo bench
                      parallel_scale` for the thread-sweep microbenchmark)
    --queries N       number of workload queries to generate (default 200)
    --mix MIX         workload mix: 'hbp' (selections, joins, and
                      aggregates with the paper's locality skew; default),
                      'scan-heavy' (full-column scans and folds),
                      'nested' (unnests over nested JSON and non-equi
                      theta joins — the shapes the unnest/theta pipelines
                      compile), 'join' (equi-join chains in bad syntactic
                      order — the shapes the cost-based join reorder
                      fixes), or 'append' (append-replay: rows are
                      appended to the raw inputs between batches and the
                      same batch re-runs — reports tail rows scanned and
                      fold partials resumed, the O(delta) re-query
                      counters)
    --locality F      fraction of selections drawn from the hot key range,
                      0.0..=1.0 (default 0.8 — the regime in which the
                      paper reports ~80% of queries served from caches)
    --budget-mb N     cache budget in MiB (default 8); smaller budgets push
                      the cost model toward compact replica layouts
    --no-cost-model   disable cost-model layout selection (every replica is
                      cached as parsed values, the pre-model behaviour)
    --no-plan-opt     disable plan-level optimization (cost-based join
                      reordering, build-side choice, and selectivity-
                      ordered fused conjuncts): every plan runs in its
                      syntactic order
    --no-mmap         read the raw inputs into owned buffers instead of
                      memory-mapping them (the escape hatch for filesystems
                      where mmap misbehaves; the default maps every input)
    --assert-fused    exit non-zero unless streaming execution fused every
                      pipeline (operator_materializations must be 0 across
                      the whole workload — the CI smoke contract)
    --serve           run the workload through the vida-server front end
                      instead of the serial driver: a resident engine plus
                      a query service with admission control, concurrent
                      executors time-slicing one shared worker pool, and
                      length-prefixed streaming responses; prints the
                      admission / peak-in-flight / time-slicing counters
                      and exits non-zero if any response fails
    --clients N       in-process client threads submitting to the server
                      (default 4; implies --serve)
    --trace-out PATH  record a span trace for every query (JitOptions::
                      trace) and write the whole workload as Chrome
                      trace-event JSON — open it in Perfetto or
                      chrome://tracing, one track per worker — plus print
                      EXPLAIN ANALYZE for the slowest query
    --stats-json PATH write accumulated ExecStats, cache counters, the
                      engine metrics delta for this run, and per-query
                      timing aggregates as a JSON object

Run with no arguments to print this message.";

struct Args {
    figure: Option<String>,
    threads: usize,
    queries: usize,
    mix: String,
    locality: f64,
    budget_mb: usize,
    cost_model: bool,
    plan_opt: bool,
    assert_fused: bool,
    mmap: bool,
    serve: bool,
    clients: usize,
    trace_out: Option<PathBuf>,
    stats_json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figure: None,
        threads: 1,
        queries: 200,
        mix: "hbp".to_string(),
        locality: 0.8,
        budget_mb: 8,
        cost_model: true,
        plan_opt: true,
        assert_fused: false,
        mmap: true,
        serve: false,
        clients: 4,
        trace_out: None,
        stats_json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = argv.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--threads" => {
                args.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--threads expects a positive integer")?;
            }
            "--queries" => {
                args.queries = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--queries expects a positive integer")?;
            }
            "--mix" => {
                let m = iter
                    .next()
                    .ok_or("--mix expects 'hbp', 'scan-heavy', 'nested', 'join', or 'append'")?;
                if !["hbp", "scan-heavy", "nested", "join", "append"].contains(&m.as_str()) {
                    return Err(format!(
                        "unknown mix '{m}' (use 'hbp', 'scan-heavy', 'nested', 'join', or \
                         'append')"
                    ));
                }
                args.mix = m.clone();
            }
            "--locality" => {
                args.locality = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or("--locality expects a float in 0.0..=1.0")?;
            }
            "--budget-mb" => {
                args.budget_mb = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--budget-mb expects a positive integer")?;
            }
            "--serve" => args.serve = true,
            "--clients" => {
                args.clients = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--clients expects a positive integer")?;
                args.serve = true;
            }
            "--no-cost-model" => args.cost_model = false,
            "--no-plan-opt" => args.plan_opt = false,
            "--assert-fused" => args.assert_fused = true,
            "--no-mmap" => args.mmap = false,
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(
                    iter.next().ok_or("--trace-out expects a path")?,
                ));
            }
            "--stats-json" => {
                args.stats_json = Some(PathBuf::from(
                    iter.next().ok_or("--stats-json expects a path")?,
                ));
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if args.figure.is_none() && !other.starts_with('-') => {
                args.figure = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() {
    // `validate-json` takes positional paths, not figure options — dispatch
    // before the flag parser.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("validate-json") {
        validate_json(&argv[1..]);
        return;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match args.figure.as_deref() {
        Some("cache-locality") => cache_locality(&args),
        Some(other) => {
            eprintln!("unknown figure '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
        None => println!("{USAGE}"),
    }
}

/// Check each file parses with the engine's own JSON reader (the same one
/// the query path uses); exit non-zero on the first failure.
fn validate_json(paths: &[String]) {
    if paths.is_empty() {
        eprintln!("validate-json expects at least one path\n\n{USAGE}");
        std::process::exit(2);
    }
    for path in paths {
        let data = match std::fs::read(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("FAIL: {path}: {e}");
                std::process::exit(1);
            }
        };
        match vida_formats::json::parse_json(&data, 0, path) {
            Ok((_, end)) if data[end..].iter().all(|b| b.is_ascii_whitespace()) => {
                println!("ok: {path} ({} bytes)", data.len());
            }
            Ok((_, end)) => {
                eprintln!("FAIL: {path}: trailing garbage after byte {end}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("FAIL: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn cache_locality(args: &Args) {
    // Stage the raw inputs as real files so queries run against the same
    // ingest path users get: mmap'd by default, owned reads with --no-mmap.
    let dir = std::env::temp_dir().join(format!("vida-reproduce-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let patients_path = dir.join("patients.csv");
    let genetics_path = dir.join("genetics.json");
    let regions_path = dir.join("regions.json");
    std::fs::write(&patients_path, fixtures::patients_csv(500, 11)).expect("write fixture");
    std::fs::write(&genetics_path, fixtures::genetics_json(500, 13)).expect("write fixture");
    std::fs::write(&regions_path, fixtures::regions_json(250, 17)).expect("write fixture");
    let mode = if args.mmap {
        MapMode::Auto
    } else {
        MapMode::Never
    };

    let catalog = MemoryCatalog::new();
    let patients = CsvFile::open_with(
        "Patients",
        &patients_path,
        b',',
        true,
        fixtures::patients_schema(),
        mode,
    )
    .expect("fixture parses");
    catalog.register(Arc::new(CsvPlugin::new(patients)));
    let genetics = JsonFile::open_with(
        "Genetics",
        &genetics_path,
        fixtures::genetics_schema(),
        mode,
    )
    .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(genetics)));
    let regions = JsonFile::open_with("Regions", &regions_path, fixtures::regions_schema(), mode)
        .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(regions)));

    let cache = Arc::new(CacheManager::new(args.budget_mb << 20));
    let model = args.cost_model.then(|| Arc::new(CostModel::new()));
    let opts = JitOptions {
        cache: Some(Arc::clone(&cache)),
        cost_model: model.clone(),
        threads: args.threads,
        trace: args.trace_out.is_some(),
        plan_opt: args.plan_opt,
        ..Default::default()
    };
    let config = WorkloadConfig {
        queries: args.queries,
        locality: args.locality,
        ..Default::default()
    };
    let queries = match args.mix.as_str() {
        "scan-heavy" => generate_scan_heavy(&config),
        "nested" => generate_nested_heavy(&config),
        "join" => generate_join_heavy(&config),
        "append" => generate_append_replay(&config),
        _ => generate(&config),
    };
    if args.serve {
        // The server path runs the batch once (no append replay) through
        // the vida-server front end and prints its own counters.
        serve_smoke(args, catalog, opts, &queries);
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    // The append-replay mix re-runs the same batch after each of three
    // on-disk appends (~2% of each input per round); every other mix runs
    // its batch once over static files.
    let rounds = if args.mix == "append" { 4 } else { 1 };

    let mut cached = 0usize;
    let mut total = 0usize;
    let mut accum = vida_exec::ExecStats::default();
    // Per-query traces on a shared workload timeline (offset ns from t0)
    // and per-query wall times, for --trace-out / --stats-json.
    let mut traces: Vec<(u64, QueryTrace)> = Vec::new();
    let mut timings_ns: Vec<u64> = Vec::new();
    let mut slowest: Option<(u64, usize, String)> = None;
    let metrics_before = global_metrics().snapshot();
    let t0 = Instant::now();
    for round in 0..rounds {
        if round > 0 {
            // Grow the raw inputs in place; the resident catalog notices
            // at query description time and pays only for the suffix.
            use std::io::Write;
            let grow = |path: &PathBuf, bytes: Vec<u8>| {
                let mut fh = std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .expect("reopen fixture for append");
                fh.write_all(&bytes).expect("append fixture rows");
            };
            grow(
                &patients_path,
                fixtures::patients_csv_rows(500 + (round - 1) * 10, 500 + round * 10, 11),
            );
            grow(
                &genetics_path,
                fixtures::genetics_json_rows(500 + (round - 1) * 10, 500 + round * 10, 13),
            );
            grow(
                &regions_path,
                fixtures::regions_json_rows(250 + (round - 1) * 5, 250 + round * 5, 17),
            );
        }
        for q in &queries {
            let expr = match vida_lang::parse(&q.text) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("skipping unparseable query: {e}");
                    continue;
                }
            };
            let plan = vida_algebra::rewrite(&vida_algebra::lower(&expr).expect("lowers"));
            let offset_ns = t0.elapsed().as_nanos() as u64;
            match run_jit_with_stats(&plan, &catalog, &opts) {
                Ok((_, mut stats)) => {
                    let elapsed_ns = (t0.elapsed().as_nanos() as u64).saturating_sub(offset_ns);
                    total += 1;
                    timings_ns.push(elapsed_ns);
                    if stats.served_from_cache {
                        cached += 1;
                    }
                    if let Some(trace) = stats.trace.take() {
                        if slowest.as_ref().map_or(true, |(ns, _, _)| elapsed_ns > *ns) {
                            slowest = Some((elapsed_ns, traces.len(), q.text.clone()));
                        }
                        traces.push((offset_ns, *trace));
                    }
                    accum.accumulate(&stats);
                }
                Err(e) => eprintln!("query failed ({e}): {}", q.text),
            }
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let metrics_delta = global_metrics().snapshot().since(&metrics_before);
    let pct = 100.0 * cached as f64 / total.max(1) as f64;
    println!(
        "workload mix:            {} ({} queries, locality {:.2})",
        args.mix, total, args.locality
    );
    println!(
        "worker threads:          {} (effective {})",
        args.threads,
        opts.effective_threads()
    );
    let mapped = ["Patients", "Genetics", "Regions"]
        .iter()
        .filter(|n| catalog.plugin(n).map(|p| p.is_mapped()).unwrap_or(false))
        .count();
    println!(
        "input backing:           {} (3 raw inputs, {mapped} mmap'd)",
        if args.mmap {
            "mmap"
        } else {
            "owned (--no-mmap)"
        }
    );
    println!(
        "cache budget:            {} MiB (used {} KiB)",
        args.budget_mb,
        cache.used_bytes() >> 10
    );
    println!("served fully from cache: {cached} ({pct:.1}%)");
    println!(
        "pipeline coverage:       {} unnest stages, {} theta joins, {} whole-query fallbacks",
        accum.unnest_pipelines, accum.theta_pipelines, accum.whole_query_fallbacks
    );
    println!(
        "streaming fusion:        {} operator materializations, max fused depth {}",
        accum.operator_materializations, accum.fused_stage_depth
    );
    if args.plan_opt {
        println!(
            "plan optimizer:          {} joins reordered, {} conjuncts reordered, \
             cardinality error {:.3}",
            accum.joins_reordered,
            accum.conjuncts_reordered,
            accum.cardinality_error()
        );
    } else {
        println!("plan optimizer:          off (--no-plan-opt)");
    }
    println!(
        "cache hit rate:          {:.1}%",
        cache.stats().hit_rate() * 100.0
    );
    if args.mix == "append" {
        println!(
            "incremental re-query:    {} tail rows scanned, {} fold partials resumed \
             ({} replay rounds)",
            accum.tail_rows_scanned,
            accum.partials_reused,
            rounds - 1
        );
    }
    match &model {
        Some(m) => {
            let layouts: Vec<String> = cache
                .layout_counts()
                .iter()
                .map(|(l, n)| format!("{}={n}", l.name()))
                .collect();
            println!(
                "cost model:              on ({} fields tracked)",
                m.fields_tracked()
            );
            println!("replica layouts:         {}", layouts.join(" "));
        }
        None => println!("cost model:              off (all replicas parsed values)"),
    }

    if let Some(path) = &args.trace_out {
        let refs: Vec<(u64, &QueryTrace)> = traces.iter().map(|(o, t)| (*o, t)).collect();
        std::fs::write(path, chrome_trace_json(&refs)).expect("write trace JSON");
        println!(
            "trace:                   {} queries, {} spans -> {}",
            traces.len(),
            traces.iter().map(|(_, t)| t.spans().len()).sum::<usize>(),
            path.display()
        );
        if let Some((ns, idx, text)) = &slowest {
            println!(
                "\nslowest query ({:.3} ms): {}",
                *ns as f64 / 1e6,
                text.trim()
            );
            print!("{}", traces[*idx].1.explain_analyze());
        }
    }

    if let Some(path) = &args.stats_json {
        std::fs::write(
            path,
            stats_json(
                args,
                total,
                wall_ns,
                &timings_ns,
                &accum,
                &cache,
                &metrics_delta,
            ),
        )
        .expect("write stats JSON");
        println!("stats:                   -> {}", path.display());
    }

    let _ = std::fs::remove_dir_all(&dir);
    if args.assert_fused && accum.operator_materializations != 0 {
        eprintln!(
            "FAIL: --assert-fused: {} operator materializations (streaming \
             execution must fuse every pipeline-covered shape)",
            accum.operator_materializations
        );
        std::process::exit(1);
    }
}

/// The `--serve` path: the same staged catalog and workload mix, but
/// driven through the `vida-server` query service — one resident
/// [`Engine`] behind a bounded admission queue, `--clients` in-process
/// client threads submitting concurrently, and executor threads
/// time-slicing the one shared worker pool at morsel granularity.
/// Streams every response through the length-prefixed wire protocol into
/// a per-query buffer, verifies each one parses and succeeded, prints
/// the admission / peak-in-flight / time-slicing counters the CI legs
/// grep, and exits non-zero if any response failed.
fn serve_smoke(
    args: &Args,
    catalog: MemoryCatalog,
    opts: JitOptions,
    queries: &[vida_workload::QuerySpec],
) {
    let executors = args.clients.max(2);
    let engine = Arc::new(Engine::new(Arc::new(catalog), opts));
    let server = QueryServer::start(
        Arc::clone(&engine),
        ServerConfig {
            executors,
            queue_depth: 64,
        },
    );
    let metrics_before = global_metrics().snapshot();
    let t0 = Instant::now();
    let buffers: Vec<(usize, SharedBuffer)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client| {
                let server = &server;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for (i, q) in queries.iter().enumerate() {
                        if i % args.clients != client {
                            continue;
                        }
                        let buf = SharedBuffer::default();
                        // Admission control is a bounded queue: a rejected
                        // submit already wrote a busy response into the
                        // sink, so clear it and resubmit after a beat.
                        while !server
                            .submit(QueryRequest::new(q.text.clone(), Box::new(buf.clone())))
                        {
                            buf.take();
                            std::thread::yield_now();
                        }
                        mine.push((i, buf));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    server.drain();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let metrics_delta = global_metrics().snapshot().since(&metrics_before);
    let stats = server.stats();

    let mut rows = 0usize;
    let mut failed = 0usize;
    for (i, buf) in &buffers {
        let bytes = buf.take();
        match read_response(&mut bytes.as_slice()) {
            Ok(resp) if resp.is_ok() => rows += resp.rows.len(),
            Ok(resp) => {
                failed += 1;
                eprintln!(
                    "query #{i} failed: {}",
                    resp.error.as_deref().unwrap_or("unknown")
                );
            }
            Err(e) => {
                failed += 1;
                eprintln!("query #{i}: malformed response ({e})");
            }
        }
    }

    println!(
        "server smoke:            {} clients -> {executors} executors over {} shared workers \
         ({wall_ms:.1} ms)",
        args.clients,
        engine.threads()
    );
    println!(
        "admission:               {} admitted, {} rejected (bounded queue), {} completed, \
         {} failed",
        stats.admitted, stats.rejected, stats.completed, stats.failed
    );
    println!(
        "concurrent queries:      peak in flight {}",
        stats.peak_in_flight
    );
    println!(
        "time slicing:            {} runs attached to the resident pool, {} multiplexed \
         morsel claims",
        metrics_delta.pool_attached_runs, metrics_delta.pool_multiplexed_claims
    );
    println!(
        "responses:               {} ok, {rows} rows streamed, {failed} malformed/failed",
        buffers.len() - failed
    );
    if let Some(path) = &args.stats_json {
        std::fs::write(path, server.stats_json()).expect("write stats JSON");
        println!("stats:                   -> {}", path.display());
    }
    server.shutdown();
    if failed > 0 {
        std::process::exit(1);
    }
}

/// The --stats-json document: run parameters, accumulated `ExecStats`,
/// cache counters, the engine-metrics delta for this run, and per-query
/// timing aggregates. Hand-rolled JSON, parseable by `validate-json`.
#[allow(clippy::too_many_arguments)]
fn stats_json(
    args: &Args,
    total: usize,
    wall_ns: u64,
    timings_ns: &[u64],
    accum: &vida_exec::ExecStats,
    cache: &CacheManager,
    metrics: &MetricsSnapshot,
) -> String {
    let cs = cache.stats();
    let probes = (cs.hits + cs.misses).max(1);
    let min = timings_ns.iter().min().copied().unwrap_or(0);
    let max = timings_ns.iter().max().copied().unwrap_or(0);
    let sum: u64 = timings_ns.iter().sum();
    let mean = sum / timings_ns.len().max(1) as u64;
    format!(
        "{{\"figure\":\"cache-locality\",\"mix\":\"{}\",\"queries_run\":{total},\
         \"threads\":{},\"mmap\":{},\"locality\":{:.3},\"budget_mb\":{},\
         \"wall_ns\":{wall_ns},\
         \"timings_ns\":{{\"count\":{},\"total\":{sum},\"min\":{min},\"max\":{max},\
         \"mean\":{mean}}},\
         \"exec\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\"used_bytes\":{}}},\
         \"metrics\":{}}}",
        args.mix,
        args.threads,
        args.mmap,
        args.locality,
        args.budget_mb,
        timings_ns.len(),
        accum.to_json(),
        cs.hits,
        cs.misses,
        cs.hits as f64 / probes as f64,
        cache.used_bytes(),
        metrics.to_json(),
    )
}
