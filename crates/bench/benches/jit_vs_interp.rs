//! Generated pipelines vs static pre-cooked operators (ViDa §4, Figure 6's
//! motivation): the same plan through `run_jit` and `run_volcano`.

use std::sync::Arc;
use vida_algebra::{lower, rewrite};
use vida_bench::{case, fixtures};
use vida_exec::{run_jit, run_volcano, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::plugin::CsvPlugin;
use vida_lang::parse;

fn main() {
    let catalog = MemoryCatalog::new();
    let csv = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(2_000, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(CsvPlugin::new(csv)));

    let plan = rewrite(
        &lower(&parse("for { p <- Patients, p.age > 40 } yield sum p.age").expect("parses"))
            .expect("lowers"),
    );
    let opts = JitOptions::default();
    let interp_opts = JitOptions {
        interpret_only: true,
        ..Default::default()
    };

    let jit = case("jit: scan+filter+sum (2k rows)", 5, 10, || {
        run_jit(&plan, &catalog, &opts).expect("runs");
    });
    case("jit (kernels disabled)", 5, 10, || {
        run_jit(&plan, &catalog, &interp_opts).expect("runs");
    });
    let volcano = case("volcano: scan+filter+sum (2k rows)", 5, 10, || {
        run_volcano(&plan, &catalog).expect("runs");
    });
    println!(
        "speedup (volcano/jit): {:.2}x",
        volcano.as_secs_f64() / jit.as_secs_f64().max(1e-12)
    );
}
