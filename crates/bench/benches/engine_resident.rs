//! Per-call `run_jit` vs resident `Engine::execute` on a warm 500-query
//! mix.
//!
//! The per-call path pays per query for everything the resident engine
//! keeps alive: worker threads are spawned and joined, a fresh string
//! interner is built, and kernel string ids are re-interned. Both paths
//! here share the *same* replica cache arrangement (each gets its own
//! long-lived `CacheManager`), so the delta isolates engine residency —
//! pool attach/park vs spawn/join — rather than cache warmth.
//!
//! The bench reports total wall time plus **per-query p50/p99** for both
//! paths. Like the other benches in this crate it prints rather than
//! hard-fails (shared runners are too noisy for a latency assert), but
//! the p50 gap is the headline number: resident execution should win
//! visibly at any worker count > 1.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vida_algebra::{lower, rewrite, Plan};
use vida_bench::fixtures;
use vida_cache::CacheManager;
use vida_exec::{run_jit, Engine, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_lang::parse;

const QUERIES: usize = 500;
const THREADS: usize = 4;

fn plan_of(q: &str) -> Plan {
    rewrite(&lower(&parse(q).expect("parses")).expect("lowers"))
}

fn catalog() -> Arc<MemoryCatalog> {
    let catalog = MemoryCatalog::new();
    let patients = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(5_000, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(CsvPlugin::new(patients)));
    let genetics = JsonFile::from_bytes(
        "Genetics",
        fixtures::genetics_json(5_000, 13),
        fixtures::genetics_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(genetics)));
    Arc::new(catalog)
}

/// The warm mix: point-ish filters, a join, and an aggregation — the
/// repeated-workload shape the paper's caches assume (HBP locality).
fn mix() -> Vec<Plan> {
    [
        "for { p <- Patients, p.age > 40 } yield sum p.age",
        "for { p <- Patients, p.age > 60 } yield count p",
        "for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 40 } yield sum g.snp",
        "for { g <- Genetics, g.snp > 50 } yield count g",
        "for { p <- Patients, p.age < 30 } yield max p.age",
    ]
    .iter()
    .map(|q| plan_of(q))
    .collect()
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx]
}

fn report(name: &str, total: Duration, mut lat: Vec<Duration>) {
    lat.sort();
    println!(
        "{name:<28} total {:>9.1} ms   p50 {:>9.3} µs   p99 {:>9.3} µs",
        total.as_secs_f64() * 1e3,
        percentile(&lat, 50.0).as_secs_f64() * 1e6,
        percentile(&lat, 99.0).as_secs_f64() * 1e6,
    );
}

fn main() {
    let cat = catalog();
    let plans = mix();
    // `clamp_threads: false`: the contrast under test is spawn/join per
    // query vs a parked pool, so the worker count must not silently clamp
    // to 1 on small CI boxes (where both paths would degenerate to inline
    // single-thread runs and measure nothing).
    let opts = |cache: Arc<CacheManager>| JitOptions {
        threads: THREADS,
        clamp_threads: false,
        cache: Some(cache),
        ..Default::default()
    };

    // --- Per-call path: spawn/join a pool and rebuild the interner per
    // query; the cache Arc is the only thing surviving between calls.
    let per_call_opts = opts(Arc::new(CacheManager::new(1 << 26)));
    let expected: Vec<_> = plans
        .iter()
        .map(|p| run_jit(p, &*cat, &per_call_opts).expect("runs"))
        .collect();
    // (That pass also warmed the per-call cache.)
    let mut per_call_lat = Vec::with_capacity(QUERIES);
    let per_call_start = Instant::now();
    for i in 0..QUERIES {
        let plan = &plans[i % plans.len()];
        let t = Instant::now();
        let v = run_jit(plan, &*cat, &per_call_opts).expect("runs");
        per_call_lat.push(t.elapsed());
        assert_eq!(&v, &expected[i % plans.len()]);
    }
    let per_call_total = per_call_start.elapsed();

    // --- Resident path: same worker count, same cache budget, but the
    // pool is parked between queries and the interner persists.
    let engine = Engine::new(cat.clone(), opts(Arc::new(CacheManager::new(1 << 26))));
    for plan in &plans {
        engine.execute(plan).expect("runs"); // warm its cache too
    }
    let mut resident_lat = Vec::with_capacity(QUERIES);
    let resident_start = Instant::now();
    let mut session = engine.session();
    for i in 0..QUERIES {
        let plan = &plans[i % plans.len()];
        let t = Instant::now();
        let v = session.execute(plan).expect("runs");
        resident_lat.push(t.elapsed());
        assert_eq!(&v, &expected[i % plans.len()]);
    }
    let resident_total = resident_start.elapsed();

    println!(
        "warm mix: {QUERIES} queries over {} plan shapes, {THREADS} workers",
        plans.len()
    );
    report("per-call run_jit", per_call_total, per_call_lat);
    report("resident Engine::execute", resident_total, resident_lat);
    println!(
        "resident speedup: {:.2}x total",
        per_call_total.as_secs_f64() / resident_total.as_secs_f64().max(1e-12)
    );
}
