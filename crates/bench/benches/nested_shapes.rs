//! The pipeline shapes that used to take the whole-query Volcano fallback —
//! unnests over nested JSON and theta joins — through the generated
//! pipelines vs the old fallback path (`run_volcano` on the same plan).

use std::sync::Arc;
use vida_algebra::{lower, rewrite, Plan};
use vida_bench::{case, fixtures};
use vida_exec::{run_jit, run_volcano, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_lang::parse;

fn plan_of(q: &str) -> Plan {
    rewrite(&lower(&parse(q).expect("parses")).expect("lowers"))
}

fn speedup(name: &str, volcano: std::time::Duration, jit: std::time::Duration) {
    println!(
        "{name} speedup (volcano/jit): {:.2}x",
        volcano.as_secs_f64() / jit.as_secs_f64().max(1e-12)
    );
}

fn main() {
    let catalog = MemoryCatalog::new();
    let csv = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(1_000, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(CsvPlugin::new(csv)));
    let genetics = JsonFile::from_bytes(
        "Genetics",
        fixtures::genetics_json(1_000, 13),
        fixtures::genetics_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(genetics)));
    let regions = JsonFile::from_bytes(
        "Regions",
        fixtures::regions_json(2_000, 11),
        fixtures::regions_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(regions)));

    let opts = JitOptions::default();

    // Unnest over the nested JSON column (the old fallback's worst case:
    // the Volcano engine re-parses every whole object per query).
    let unnest = plan_of("for { r <- Regions, v <- r.voxels, v > 50 } yield sum v");
    let jit = case("unnest: jit pipeline (2k regions)", 5, 10, || {
        run_jit(&unnest, &catalog, &opts).expect("runs");
    });
    let volcano = case("unnest: volcano fallback (2k regions)", 5, 10, || {
        run_volcano(&unnest, &catalog).expect("runs");
    });
    speedup("unnest", volcano, jit);

    // Band theta join: selective sort-probe vs interpreted nested loop.
    let band =
        plan_of("for { p <- Patients, g <- Genetics, p.id > g.id, g.id < 32 } yield count p");
    let jit = case("theta band: jit sort-probe (1k x 32)", 5, 10, || {
        run_jit(&band, &catalog, &opts).expect("runs");
    });
    let volcano = case("theta band: volcano nested loop", 5, 10, || {
        run_volcano(&band, &catalog).expect("runs");
    });
    speedup("theta band", volcano, jit);

    // Inequality theta join: block-nested-loop with one fused predicate
    // kernel vs per-pair interpretation.
    let bnl = plan_of(
        "for { p <- Patients, g <- Genetics, p.id != g.id, g.id < 64, p.id < 256 } \
         yield count p",
    );
    let jit = case("theta bnl: jit kernel loop (256 x 64)", 5, 10, || {
        run_jit(&bnl, &catalog, &opts).expect("runs");
    });
    let volcano = case("theta bnl: volcano nested loop", 5, 10, || {
        run_volcano(&bnl, &catalog).expect("runs");
    });
    speedup("theta bnl", volcano, jit);
}
