//! NoDB positional maps (ViDa §2, §5): repeated field access over raw CSV
//! with and without the positional structures that remember byte offsets.

use vida_bench::{case, fixtures};
use vida_formats::csv::CsvFile;

fn open(posmap: bool) -> CsvFile {
    let mut f = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(2_000, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    f.set_posmap_enabled(posmap);
    f
}

fn main() {
    let rows: Vec<usize> = (0..2_000).step_by(7).collect();

    let cold = open(false);
    case("read city column, posmap disabled", 5, 5, || {
        for &r in &rows {
            cold.read_field(r, 2).expect("reads");
        }
    });

    let warm = open(true);
    // First pass populates the positional map; the measured passes seek.
    for &r in &rows {
        warm.read_field(r, 2).expect("reads");
    }
    case("read city column, posmap populated", 5, 5, || {
        for &r in &rows {
            warm.read_field(r, 2).expect("reads");
        }
    });
}
