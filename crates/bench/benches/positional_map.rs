//! NoDB positional maps (ViDa §2, §5): repeated field access over raw CSV
//! with and without the positional structures that remember byte offsets.
//!
//! Two fixtures: the narrow HBP-style `Patients` table (4 columns — posmap
//! savings are small because tokenizing from the row start crosses only a
//! few delimiters) and a wide table in the spirit of the paper's
//! 17 832-attribute Genetics file, where reaching a late column without the
//! map re-tokenizes the whole row prefix every time.

use vida_bench::{case, fixtures};
use vida_formats::csv::CsvFile;
use vida_types::{Schema, Type};

fn open_narrow(posmap: bool) -> CsvFile {
    let mut f = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(2_000, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    f.set_posmap_enabled(posmap);
    f
}

const WIDE_COLS: usize = 64;
const WIDE_TARGET: usize = 60; // late column: 60 delimiters from row start

fn open_wide(posmap: bool) -> CsvFile {
    let mut data = String::new();
    let names: Vec<String> = (0..WIDE_COLS).map(|c| format!("a{c}")).collect();
    data.push_str(&names.join(","));
    data.push('\n');
    for row in 0..500 {
        let vals: Vec<String> = (0..WIDE_COLS)
            .map(|c| (row * WIDE_COLS + c).to_string())
            .collect();
        data.push_str(&vals.join(","));
        data.push('\n');
    }
    let schema = Schema::from_pairs(names.into_iter().map(|n| (n, Type::Int)));
    let mut f =
        CsvFile::from_bytes("Wide", data.into_bytes(), b',', true, schema).expect("fixture parses");
    f.set_posmap_enabled(posmap);
    f
}

fn main() {
    let rows: Vec<usize> = (0..2_000).step_by(7).collect();

    let cold = open_narrow(false);
    case("narrow: read city col, posmap disabled", 5, 5, || {
        for &r in &rows {
            cold.read_field(r, 2).expect("reads");
        }
    });

    let warm = open_narrow(true);
    // First pass populates the positional map; the measured passes seek.
    for &r in &rows {
        warm.read_field(r, 2).expect("reads");
    }
    case("narrow: read city col, posmap populated", 5, 5, || {
        for &r in &rows {
            warm.read_field(r, 2).expect("reads");
        }
    });

    let wide_rows: Vec<usize> = (0..500).collect();
    let wide_cold = open_wide(false);
    case("wide: read col 60/64, posmap disabled", 5, 5, || {
        for &r in &wide_rows {
            wide_cold.read_field(r, WIDE_TARGET).expect("reads");
        }
    });

    let wide_warm = open_wide(true);
    for &r in &wide_rows {
        wide_warm.read_field(r, WIDE_TARGET).expect("reads");
    }
    case("wide: read col 60/64, posmap populated", 5, 5, || {
        for &r in &wide_rows {
            wide_warm.read_field(r, WIDE_TARGET).expect("reads");
        }
    });
}
