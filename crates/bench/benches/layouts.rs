//! Cache layout trade-offs (ViDa Figure 4): materialization cost and
//! per-row rehydration cost of the parsed-values, text, and binary-JSON
//! replica layouts — plus the end-to-end warm-cache hit path through the
//! JIT engine for each storable replica layout (`Values` vs `BinaryJson`
//! vs `Positions`), including the pre-cost-model baseline.

use std::sync::Arc;
use vida_bench::{case, fixtures};
use vida_cache::{CacheKey, CacheManager, CachedData, Layout};
use vida_exec::{run_jit, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::plugin::CsvPlugin;
use vida_formats::InputPlugin;
use vida_types::Value;

fn rows(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            Value::record([
                ("id", Value::Int(i as i64)),
                ("snp", Value::Float(i as f64 * 0.001)),
                ("tag", Value::str(format!("sample-{i}"))),
            ])
        })
        .collect()
}

fn main() {
    let data = rows(2_000);

    for layout in [Layout::Values, Layout::Text, Layout::BinaryJson] {
        case(
            &format!("materialize 2k rows as {}", layout.name()),
            5,
            5,
            || {
                CachedData::from_values(&data, layout).expect("converts");
            },
        );
    }

    let values = CachedData::from_values(&data, Layout::Values).expect("converts");
    let binary = CachedData::from_values(&data, Layout::BinaryJson).expect("converts");
    case("rehydrate 2k rows from values", 5, 5, || {
        for r in 0..2_000 {
            values.get(r).expect("gets");
        }
    });
    case("rehydrate 2k rows from binary-json", 5, 5, || {
        for r in 0..2_000 {
            binary.get(r).expect("gets");
        }
    });
    println!(
        "footprint: values={}B binary={}B positions={}B",
        values.approx_bytes(),
        binary.approx_bytes(),
        CachedData::Positions(vec![(0, 64); 2_000]).approx_bytes()
    );

    warm_cache_hit_paths();
}

/// Warm-cache query time when every touched column is served by a replica
/// in one forced layout — the §5 acceptance comparison. The "legacy" case
/// is the pre-cost-model engine (cache without a model, `Values` replicas):
/// the `values` case must not be slower than it, since the default layout
/// choice for hot scalar columns remains `Values`.
fn warm_cache_hit_paths() {
    const ROWS: usize = 20_000;
    let query = "for { p <- Patients, p.age > 40 } yield count p.city";
    let plan = vida_algebra::rewrite(
        &vida_algebra::lower(&vida_lang::parse(query).expect("parses")).expect("lowers"),
    );

    let fresh_catalog = || {
        let cat = MemoryCatalog::new();
        let csv = CsvFile::from_bytes(
            "Patients",
            fixtures::patients_csv(ROWS, 7),
            b',',
            true,
            fixtures::patients_schema(),
        )
        .expect("fixture parses");
        let plugin = Arc::new(CsvPlugin::new(csv));
        cat.register(Arc::clone(&plugin) as Arc<dyn InputPlugin>);
        (cat, plugin)
    };

    // Legacy baseline: cache, no cost model (always-Values replicas).
    {
        let (cat, _) = fresh_catalog();
        let cache = Arc::new(CacheManager::new(64 << 20));
        let opts = JitOptions::with_cache(Arc::clone(&cache));
        run_jit(&plan, &cat, &opts).expect("cold run"); // populate
        case("warm 20k-row query, legacy values", 5, 3, || {
            run_jit(&plan, &cat, &opts).expect("warm run");
        });
    }

    // Forced layouts through the cost-model engine.
    for layout in [Layout::Values, Layout::BinaryJson, Layout::Positions] {
        let (cat, plugin) = fresh_catalog();
        let cache = Arc::new(CacheManager::new(64 << 20));
        let schema = plugin.schema().clone();
        for (col, field) in schema.fields().iter().enumerate() {
            let replica = match layout {
                Layout::Positions => CachedData::Positions(
                    (0..ROWS)
                        .map(|row| {
                            plugin
                                .field_byte_span(row, col)
                                .expect("span lookup")
                                .expect("csv reports spans")
                        })
                        .collect(),
                ),
                layout => {
                    let mut vals = Vec::with_capacity(ROWS);
                    plugin
                        .scan_project(&[col], &mut |_, mut v| {
                            vals.push(v.pop().expect("one value"));
                            Ok(())
                        })
                        .expect("scan");
                    CachedData::from_values(&vals, layout).expect("converts")
                }
            };
            cache.put(
                CacheKey::new("Patients", field.name.clone(), layout),
                replica,
                plugin.fingerprint(),
            );
        }
        // No model: the seeded replicas stay exactly as seeded (a model
        // would re-shape them between iterations), and the engine's
        // default probe order serves whichever layout exists.
        let opts = JitOptions::with_cache(Arc::clone(&cache));
        case(
            &format!("warm 20k-row query, {} replicas", layout.name()),
            5,
            3,
            || {
                run_jit(&plan, &cat, &opts).expect("warm run");
            },
        );
    }
}
