//! Cache layout trade-offs (ViDa Figure 4): materialization cost and
//! per-row rehydration cost of the parsed-values, text, and binary-JSON
//! replica layouts.

use vida_bench::case;
use vida_cache::{CachedData, Layout};
use vida_types::Value;

fn rows(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            Value::record([
                ("id", Value::Int(i as i64)),
                ("snp", Value::Float(i as f64 * 0.001)),
                ("tag", Value::str(format!("sample-{i}"))),
            ])
        })
        .collect()
}

fn main() {
    let data = rows(2_000);

    for layout in [Layout::Values, Layout::Text, Layout::BinaryJson] {
        case(
            &format!("materialize 2k rows as {}", layout.name()),
            5,
            5,
            || {
                CachedData::from_values(&data, layout).expect("converts");
            },
        );
    }

    let values = CachedData::from_values(&data, Layout::Values).expect("converts");
    let binary = CachedData::from_values(&data, Layout::BinaryJson).expect("converts");
    case("rehydrate 2k rows from values", 5, 5, || {
        for r in 0..2_000 {
            values.get(r).expect("gets");
        }
    });
    case("rehydrate 2k rows from binary-json", 5, 5, || {
        for r in 0..2_000 {
            binary.get(r).expect("gets");
        }
    });
    println!(
        "footprint: values={}B binary={}B positions={}B",
        values.approx_bytes(),
        binary.approx_bytes(),
        CachedData::Positions(vec![(0, 64); 2_000]).approx_bytes()
    );
}
