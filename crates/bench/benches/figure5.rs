//! Toward Figure 5: an HBP-style query sequence over raw CSV + JSON, cold
//! caches vs warm caches (the locality regime that lets ViDa serve ~80% of
//! the workload from its data caches).

use std::sync::Arc;
use vida_algebra::{lower, rewrite, Plan};
use vida_bench::{case, fixtures};
use vida_cache::CacheManager;
use vida_exec::{run_jit, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_lang::parse;
use vida_workload::{generate, WorkloadConfig};

fn catalog() -> MemoryCatalog {
    let catalog = MemoryCatalog::new();
    let csv = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(1_000, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(CsvPlugin::new(csv)));
    let json = JsonFile::from_bytes(
        "Genetics",
        fixtures::genetics_json(1_000, 9),
        fixtures::genetics_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(json)));
    catalog
}

fn main() {
    let catalog = catalog();
    let plans: Vec<Plan> = generate(&WorkloadConfig {
        queries: 20,
        ..Default::default()
    })
    .iter()
    .map(|q| rewrite(&lower(&parse(&q.text).expect("parses")).expect("lowers")))
    .collect();

    case("20-query mix, cold cache each run", 3, 1, || {
        let opts = JitOptions::with_cache(Arc::new(CacheManager::new(8 << 20)));
        for p in &plans {
            run_jit(p, &catalog, &opts).expect("runs");
        }
    });

    let warm = JitOptions::with_cache(Arc::new(CacheManager::new(8 << 20)));
    for p in &plans {
        run_jit(p, &catalog, &warm).expect("runs");
    }
    case("20-query mix, warm cache", 3, 1, || {
        for p in &plans {
            run_jit(p, &catalog, &warm).expect("runs");
        }
    });

    // A truly cold run: the raw catalog itself (positional-map and
    // semi-index construction included) rebuilds every iteration, the
    // regime the paper's Figure 5 actually measures — first-query response
    // time straight off raw files.
    let patients = fixtures::patients_csv(30_000, 7);
    let genetics = fixtures::genetics_json(30_000, 9);
    case("cold open + 20-query mix (raw re-ingest)", 3, 1, || {
        let catalog = MemoryCatalog::new();
        let csv = CsvFile::from_bytes(
            "Patients",
            patients.clone(),
            b',',
            true,
            fixtures::patients_schema(),
        )
        .expect("fixture parses");
        catalog.register(Arc::new(CsvPlugin::new(csv)));
        let json = JsonFile::from_bytes("Genetics", genetics.clone(), fixtures::genetics_schema())
            .expect("fixture parses");
        catalog.register(Arc::new(JsonPlugin::new(json)));
        let opts = JitOptions::with_cache(Arc::new(CacheManager::new(8 << 20)));
        for p in &plans {
            run_jit(p, &catalog, &opts).expect("runs");
        }
    });
}
