fn main() {}
