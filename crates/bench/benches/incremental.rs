//! O(delta) incremental re-query vs full re-scan over a growing file.
//!
//! The append-replay scenario: a scan-heavy aggregate runs warm over a
//! raw CSV file that keeps growing by ~1% between queries. The resident
//! engine re-stats the file at query description time, extends the
//! positional map over the appended suffix, serves the prefix from its
//! column replica, and resumes the cached fold partial — so each warm
//! re-query pays for the delta, not the file. The baseline is what a
//! non-incremental engine does after *any* change (the `Rebuilt` path):
//! reopen the file, rebuild the row index, and re-parse every row.
//!
//! Every measured incremental iteration asserts its counters
//! (`tail_rows_scanned == delta`, `partials_reused == 1`,
//! `raw_columns == 0`), so a silent fallback to the full scan cannot
//! masquerade as a win. The headline ratio must be >= 5x.

use std::cell::Cell;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vida_bench::{fixtures, time};
use vida_cache::CacheManager;
use vida_exec::{run_jit_with_stats, run_volcano, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::plugin::CsvPlugin;
use vida_formats::MapMode;
use vida_types::Value;

/// Base file size and per-append delta (~1%).
const ROWS: usize = 200_000;
const DELTA: usize = 2_000;
const SEED: u64 = 11;

fn sum_age_plan() -> vida_algebra::Plan {
    let expr = vida_lang::parse("for { p <- Patients } yield sum p.age").unwrap();
    vida_algebra::rewrite(&vida_algebra::lower(&expr).unwrap())
}

fn fresh_catalog(path: &Path) -> MemoryCatalog {
    let cat = MemoryCatalog::new();
    let file = CsvFile::open_with(
        "Patients",
        path,
        b',',
        true,
        fixtures::patients_schema(),
        MapMode::Auto,
    )
    .unwrap();
    cat.register(Arc::new(CsvPlugin::new(file)));
    cat
}

fn main() {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("incremental_patients.csv");
    std::fs::write(&path, fixtures::patients_csv(ROWS, SEED)).unwrap();
    let plan = sum_age_plan();

    // The baseline: reopen + full re-scan, measured on the base file —
    // the work a change forces without incremental revalidation.
    let cold = JitOptions::default();
    let full_rescan = time(3, 3, || {
        let (v, stats) = run_jit_with_stats(&plan, &fresh_catalog(&path), &cold).unwrap();
        assert!(matches!(v, Value::Int(_)));
        assert!(stats.raw_columns > 0);
    });
    println!(
        "full re-scan (reopen + {ROWS} rows)          {:>12.3} ms",
        full_rescan.as_secs_f64() * 1e3
    );

    // The resident engine: one catalog, one cache, warmed once; then each
    // measured iteration appends ~1% and re-queries.
    let catalog = fresh_catalog(&path);
    let opts = JitOptions::with_cache(Arc::new(CacheManager::new(64 << 20)));
    let (_, stats) = run_jit_with_stats(&plan, &catalog, &opts).unwrap();
    assert!(stats.raw_columns > 0, "warm-up must scan raw");

    let rows = Cell::new(ROWS);
    let incremental = time(3, 3, || {
        let hi = rows.get() + DELTA;
        let mut fh = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        fh.write_all(&fixtures::patients_csv_rows(rows.get(), hi, SEED))
            .unwrap();
        drop(fh);
        rows.set(hi);
        let (v, stats) = run_jit_with_stats(&plan, &catalog, &opts).unwrap();
        assert!(matches!(v, Value::Int(_)));
        // The incremental path, not a silent full fallback.
        assert_eq!(stats.tail_rows_scanned, DELTA as u64, "{stats:?}");
        assert_eq!(stats.partials_reused, 1, "{stats:?}");
        assert_eq!(stats.raw_columns, 0, "{stats:?}");
    });
    println!(
        "warm re-query after ~1% append ({DELTA} rows)  {:>12.3} ms",
        incremental.as_secs_f64() * 1e3
    );

    // The incremental answer over the grown file is the cold answer.
    let (warm, _) = run_jit_with_stats(&plan, &catalog, &opts).unwrap();
    assert_eq!(warm, run_volcano(&plan, &fresh_catalog(&path)).unwrap());

    let speedup = full_rescan.as_secs_f64() / incremental.as_secs_f64();
    println!("incremental speedup: {speedup:.1}x (target >= 5x)");
    assert!(
        speedup >= 5.0,
        "O(delta) re-query must beat the full re-scan by >= 5x, got {speedup:.1}x"
    );
}
