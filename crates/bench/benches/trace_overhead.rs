//! Overhead of per-query span tracing on the `streaming_fusion` chain
//! shape (scan → select → hash-join probe → fold).
//!
//! The PR-7 contract: with `JitOptions::trace` **off** the hooks are single
//! `Option` checks and the cost is indistinguishable from baseline; with it
//! **on** the engine additionally records ~a dozen coordinator spans, one
//! span per worker morsel, and per-kernel invocation counts, and the
//! overhead must stay under 3% on this chain. The bench prints both deltas
//! so CI history pins the budget; it does not hard-fail (shared runners
//! are too noisy for a 3% assert), but the numbers make regressions
//! visible in the log.

use std::sync::Arc;
use vida_algebra::{lower, rewrite, Plan};
use vida_bench::{case, fixtures};
use vida_exec::{run_jit_with_stats, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_lang::parse;

fn plan_of(q: &str) -> Plan {
    rewrite(&lower(&parse(q).expect("parses")).expect("lowers"))
}

fn overhead_pct(base: std::time::Duration, traced: std::time::Duration) -> f64 {
    100.0 * (traced.as_secs_f64() - base.as_secs_f64()) / base.as_secs_f64().max(1e-12)
}

fn main() {
    let catalog = MemoryCatalog::new();
    let patients = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(20_000, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(CsvPlugin::new(patients)));
    let genetics = JsonFile::from_bytes(
        "Genetics",
        fixtures::genetics_json(20_000, 13),
        fixtures::genetics_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(genetics)));

    let chain =
        plan_of("for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 40 } yield sum g.snp");

    let baseline = JitOptions::default();
    let traced = JitOptions::default().with_trace();

    // Same answer both ways, and the traced run actually recorded spans.
    let (v_base, _) = run_jit_with_stats(&chain, &catalog, &baseline).expect("runs");
    let (v_trace, s_trace) = run_jit_with_stats(&chain, &catalog, &traced).expect("runs");
    assert_eq!(v_base, v_trace, "tracing must not change results");
    let trace = s_trace.query_trace().expect("trace recorded");
    assert!(trace.spans().len() >= 8, "expected a full span tree");
    println!(
        "traced chain records {} spans, {} kernel invocations",
        trace.spans().len(),
        trace.kernel_invocations().iter().sum::<u64>()
    );

    for threads in [1usize, 4] {
        let base_opts = JitOptions {
            threads,
            ..baseline.clone()
        };
        let trace_opts = JitOptions {
            threads,
            ..traced.clone()
        };
        let label = if threads == 1 { "serial" } else { "4 threads" };
        let t_base = case(&format!("chain {label}: trace off"), 3, 5, || {
            run_jit_with_stats(&chain, &catalog, &base_opts).expect("runs");
        });
        let t_trace = case(&format!("chain {label}: trace on"), 3, 5, || {
            run_jit_with_stats(&chain, &catalog, &trace_opts).expect("runs");
        });
        println!(
            "tracing overhead ({label}): {:+.2}% (budget: <3% enabled, ~0% disabled)",
            overhead_pct(t_base, t_trace)
        );
    }
}
