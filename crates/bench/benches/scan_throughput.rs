//! Raw-ingest throughput (MB/s): the SWAR tokenizers against the
//! byte-at-a-time baseline they replaced, plus end-to-end cold scans on
//! both `RawData` backings.
//!
//! Three groups, each on a narrow and a wide fixture:
//!
//! 1. **CSV row-index build** — the quote-aware record-boundary scan that
//!    seeds the positional map. The word-at-a-time tokenizer must beat the
//!    pre-refactor per-byte state machine (reproduced below verbatim) by
//!    ≥4x; the ratio is printed.
//! 2. **JSON semi-index build** — newline object split plus a first-touch
//!    field-span pass (string-aware structural scan).
//! 3. **Cold scan** — open a real file and parse every field of every row
//!    once, `MapMode::Auto` (mmap) vs `MapMode::Never` (owned read).

use std::path::PathBuf;
use std::time::Duration;
use vida_bench::{fixtures, time};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::MapMode;
use vida_io::CsvTokenizer;
use vida_workload::{generate_wide_csv, generate_wide_ndjson, wide_schema};

/// The pre-refactor record-boundary scan: one byte per iteration, quote
/// state in a local, closing quotes found by walking. Kept here as the
/// honest baseline the SWAR speedup is measured against.
fn record_end_bytewise(data: &[u8], mut pos: usize, delimiter: u8) -> usize {
    let mut field_start = true;
    while pos < data.len() {
        let b = data[pos];
        if field_start && b == b'"' {
            let mut j = pos + 1;
            loop {
                if j >= data.len() {
                    return data.len();
                }
                if data[j] == b'"' {
                    if data.get(j + 1) == Some(&b'"') {
                        j += 2;
                    } else {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            pos = j + 1;
            field_start = false;
            continue;
        }
        pos += 1;
        match b {
            b'\n' => return pos,
            d if d == delimiter => field_start = true,
            _ => field_start = false,
        }
    }
    pos
}

fn report(name: &str, bytes: usize, d: Duration) -> f64 {
    let mbps = bytes as f64 / 1e6 / d.as_secs_f64();
    println!("{name:<52} {mbps:>9.1} MB/s");
    mbps
}

fn csv_row_index(label: &str, data: &[u8]) {
    let tok = CsvTokenizer::new(b',');
    let count_swar = || {
        let mut rows = 0usize;
        tok.scan_record_ends(data, 0, &mut |_| rows += 1);
        rows
    };
    let count_bytewise = || {
        let mut rows = 0usize;
        let mut pos = 0usize;
        while pos < data.len() {
            pos = record_end_bytewise(data, pos, b',');
            rows += 1;
        }
        rows
    };
    let rows = count_swar();
    assert_eq!(rows, count_bytewise(), "tokenizers disagree on {label}");

    let swar = report(
        &format!("csv row index, {label}: swar tokenizer"),
        data.len(),
        time(5, 10, || assert_eq!(count_swar(), rows)),
    );
    let baseline = report(
        &format!("csv row index, {label}: byte-at-a-time"),
        data.len(),
        time(5, 10, || assert_eq!(count_bytewise(), rows)),
    );
    println!(
        "csv row index, {label}: speedup {:.1}x (target >= 4x)",
        swar / baseline
    );
}

fn json_semi_index(label: &str, data: &[u8], schema: vida_types::Schema) {
    let last = schema.fields().last().unwrap().name.clone();
    let bytes = data.len();
    let data = data.to_vec();
    report(
        &format!("json semi-index build, {label}"),
        bytes,
        time(5, 5, || {
            // Rebuild from scratch so the structural scan runs cold: the
            // object split, then a first-touch span pass over one field.
            let f = JsonFile::from_bytes("J", data.clone(), schema.clone()).unwrap();
            for row in 0..f.num_objects() {
                f.field_span(row, &last).unwrap();
            }
        }),
    );
}

fn cold_scan_csv(label: &str, path: &std::path::Path, schema: vida_types::Schema, bytes: usize) {
    let cols: Vec<usize> = (0..schema.len()).collect();
    for (mode, tag) in [(MapMode::Auto, "mmap"), (MapMode::Never, "owned")] {
        report(
            &format!("cold csv scan, {label}, {tag}"),
            bytes,
            time(3, 3, || {
                let f = CsvFile::open_with("C", path, b',', true, schema.clone(), mode).unwrap();
                let mut rows = 0usize;
                f.scan_project(&cols, &mut |_, _| {
                    rows += 1;
                    Ok(())
                })
                .unwrap();
                assert!(rows > 0);
            }),
        );
    }
}

fn cold_scan_json(label: &str, path: &std::path::Path, schema: vida_types::Schema, bytes: usize) {
    let fields: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
    let names: Vec<&str> = fields.iter().map(String::as_str).collect();
    for (mode, tag) in [(MapMode::Auto, "mmap"), (MapMode::Never, "owned")] {
        report(
            &format!("cold json scan, {label}, {tag}"),
            bytes,
            time(3, 3, || {
                let f = JsonFile::open_with("J", path, schema.clone(), mode).unwrap();
                let mut rows = 0usize;
                f.scan_project_range(&names, 0..f.num_objects(), &mut |_, _| {
                    rows += 1;
                    Ok(())
                })
                .unwrap();
                assert!(rows > 0);
            }),
        );
    }
}

/// A wide row shape with no quoting at all — the positional_map bench's
/// fixture: pure delimiter/newline structure.
fn wide_plain_csv(rows: usize, cols: usize) -> Vec<u8> {
    let names: Vec<String> = (0..cols).map(|c| format!("a{c}")).collect();
    let mut out = names.join(",");
    out.push('\n');
    for row in 0..rows {
        let vals: Vec<String> = (0..cols).map(|c| (row * cols + c).to_string()).collect();
        out.push_str(&vals.join(","));
        out.push('\n');
    }
    out.into_bytes()
}

fn main() {
    let narrow_csv = fixtures::patients_csv(60_000, 7);
    let wide_csv = generate_wide_csv(4_000, 32, 3);
    csv_row_index("narrow (3 cols)", &narrow_csv);
    csv_row_index("wide (32 cols, plain)", &wide_plain_csv(4_000, 32));
    csv_row_index("wide (32 cols, quoted)", &wide_csv);

    let narrow_json = fixtures::genetics_json(40_000, 13);
    let wide_json = generate_wide_ndjson(4_000, 24, 9);
    json_semi_index(
        "narrow (2 fields)",
        &narrow_json,
        fixtures::genetics_schema(),
    );
    json_semi_index("wide (24 fields)", &wide_json, wide_schema(24));

    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let narrow_csv_path = dir.join("scan_throughput_narrow.csv");
    let wide_csv_path = dir.join("scan_throughput_wide.csv");
    let narrow_json_path = dir.join("scan_throughput_narrow.json");
    std::fs::write(&narrow_csv_path, &narrow_csv).unwrap();
    std::fs::write(&wide_csv_path, &wide_csv).unwrap();
    std::fs::write(&narrow_json_path, &narrow_json).unwrap();

    cold_scan_csv(
        "narrow",
        &narrow_csv_path,
        fixtures::patients_schema(),
        narrow_csv.len(),
    );
    cold_scan_csv("wide", &wide_csv_path, wide_schema(32), wide_csv.len());
    cold_scan_json(
        "narrow",
        &narrow_json_path,
        fixtures::genetics_schema(),
        narrow_json.len(),
    );
}
